"""Canonical Huffman coding.

Code construction follows the canonical form (codes assigned in length
order, then symbol order) so the table serializes as just the per-symbol
code lengths.  Encoding is fully vectorized via
:func:`~repro.encoders.bitstream.pack_varwidth` against code/length
tables precomputed once per codec.

Two stream framings exist:

* **HUF2** (current): the payload is preceded by per-block bit lengths
  (one block = ``_BLOCK`` symbols), giving the decoder a sync point
  every block.  Decoding then runs *wavefront-vectorized*: iteration
  ``j`` decodes the j-th symbol of every block simultaneously by
  gathering a 64-bit window at each block's bit cursor and binary
  searching the left-justified canonical code table
  (``np.searchsorted``) — ``_BLOCK`` vectorized iterations total
  instead of one Python iteration per *bit*.  Streams whose longest
  code exceeds 57 bits (no longer fits a shifted 64-bit window) and
  tiny streams fall back to the scalar tree walk.
* **HUF1** (legacy): no sync table; decoded by the retained scalar
  tree walk (:meth:`HuffmanCodec.decode_scalar`), which also serves as
  the reference implementation the property tests compare against.
"""

from __future__ import annotations

import heapq

import numpy as np

from .bitstream import pack_varwidth
from .varint import (
    varint_decode,
    varint_decode_array,
    varint_encode,
    varint_encode_array,
)

__all__ = ["HuffmanCodec", "huffman_encode", "huffman_decode"]

_MAGIC = b"HUF1"
_MAGIC2 = b"HUF2"

_BLOCK = 64          # symbols per sync block in HUF2 streams
_MAX_WINDOW = 57     # longest code a shifted 8-byte window can hold
_SCALAR_CUTOFF = 512  # below this many symbols the wavefront isn't worth it


def _code_lengths(frequencies: dict[int, int]) -> dict[int, int]:
    """Huffman code length per symbol from frequency counts."""
    if not frequencies:
        return {}
    if len(frequencies) == 1:
        return {next(iter(frequencies)): 1}
    heap: list[tuple[int, int, tuple[int, ...]]] = [
        (freq, sym, (sym,)) for sym, freq in frequencies.items()
    ]
    heapq.heapify(heap)
    lengths = {sym: 0 for sym in frequencies}
    while len(heap) > 1:
        f1, _, s1 = heapq.heappop(heap)
        f2, t2, s2 = heapq.heappop(heap)
        for sym in s1 + s2:
            lengths[sym] += 1
        heapq.heappush(heap, (f1 + f2, t2, s1 + s2))
    return lengths


def _canonical_codes(lengths: dict[int, int]) -> dict[int, int]:
    """Assign canonical codes given per-symbol lengths."""
    ordered = sorted(lengths.items(), key=lambda kv: (kv[1], kv[0]))
    codes: dict[int, int] = {}
    code = 0
    prev_len = 0
    for sym, length in ordered:
        code <<= length - prev_len
        codes[sym] = code
        code += 1
        prev_len = length
    return codes


class HuffmanCodec:
    """A canonical Huffman codec over non-negative integer symbols."""

    def __init__(self, lengths: dict[int, int]):
        if any(l <= 0 or l > 64 for l in lengths.values()):
            raise ValueError("code lengths must be in [1, 64]")
        self.lengths = dict(lengths)
        self.codes = _canonical_codes(lengths)
        # encode tables: aligned to the sorted symbol array for
        # searchsorted-based symbol -> (code, length) gather
        self._syms_sorted = np.array(sorted(self.codes), dtype=np.uint64)
        self._code_arr = np.array(
            [self.codes[int(s)] for s in self._syms_sorted], dtype=np.uint64)
        self._len_arr = np.array(
            [self.lengths[int(s)] for s in self._syms_sorted], dtype=np.int64)
        # decode tables: canonical (length, symbol) order; left-justified
        # codes are strictly increasing, so a window binary-searches to
        # its symbol in one searchsorted
        self.max_length = max(lengths.values()) if lengths else 0
        order = sorted(lengths, key=lambda s: (lengths[s], s))
        self._dec_syms = np.array(order, dtype=np.uint64)
        self._dec_lens = np.array([lengths[s] for s in order],
                                  dtype=np.int64)
        shift = np.uint64(self.max_length) - self._dec_lens.astype(np.uint64)
        self._dec_lj = (np.array([self.codes[s] for s in order],
                                 dtype=np.uint64) << shift)

    @classmethod
    def from_data(cls, symbols: np.ndarray) -> "HuffmanCodec":
        """Build a codec from observed symbol frequencies."""
        syms, counts = np.unique(
            np.ascontiguousarray(symbols, dtype=np.uint64), return_counts=True
        )
        freqs = {int(s): int(c) for s, c in zip(syms, counts)}
        return cls(_code_lengths(freqs))

    # -- serialization ----------------------------------------------------
    def serialize_table(self) -> bytes:
        """Serialize as (count, then per-symbol varint sym + 1-byte len)."""
        out = bytearray(varint_encode(len(self.lengths)))
        for sym in sorted(self.lengths):
            out += varint_encode(sym)
            out.append(self.lengths[sym])
        return bytes(out)

    @classmethod
    def deserialize_table(cls, buf: bytes | memoryview, offset: int = 0
                          ) -> tuple["HuffmanCodec", int]:
        count, pos = varint_decode(buf, offset)
        lengths: dict[int, int] = {}
        view = memoryview(buf)
        for _ in range(count):
            sym, pos = varint_decode(buf, pos)
            lengths[sym] = view[pos]
            pos += 1
        return cls(lengths), pos

    # -- coding ----------------------------------------------------------
    def _lookup(self, s: np.ndarray) -> np.ndarray:
        """Indices into the sorted-symbol tables (validates membership)."""
        idx = np.searchsorted(self._syms_sorted, s)
        if (np.any(idx >= self._syms_sorted.size)
                or np.any(self._syms_sorted[
                    np.minimum(idx, self._syms_sorted.size - 1)] != s)):
            raise ValueError("symbol outside codec alphabet")
        return idx

    def symbol_widths(self, symbols: np.ndarray) -> np.ndarray:
        """Per-symbol code lengths (validates alphabet membership)."""
        s = np.ascontiguousarray(symbols, dtype=np.uint64).reshape(-1)
        return self._len_arr[self._lookup(s)]

    def encode(self, symbols: np.ndarray) -> tuple[bytes, int]:
        """Encode symbols; returns (payload bytes, exact bit length)."""
        s = np.ascontiguousarray(symbols, dtype=np.uint64).reshape(-1)
        if s.size == 0:
            return b"", 0
        idx = self._lookup(s)
        values = self._code_arr[idx]
        widths = self._len_arr[idx]
        return pack_varwidth(values, widths), int(widths.sum())

    def decode(self, payload: bytes | memoryview, count: int,
               block_bits: np.ndarray | None = None) -> np.ndarray:
        """Decode ``count`` symbols from ``payload``.

        ``block_bits`` — per-block payload bit lengths from a HUF2
        stream — enables the vectorized wavefront path; without it (or
        for long codes / short streams) the scalar tree walk runs.
        """
        if count == 0:
            return np.zeros(0, dtype=np.uint64)
        if (block_bits is None or self.max_length > _MAX_WINDOW
                or count < _SCALAR_CUTOFF):
            return self.decode_scalar(payload, count)
        return self._decode_wavefront(payload, count, block_bits)

    def _decode_wavefront(self, payload: bytes | memoryview, count: int,
                          block_bits: np.ndarray) -> np.ndarray:
        nblocks = (count + _BLOCK - 1) // _BLOCK
        if block_bits.size != nblocks:
            raise ValueError("corrupt huffman stream: bad sync table")
        raw = np.frombuffer(payload, dtype=np.uint8)
        total_bits = raw.size * 8
        # block start cursors from the sync table
        cursors = np.zeros(nblocks, dtype=np.int64)
        np.cumsum(block_bits[:-1], out=cursors[1:])
        ends = cursors + block_bits
        if int(ends[-1]) > total_bits:
            raise ValueError("corrupt huffman stream: sync table overruns")
        # pad so an 8-byte gather at the last bit stays in bounds
        buf = np.zeros(raw.size + 8, dtype=np.uint8)
        buf[:raw.size] = raw
        byte_w = (np.uint64(1) << (np.uint64(8) * np.arange(7, -1, -1,
                                                            dtype=np.uint64)))
        maxL = np.uint64(self.max_length)
        down = np.uint64(64) - maxL
        out = np.empty((nblocks, _BLOCK), dtype=np.uint64)
        limit = np.int64(total_bits)
        for j in range(_BLOCK):
            byteoff = cursors >> 3
            shift = (cursors & 7).astype(np.uint64)
            gathered = buf[byteoff[:, None] + np.arange(8)]
            windows = gathered.astype(np.uint64) @ byte_w
            keys = (windows << shift) >> down
            idx = np.searchsorted(self._dec_lj, keys, side="right") - 1
            out[:, j] = self._dec_syms[idx]
            cursors = np.minimum(cursors + self._dec_lens[idx], limit)
        # every full block must land exactly on its sync boundary
        if not np.array_equal(cursors[:-1], ends[:-1]):
            raise ValueError("corrupt huffman stream")
        last_count = count - (nblocks - 1) * _BLOCK
        if last_count < _BLOCK:
            # the last block overshoots into clamped garbage; re-derive
            # its end from the lengths of the symbols it actually holds
            cur = int(ends[-1]) - int(block_bits[-1])
            idx = np.searchsorted(self._syms_sorted, out[-1, :last_count])
            cur += int(self._len_arr[idx].sum())
            if cur != int(ends[-1]):
                raise ValueError("corrupt huffman stream")
        elif int(cursors[-1]) != int(ends[-1]):
            raise ValueError("corrupt huffman stream")
        return out.reshape(-1)[:count]

    def decode_scalar(self, payload: bytes | memoryview,
                      count: int) -> np.ndarray:
        """Reference scalar decoder: walk a flat two-array tree bit by bit.

        Retained as the HUF1 path and as the ground truth the property
        tests compare the wavefront decoder against; intentionally a
        per-bit Python loop.
        """
        if count == 0:
            return np.zeros(0, dtype=np.uint64)
        # flat tree: nodes[i] = (left, right); negative entries are leaves
        left, right, leaf = self._build_tree()
        bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
        out = np.empty(count, dtype=np.uint64)
        node = 0
        k = 0
        bl = bits.tolist()
        for b in bl:
            node = right[node] if b else left[node]
            if node < 0:
                raise ValueError("corrupt huffman stream")
            sym = leaf[node]
            if sym >= 0:
                out[k] = sym
                k += 1
                if k == count:
                    return out
                node = 0
        raise ValueError("huffman stream exhausted before all symbols decoded")

    def _build_tree(self) -> tuple[list[int], list[int], list[int]]:
        left = [-1]
        right = [-1]
        leaf = [-1]
        for sym, code in self.codes.items():
            length = self.lengths[sym]
            node = 0
            for bitpos in range(length - 1, -1, -1):
                bit = (code >> bitpos) & 1
                children = right if bit else left
                if children[node] == -1:
                    left.append(-1)
                    right.append(-1)
                    leaf.append(-1)
                    children[node] = len(left) - 1
                node = children[node]
            leaf[node] = sym
        return left, right, leaf


def huffman_encode(symbols: np.ndarray) -> bytes:
    """One-shot: build a codec from data and emit a self-describing stream.

    Emits the HUF2 framing: a varint-coded table of per-block payload
    bit lengths sits between the header and the code-length table, so
    the decoder can fan out block-parallel.  The payload bits are
    identical to what the HUF1 framing carried.
    """
    s = np.ascontiguousarray(symbols, dtype=np.uint64).reshape(-1)
    codec = HuffmanCodec.from_data(s)
    payload, nbits = codec.encode(s)
    if s.size:
        widths = codec.symbol_widths(s)
        edges = np.arange(_BLOCK, s.size, _BLOCK, dtype=np.int64)
        csum = np.cumsum(widths, dtype=np.int64)
        marks = np.concatenate((csum[edges - 1], csum[-1:]))
        block_bits = np.diff(np.concatenate(([0], marks)))
    else:
        block_bits = np.zeros(0, dtype=np.int64)
    sync = varint_encode_array(block_bits.astype(np.uint64))
    table = codec.serialize_table()
    return (
        _MAGIC2
        + varint_encode(s.size)
        + varint_encode(nbits)
        + varint_encode(len(sync))
        + sync
        + varint_encode(len(table))
        + table
        + payload
    )


def huffman_decode(stream: bytes | memoryview) -> np.ndarray:
    """Inverse of :func:`huffman_encode`; also reads legacy HUF1 streams."""
    view = memoryview(stream)
    magic = bytes(view[:4])
    if magic == _MAGIC2:
        count, pos = varint_decode(stream, 4)
        _nbits, pos = varint_decode(stream, pos)
        sync_len, pos = varint_decode(stream, pos)
        nblocks = (count + _BLOCK - 1) // _BLOCK
        block_bits, used = varint_decode_array(view[pos:pos + sync_len],
                                               nblocks)
        if used != sync_len:
            raise ValueError("corrupt huffman stream: bad sync table")
        pos += sync_len
        table_len, pos = varint_decode(stream, pos)
        codec, _ = HuffmanCodec.deserialize_table(stream, pos)
        payload = bytes(view[pos + table_len:])
        return codec.decode(payload, count,
                            block_bits=block_bits.astype(np.int64))
    if magic == _MAGIC:
        count, pos = varint_decode(stream, 4)
        _nbits, pos = varint_decode(stream, pos)
        table_len, pos = varint_decode(stream, pos)
        codec, _ = HuffmanCodec.deserialize_table(stream, pos)
        payload = bytes(view[pos + table_len:])
        return codec.decode_scalar(payload, count)
    raise ValueError("not a huffman stream (bad magic)")
