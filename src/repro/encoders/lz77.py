"""A from-scratch sliding-window (LZ77-family) byte codec.

Greedy hash-chain matcher over 4-byte anchors with a bounded window and
chain depth, emitting ``(literal-run, match)`` token pairs:

    token := varint(lit_len) lit_bytes varint(match_len) varint(distance)

``match_len == 0`` terminates the stream (distance omitted).  Decoding
expands matches with the classic overlapped-copy semantics, chunked so
long self-referential runs stay O(n).

This codec backs the ``pressio-lz`` lossless compressor plugin.  It is a
pure-Python demonstration of the "third-party codec" story, not the fast
path — the residual codec in :mod:`repro.encoders.residual` is the
performance backend.
"""

from __future__ import annotations

from .varint import varint_decode, varint_encode

__all__ = ["lz77_encode", "lz77_decode"]

_MAGIC = b"PLZ1"
_MIN_MATCH = 4
_MAX_CHAIN = 16


def lz77_encode(data: bytes, window: int = 1 << 16) -> bytes:
    """Encode ``data``; ``window`` bounds match distances."""
    n = len(data)
    out = bytearray(_MAGIC)
    out += varint_encode(n)
    if n == 0:
        out += varint_encode(0)  # lit_len 0
        out += varint_encode(0)  # match_len 0 (end)
        return bytes(out)

    table: dict[bytes, list[int]] = {}
    pos = 0
    lit_start = 0

    def emit(lit_end: int, match_len: int, distance: int) -> None:
        out.extend(varint_encode(lit_end - lit_start))
        out.extend(data[lit_start:lit_end])
        out.extend(varint_encode(match_len))
        if match_len:
            out.extend(varint_encode(distance))

    while pos + _MIN_MATCH <= n:
        key = data[pos:pos + _MIN_MATCH]
        candidates = table.get(key)
        best_len = 0
        best_dist = 0
        if candidates:
            lo = pos - window
            for cand in reversed(candidates[-_MAX_CHAIN:]):
                if cand < lo:
                    break
                length = _MIN_MATCH
                limit = n - pos
                while length < limit and data[cand + length] == data[pos + length]:
                    length += 1
                if length > best_len:
                    best_len = length
                    best_dist = pos - cand
                    if length >= 64:
                        break
        table.setdefault(key, []).append(pos)
        if best_len >= _MIN_MATCH:
            emit(pos, best_len, best_dist)
            # index a sample of the matched region to keep encode O(n)
            step = 1 if best_len <= 16 else 4
            for p in range(pos + 1, min(pos + best_len, n - _MIN_MATCH), step):
                table.setdefault(data[p:p + _MIN_MATCH], []).append(p)
            pos += best_len
            lit_start = pos
        else:
            pos += 1

    emit(n, 0, 0)
    return bytes(out)


def lz77_decode(stream: bytes | memoryview) -> bytes:
    """Inverse of :func:`lz77_encode`."""
    buf = bytes(stream)
    if buf[:4] != _MAGIC:
        raise ValueError("not a pressio-lz stream (bad magic)")
    total, pos = varint_decode(buf, 4)
    out = bytearray()
    while True:
        lit_len, pos = varint_decode(buf, pos)
        if lit_len:
            out += buf[pos:pos + lit_len]
            pos += lit_len
        match_len, pos = varint_decode(buf, pos)
        if match_len == 0:
            break
        distance, pos = varint_decode(buf, pos)
        if distance <= 0 or distance > len(out):
            raise ValueError("corrupt pressio-lz stream: bad distance")
        start = len(out) - distance
        while match_len > 0:
            chunk = out[start:start + min(match_len, distance)]
            out += chunk
            match_len -= len(chunk)
            start += len(chunk)
    if len(out) != total:
        raise ValueError(
            f"corrupt pressio-lz stream: expected {total} bytes, got {len(out)}"
        )
    return bytes(out)
