"""Linear quantization helpers shared by the lossy natives.

``quantize_uniform`` maps reals onto integer bins of width ``2*eb`` so
that dequantization reconstructs within ±eb — the textbook error-bounded
quantizer every abs-bound lossy compressor in the paper builds on.

The hot path is written as a fixed number of whole-array passes with no
data-dependent branches: scale, one fused validation ``max`` (NaN
propagates through ``max``, so non-finite input and overflow share a
single reduction — the error kind is only disambiguated on the cold
raise path), round in place, cast.  Callers on the native hot paths
pass ``out=``/``scratch=`` buffers from :mod:`repro.native.pool` to
keep the per-operation allocation count at zero.
"""

from __future__ import annotations

import numpy as np

__all__ = ["quantize_uniform", "dequantize_uniform", "safe_quantizer_step"]

# |code| beyond this risks int64 overflow in the Lorenzo stage, which sums
# up to 2**ndim codes; stay far below 2**63.
_MAX_CODE = 2**56


def quantize_uniform(values: np.ndarray, error_bound: float,
                     out: np.ndarray | None = None,
                     scratch: np.ndarray | None = None) -> np.ndarray:
    """Quantize to int64 codes with bin width ``2*error_bound``.

    Guarantees ``|value - dequantize(code)| <= eb*(1+u) + u*|value|``
    elementwise for finite inputs, where ``u`` is the double-precision
    unit roundoff (2^-53) — i.e. the mathematical bound ``eb`` up to one
    rounding of the scaled value.  Raises when the bound is so tight
    relative to the value magnitudes that codes would overflow, or when
    the input holds non-finite values.

    ``out`` (int64, matching shape) receives the codes without a fresh
    allocation; ``scratch`` (float64, matching shape) is used for the
    scaled intermediate.  Both default to fresh arrays.
    """
    if error_bound <= 0:
        raise ValueError(f"error_bound must be positive, got {error_bound}")
    arr = np.asarray(values)
    if scratch is not None and arr.size:
        # dtype= pins the computation to float64 even for float32 input,
        # matching the allocation path's astype-then-divide exactly
        scaled = np.divide(arr, 2.0 * error_bound, out=scratch,
                           dtype=np.float64)
    else:
        scaled = np.asarray(arr, dtype=np.float64) / (2.0 * error_bound)
    if arr.size:
        peak = float(np.max(np.abs(scaled)))
        # NaN fails every comparison, so this single check catches both
        # non-finite input (NaN peak, or inf >= bound) and overflow.
        if not peak < _MAX_CODE:
            if not np.all(np.isfinite(arr)):
                raise ValueError("cannot quantize non-finite values")
            raise ValueError(
                "error bound too small relative to data magnitude: "
                f"max |value/2eb| = {peak:.3g} >= {_MAX_CODE:g}"
            )
    np.rint(scaled, out=scaled)
    if out is not None:
        np.copyto(out, scaled, casting="unsafe")
        return out
    return scaled.astype(np.int64)


def dequantize_uniform(codes: np.ndarray, error_bound: float,
                       dtype: np.dtype = np.dtype(np.float64),
                       out: np.ndarray | None = None) -> np.ndarray:
    """Reconstruct bin centers from int64 codes.

    ``out`` (of ``dtype``, matching shape) receives the reconstruction
    without allocating.
    """
    if error_bound <= 0:
        raise ValueError(f"error_bound must be positive, got {error_bound}")
    with np.errstate(over="ignore", invalid="ignore"):
        # absurd step values only arise from corrupted streams; the
        # resulting inf/nan buffers fail later validation rather than
        # spraying warnings here
        if out is not None:
            np.multiply(np.asarray(codes), 2.0 * error_bound,
                        out=out, casting="unsafe")
            return out
        scaled = np.asarray(codes, dtype=np.float64) * (2.0 * error_bound)
        return scaled.astype(dtype)


def safe_quantizer_step(values: np.ndarray, requested_eb: float) -> float:
    """Largest usable error bound not exceeding ``requested_eb``.

    Currently the identity with validation; kept as the single place a
    platform-specific floor could be applied.
    """
    if requested_eb <= 0:
        raise ValueError("error bound must be positive")
    return float(requested_eb)
