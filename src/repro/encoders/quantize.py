"""Linear quantization helpers shared by the lossy natives.

``quantize_uniform`` maps reals onto integer bins of width ``2*eb`` so
that dequantization reconstructs within ±eb — the textbook error-bounded
quantizer every abs-bound lossy compressor in the paper builds on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["quantize_uniform", "dequantize_uniform", "safe_quantizer_step"]

# |code| beyond this risks int64 overflow in the Lorenzo stage, which sums
# up to 2**ndim codes; stay far below 2**63.
_MAX_CODE = 2**56


def quantize_uniform(values: np.ndarray, error_bound: float) -> np.ndarray:
    """Quantize to int64 codes with bin width ``2*error_bound``.

    Guarantees ``|value - dequantize(code)| <= eb*(1+u) + u*|value|``
    elementwise for finite inputs, where ``u`` is the double-precision
    unit roundoff (2^-53) — i.e. the mathematical bound ``eb`` up to one
    rounding of the scaled value.  Raises when the bound is so tight
    relative to the value magnitudes that codes would overflow.
    """
    if error_bound <= 0:
        raise ValueError(f"error_bound must be positive, got {error_bound}")
    arr = np.asarray(values, dtype=np.float64)
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValueError("cannot quantize non-finite values")
    scaled = arr / (2.0 * error_bound)
    if arr.size and float(np.abs(scaled).max()) >= _MAX_CODE:
        raise ValueError(
            "error bound too small relative to data magnitude: "
            f"max |value/2eb| = {float(np.abs(scaled).max()):.3g} >= {_MAX_CODE:g}"
        )
    return np.rint(scaled).astype(np.int64)


def dequantize_uniform(codes: np.ndarray, error_bound: float,
                       dtype: np.dtype = np.dtype(np.float64)) -> np.ndarray:
    """Reconstruct bin centers from int64 codes."""
    if error_bound <= 0:
        raise ValueError(f"error_bound must be positive, got {error_bound}")
    with np.errstate(over="ignore", invalid="ignore"):
        # absurd step values only arise from corrupted streams; the
        # resulting inf/nan buffers fail later validation rather than
        # spraying warnings here
        scaled = np.asarray(codes, dtype=np.float64) * (2.0 * error_bound)
        return scaled.astype(dtype)


def safe_quantizer_step(values: np.ndarray, requested_eb: float) -> float:
    """Largest usable error bound not exceeding ``requested_eb``.

    Currently the identity with validation; kept as the single place a
    platform-specific floor could be applied.
    """
    if requested_eb <= 0:
        raise ValueError("error bound must be positive")
    return float(requested_eb)
