"""Lorenzo finite-difference predictors.

The d-dimensional Lorenzo predictor predicts each value from its
already-visited corner neighbors; its residual is exactly the composition
of first differences along every axis.  On an *integer* field the
prediction is exact arithmetic, so encoding and decoding are both fully
vectorized:

* encode: ``numpy.diff``-style differencing along each axis in turn;
* decode: cumulative sums along the same axes in reverse order.

This "quantize first, predict on integers" factorization is the
dual-quantization scheme introduced by cuSZ (Tian et al., PACT 2020,
cited by the paper) and keeps the hot loop at C speed rather than the
value-by-value reconstruction loop classic SZ uses.

Both directions ping-pong between at most one scratch buffer and the
working array instead of allocating a fresh array per axis; the native
cores pass pooled scratch (:mod:`repro.native.pool`) so the whole
predict stage runs allocation-free.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lorenzo_encode", "lorenzo_decode", "lorenzo_predict_floats"]


def _diff_axis_into(src: np.ndarray, dst: np.ndarray, axis: int) -> None:
    """``dst = first difference of src along axis`` (dst must not alias)."""
    sl_hi = [slice(None)] * src.ndim
    sl_lo = [slice(None)] * src.ndim
    sl_first = [slice(None)] * src.ndim
    sl_hi[axis] = slice(1, None)
    sl_lo[axis] = slice(None, -1)
    sl_first[axis] = slice(0, 1)
    np.subtract(src[tuple(sl_hi)], src[tuple(sl_lo)],
                out=dst[tuple(sl_hi)])
    dst[tuple(sl_first)] = src[tuple(sl_first)]


def lorenzo_encode(quantized: np.ndarray,
                   scratch: np.ndarray | None = None,
                   clobber: bool = False) -> np.ndarray:
    """Residuals of the d-dimensional Lorenzo predictor on an int field.

    Works in wrap-around uint64 arithmetic internally so extreme inputs
    cannot trip int64 overflow warnings; the decode side wraps back.

    ``scratch`` (int64/uint64, same shape) provides the second ping-pong
    buffer; with ``clobber=True`` the input itself may serve as one, so
    no allocation happens at all.  The returned array aliases whichever
    buffer holds the final pass — either ``scratch`` or (with clobber)
    the input.
    """
    arr = np.ascontiguousarray(quantized, dtype=np.int64).view(np.uint64)
    if arr.ndim == 0:
        return arr.reshape(()).copy().view(np.int64)
    if scratch is None:
        scratch = np.empty_like(arr)
    else:
        scratch = scratch.view(np.uint64).reshape(arr.shape)
    cur, nxt = arr, scratch
    first = True
    for axis in range(arr.ndim):
        _diff_axis_into(cur, nxt, axis)
        if first and not clobber:
            # the input must stay intact: bring the second buffer in
            # only after the first pass has moved data off the input
            cur, nxt = nxt, np.empty_like(arr) if arr.ndim > 1 else arr
            first = False
        else:
            cur, nxt = nxt, cur
    return cur.view(np.int64)


def lorenzo_decode(residuals: np.ndarray,
                   clobber: bool = False) -> np.ndarray:
    """Invert :func:`lorenzo_encode` with per-axis cumulative sums.

    Cumulative sums run in place on one working copy (or directly on
    the input with ``clobber=True``), so decode allocates at most once.
    """
    arr = np.ascontiguousarray(residuals, dtype=np.int64).view(np.uint64)
    if not clobber:
        arr = arr.copy()
    for axis in range(arr.ndim - 1, -1, -1):
        np.cumsum(arr, axis=axis, dtype=np.uint64, out=arr)
    return arr.view(np.int64)


def lorenzo_predict_floats(values: np.ndarray) -> np.ndarray:
    """Classic floating-point Lorenzo prediction residuals.

    Used by the fpzip native, which predicts on the float values
    themselves before integerizing the residual; the prediction here uses
    the *original* neighbors (valid for lossless coding only).
    """
    arr = np.ascontiguousarray(values)
    out = arr.astype(np.float64, copy=True)
    for axis in range(arr.ndim):
        sl_hi = [slice(None)] * arr.ndim
        sl_lo = [slice(None)] * arr.ndim
        sl_hi[axis] = slice(1, None)
        sl_lo[axis] = slice(None, -1)
        out[tuple(sl_hi)] = out[tuple(sl_hi)] - out[tuple(sl_lo)]
    return out
