"""Lorenzo finite-difference predictors.

The d-dimensional Lorenzo predictor predicts each value from its
already-visited corner neighbors; its residual is exactly the composition
of first differences along every axis.  On an *integer* field the
prediction is exact arithmetic, so encoding and decoding are both fully
vectorized:

* encode: ``numpy.diff``-style differencing along each axis in turn;
* decode: cumulative sums along the same axes in reverse order.

This "quantize first, predict on integers" factorization is the
dual-quantization scheme introduced by cuSZ (Tian et al., PACT 2020,
cited by the paper) and keeps the hot loop at C speed rather than the
value-by-value reconstruction loop classic SZ uses.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lorenzo_encode", "lorenzo_decode", "lorenzo_predict_floats"]


def _diff_axis_int(arr: np.ndarray, axis: int) -> np.ndarray:
    """First difference along ``axis`` keeping the leading element."""
    out = arr.copy()
    sl_hi = [slice(None)] * arr.ndim
    sl_lo = [slice(None)] * arr.ndim
    sl_hi[axis] = slice(1, None)
    sl_lo[axis] = slice(None, -1)
    out[tuple(sl_hi)] = arr[tuple(sl_hi)] - arr[tuple(sl_lo)]
    return out


def lorenzo_encode(quantized: np.ndarray) -> np.ndarray:
    """Residuals of the d-dimensional Lorenzo predictor on an int field.

    Works in wrap-around uint64 arithmetic internally so extreme inputs
    cannot trip int64 overflow warnings; the decode side wraps back.
    """
    arr = np.ascontiguousarray(quantized, dtype=np.int64).view(np.uint64)
    for axis in range(arr.ndim):
        arr = _diff_axis_int(arr, axis)
    return arr.view(np.int64)


def lorenzo_decode(residuals: np.ndarray) -> np.ndarray:
    """Invert :func:`lorenzo_encode` with per-axis cumulative sums."""
    arr = np.ascontiguousarray(residuals, dtype=np.int64).view(np.uint64)
    for axis in range(arr.ndim - 1, -1, -1):
        arr = np.cumsum(arr, axis=axis, dtype=np.uint64)
    return arr.view(np.int64)


def lorenzo_predict_floats(values: np.ndarray) -> np.ndarray:
    """Classic floating-point Lorenzo prediction residuals.

    Used by the fpzip native, which predicts on the float values
    themselves before integerizing the residual; the prediction here uses
    the *original* neighbors (valid for lossless coding only).
    """
    arr = np.ascontiguousarray(values)
    out = arr.astype(np.float64, copy=True)
    for axis in range(arr.ndim):
        sl_hi = [slice(None)] * arr.ndim
        sl_lo = [slice(None)] * arr.ndim
        sl_hi[axis] = slice(1, None)
        sl_lo[axis] = slice(None, -1)
        out[tuple(sl_hi)] = out[tuple(sl_hi)] - out[tuple(sl_lo)]
    return out
