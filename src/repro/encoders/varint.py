"""LEB128 variable-length unsigned integers.

Used for stream headers and small metadata tables where a fixed 8-byte
field would waste space.  Scalars use a simple loop; arrays use a
vectorized two-pass construction (count bytes, then scatter).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "varint_encode",
    "varint_decode",
    "varint_encode_array",
    "varint_decode_array",
]


def varint_encode(value: int) -> bytes:
    """Encode one non-negative integer as LEB128 bytes."""
    if value < 0:
        raise ValueError("varint_encode requires a non-negative value")
    out = bytearray()
    v = int(value)
    while True:
        byte = v & 0x7F
        v >>= 7
        if v:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def varint_decode(buf: bytes | memoryview, offset: int = 0) -> tuple[int, int]:
    """Decode one LEB128 integer; returns (value, next_offset)."""
    value = 0
    shift = 0
    pos = offset
    view = memoryview(buf)
    while True:
        if pos >= len(view):
            raise ValueError("truncated varint")
        byte = view[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not (byte & 0x80):
            return value, pos
        shift += 7
        if shift > 70:
            raise ValueError("varint too long")


def varint_encode_array(values: np.ndarray) -> bytes:
    """Encode an array of non-negative integers as concatenated LEB128.

    Vectorized: compute each value's byte length, then write each of the
    (at most ten) byte positions with a masked scatter.
    """
    v = np.ascontiguousarray(values, dtype=np.uint64)
    if v.size == 0:
        return b""
    # number of 7-bit groups per value (at least 1)
    nbits = np.zeros(v.shape, dtype=np.int64)
    tmp = v.copy()
    nz = tmp > 0
    while np.any(nz):
        nbits[nz] += 1
        tmp >>= np.uint64(7)
        nz = tmp > 0
    nbytes = np.maximum(nbits, 1)
    offsets = np.concatenate(([0], np.cumsum(nbytes)))
    total = int(offsets[-1])
    out = np.zeros(total, dtype=np.uint8)
    max_len = int(nbytes.max())
    for k in range(max_len):
        mask = nbytes > k
        chunk = ((v[mask] >> np.uint64(7 * k)) & np.uint64(0x7F)).astype(np.uint8)
        more = (nbytes[mask] > k + 1).astype(np.uint8) << 7
        out[offsets[:-1][mask] + k] = chunk | more
    return out.tobytes()


def varint_decode_array(buf: bytes | memoryview, count: int) -> tuple[np.ndarray, int]:
    """Decode ``count`` LEB128 integers; returns (array, bytes_consumed).

    Vectorized: continuation bits identify value boundaries, after which
    all 7-bit groups are combined with segmented shifts.
    """
    raw = np.frombuffer(buf, dtype=np.uint8)
    if count == 0:
        return np.zeros(0, dtype=np.uint64), 0
    is_last = (raw & 0x80) == 0
    last_positions = np.flatnonzero(is_last)
    if last_positions.size < count:
        raise ValueError("truncated varint array")
    end = int(last_positions[count - 1]) + 1
    raw = raw[:end]
    is_last = is_last[:end]
    # value index of each byte
    value_idx = np.concatenate(([0], np.cumsum(is_last)[:-1]))
    starts = np.concatenate(([0], last_positions[: count - 1] + 1))
    group_idx = np.arange(end) - starts[value_idx]
    if np.any(group_idx > 9):
        raise ValueError("varint too long")
    contrib = (raw.astype(np.uint64) & np.uint64(0x7F)) << (
        group_idx.astype(np.uint64) * np.uint64(7)
    )
    values = np.zeros(count, dtype=np.uint64)
    np.add.at(values, value_idx, contrib)
    return values, end
