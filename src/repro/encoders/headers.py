"""Binary stream-header helpers shared by the native compressors.

Every native library in this reproduction writes a small self-describing
header (magic, dtype, dims, mode parameters) in front of its payload so
decompression can validate the stream — the metadata passing the paper's
Section II identifies as the hard part of a uniform interface.
"""

from __future__ import annotations

import struct

import numpy as np

from ..core.dtype import DType
from ..core.status import CorruptStreamError

__all__ = ["write_header", "read_header", "HeaderError"]

HeaderError = CorruptStreamError

_FMT_VERSION = 1


def write_header(magic: bytes, dtype: DType, dims: tuple[int, ...],
                 doubles: tuple[float, ...] = (), ints: tuple[int, ...] = ()) -> bytes:
    """Serialize a stream header.

    Layout (little-endian): magic(4) version(u8) dtype(u8) ndims(u8)
    ndoubles(u8) nints(u8) dims(u64 each) doubles(f64 each) ints(i64 each).
    """
    if len(magic) != 4:
        raise ValueError("magic must be exactly 4 bytes")
    head = struct.pack(
        "<4sBBBBB", magic, _FMT_VERSION, int(dtype), len(dims), len(doubles), len(ints)
    )
    body = struct.pack(f"<{len(dims)}Q", *dims) if dims else b""
    body += struct.pack(f"<{len(doubles)}d", *doubles) if doubles else b""
    body += struct.pack(f"<{len(ints)}q", *ints) if ints else b""
    return head + body


def read_header(stream: bytes | memoryview, magic: bytes
                ) -> tuple[DType, tuple[int, ...], tuple[float, ...], tuple[int, ...], int]:
    """Parse a header written by :func:`write_header`.

    Returns (dtype, dims, doubles, ints, payload_offset); raises
    :class:`CorruptStreamError` on mismatch.
    """
    view = memoryview(stream)
    if len(view) < 9:
        raise CorruptStreamError("stream too short for header")
    got_magic, version, dtype_raw, ndims, ndoubles, nints = struct.unpack_from(
        "<4sBBBBB", view, 0
    )
    if got_magic != magic:
        raise CorruptStreamError(
            f"bad magic: expected {magic!r}, got {got_magic!r}"
        )
    if version != _FMT_VERSION:
        raise CorruptStreamError(f"unsupported header version {version}")
    try:
        dtype = DType(dtype_raw)
    except ValueError:
        raise CorruptStreamError(f"invalid dtype code {dtype_raw}") from None
    pos = 9
    need = 8 * (ndims + ndoubles + nints)
    if len(view) < pos + need:
        raise CorruptStreamError("stream truncated inside header")
    dims = struct.unpack_from(f"<{ndims}Q", view, pos) if ndims else ()
    pos += 8 * ndims
    doubles = struct.unpack_from(f"<{ndoubles}d", view, pos) if ndoubles else ()
    pos += 8 * ndoubles
    ints = struct.unpack_from(f"<{nints}q", view, pos) if nints else ()
    pos += 8 * nints
    if any(not np.isfinite(d) for d in doubles):
        # NaN parameters are legal in principle but always indicate stream
        # corruption for the compressors in this repo
        raise CorruptStreamError("non-finite parameter in header")
    return dtype, tuple(int(d) for d in dims), doubles, tuple(int(i) for i in ints), pos
