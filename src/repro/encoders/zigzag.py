"""Zigzag mapping between signed and unsigned integers.

Maps 0, -1, 1, -2, 2, ... to 0, 1, 2, 3, 4, ... so that residuals centered
on zero become small unsigned values, which downstream byte/entropy coders
exploit.  All operations are vectorized and overflow-safe for the full
int64 range (the arithmetic is done in uint64 two's complement).

Both directions accept ``out``/``scratch`` buffers (uint64 or int64,
matching shape) so the hot paths can run on pooled memory without
allocating; with both provided, no arrays are created.
"""

from __future__ import annotations

import numpy as np

__all__ = ["zigzag_encode", "zigzag_decode"]


def zigzag_encode(values: np.ndarray,
                  out: np.ndarray | None = None,
                  scratch: np.ndarray | None = None) -> np.ndarray:
    """Map a signed integer array to unsigned zigzag codes.

    ``v >= 0 -> 2v`` and ``v < 0 -> -2v - 1``; computed branch-free as
    ``(v << 1) ^ (v >> 63)`` in two's complement.
    """
    v = np.ascontiguousarray(values, dtype=np.int64)
    u = v.view(np.uint64)
    if out is None or scratch is None:
        sign = np.ascontiguousarray(v >> np.int64(63)).view(np.uint64)
        return (u << np.uint64(1)) ^ sign
    o = out.view(np.uint64).reshape(v.shape)
    s = scratch.view(np.uint64).reshape(v.shape)
    np.right_shift(v, np.int64(63), out=s.view(np.int64))
    np.left_shift(u, np.uint64(1), out=o)
    np.bitwise_xor(o, s, out=o)
    return o


def zigzag_decode(codes: np.ndarray,
                  out: np.ndarray | None = None,
                  scratch: np.ndarray | None = None) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    u = np.asarray(codes, dtype=np.uint64)
    if out is None or scratch is None:
        half = (u >> np.uint64(1)).view(np.int64)
        sign = -(u & np.uint64(1)).view(np.int64)
        return half ^ sign
    o = out.view(np.int64).reshape(u.shape)
    s = scratch.view(np.uint64).reshape(u.shape)
    np.right_shift(u, np.uint64(1), out=s)
    np.bitwise_and(u, np.uint64(1), out=o.view(np.uint64))
    np.negative(o, out=o)
    np.bitwise_xor(s.view(np.int64), o, out=o)
    return o
