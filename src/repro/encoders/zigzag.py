"""Zigzag mapping between signed and unsigned integers.

Maps 0, -1, 1, -2, 2, ... to 0, 1, 2, 3, 4, ... so that residuals centered
on zero become small unsigned values, which downstream byte/entropy coders
exploit.  All operations are vectorized and overflow-safe for the full
int64 range (the arithmetic is done in uint64 two's complement).
"""

from __future__ import annotations

import numpy as np

__all__ = ["zigzag_encode", "zigzag_decode"]


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map a signed integer array to unsigned zigzag codes.

    ``v >= 0 -> 2v`` and ``v < 0 -> -2v - 1``; computed branch-free as
    ``(v << 1) ^ (v >> 63)`` in two's complement.
    """
    v = np.ascontiguousarray(values, dtype=np.int64)
    u = v.view(np.uint64)
    sign = np.ascontiguousarray(v >> np.int64(63)).view(np.uint64)
    return (u << np.uint64(1)) ^ sign


def zigzag_decode(codes: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    u = np.asarray(codes, dtype=np.uint64)
    half = (u >> np.uint64(1)).view(np.int64)
    sign = -(u & np.uint64(1)).view(np.int64)
    return half ^ sign
