"""Run-length encoding over byte streams.

Format: a sequence of (varint run_length, 1 byte value) pairs.  Run
detection and expansion are vectorized with boundary masks and
``numpy.repeat``; only the header parse is scalar.
"""

from __future__ import annotations

import numpy as np

from .varint import varint_decode_array, varint_encode_array

__all__ = ["rle_encode", "rle_decode"]

_MAGIC = b"RLE1"


def rle_encode(data: bytes | np.ndarray) -> bytes:
    """Encode bytes as (count, value) runs."""
    arr = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray, memoryview)) \
        else np.ascontiguousarray(data, dtype=np.uint8).reshape(-1)
    if arr.size == 0:
        return _MAGIC + varint_encode_array(np.array([0], dtype=np.uint64))
    boundaries = np.flatnonzero(np.diff(arr)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [arr.size]))
    run_lengths = (ends - starts).astype(np.uint64)
    values = arr[starts]
    header = varint_encode_array(
        np.concatenate(([np.uint64(run_lengths.size)], run_lengths))
    )
    return _MAGIC + header + values.tobytes()


def rle_decode(stream: bytes | memoryview) -> bytes:
    """Inverse of :func:`rle_encode`."""
    view = memoryview(stream)
    if bytes(view[:4]) != _MAGIC:
        raise ValueError("not an RLE stream (bad magic)")
    count_arr, consumed = varint_decode_array(view[4:], 1)
    n_runs = int(count_arr[0])
    if n_runs == 0:
        return b""
    lengths, consumed2 = varint_decode_array(view[4 + consumed:], n_runs)
    values = np.frombuffer(view, dtype=np.uint8,
                           offset=4 + consumed + consumed2, count=n_runs)
    return np.repeat(values, lengths.astype(np.int64)).tobytes()
