"""Scalar reference implementations of the vectorized encoder kernels.

Each function here is the straight-line, per-element transliteration of
the algorithm its vectorized counterpart implements.  They exist for two
reasons:

* the property tests (``tests/properties/``) assert the production
  kernels are byte-identical to these across dtypes, degenerate shapes,
  and adversarial values — the reference is simple enough to audit by
  eye;
* they document the algorithms without numpy idiom in the way.

They are **intentionally slow**: per-element Python loops over array
indices.  The hot-path linter (rule HP004) flags exactly this pattern,
and these functions carry hot-path-shaped names on purpose so they show
up in the lint baseline (``lint-baseline.json``) as the canonical
example of a *suppressed* finding — scalar-by-design code that must
never be "fixed" into the production path.

Never import this module from production code paths.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "_encode_quantize_reference",
    "_decode_dequantize_reference",
    "_encode_zigzag_reference",
    "_decode_zigzag_reference",
    "_encode_lorenzo_reference",
    "_decode_lorenzo_reference",
]

_U64 = 1 << 64


def _encode_quantize_reference(values: np.ndarray,
                               error_bound: float) -> np.ndarray:
    """Per-element uniform quantizer (matches ``quantize_uniform``)."""
    flat = np.asarray(values).reshape(-1)
    out = np.empty(flat.size, dtype=np.int64)
    step = 2.0 * error_bound
    for i in range(flat.size):
        scaled = np.float64(flat[i]) / step
        if not abs(scaled) < 2 ** 56:  # same overflow guard as production
            if not np.isfinite(np.float64(flat[i])):
                raise ValueError("cannot quantize non-finite values")
            raise ValueError(
                "error bound too small relative to data magnitude")
        out[i] = np.int64(np.rint(scaled))
    return out.reshape(np.asarray(values).shape)


def _decode_dequantize_reference(codes: np.ndarray, error_bound: float,
                                 dtype: np.dtype = np.dtype(np.float64)
                                 ) -> np.ndarray:
    """Per-element inverse of the uniform quantizer."""
    flat = np.asarray(codes).reshape(-1)
    out = np.empty(flat.size, dtype=np.float64)
    step = 2.0 * error_bound
    for i in range(flat.size):
        out[i] = np.float64(flat[i]) * step
    return out.reshape(np.asarray(codes).shape).astype(dtype)


def _encode_zigzag_reference(values: np.ndarray) -> np.ndarray:
    """Per-element zigzag map: 0,-1,1,-2,... -> 0,1,2,3,..."""
    flat = np.ascontiguousarray(values, dtype=np.int64).reshape(-1)
    out = np.empty(flat.size, dtype=np.uint64)
    for i in range(flat.size):
        v = int(flat[i])
        out[i] = (2 * v if v >= 0 else -2 * v - 1) % _U64
    return out.reshape(np.asarray(values).shape)


def _decode_zigzag_reference(codes: np.ndarray) -> np.ndarray:
    """Per-element inverse zigzag map."""
    flat = np.asarray(codes, dtype=np.uint64).reshape(-1)
    out = np.empty(flat.size, dtype=np.int64)
    for i in range(flat.size):
        u = int(flat[i])
        v = u >> 1 if u % 2 == 0 else -((u + 1) >> 1)
        out[i] = np.int64(v % _U64 - _U64 if v % _U64 >= _U64 // 2
                          else v % _U64)
    return out.reshape(np.asarray(codes).shape)


def _lorenzo_prediction(arr_int: list[int], shape: tuple[int, ...],
                        strides: tuple[int, ...], flat_idx: int,
                        coords: tuple[int, ...]) -> int:
    """Inclusion-exclusion corner prediction at one site (mod 2^64)."""
    ndim = len(shape)
    pred = 0
    # every nonempty subset of axes contributes a corner neighbor with
    # sign (-1)^(|subset|+1)
    for mask in range(1, 1 << ndim):
        off = 0
        ok = True
        bits = 0
        for axis in range(ndim):
            if mask >> axis & 1:
                if coords[axis] == 0:
                    ok = False
                    break
                off += strides[axis]
                bits += 1
        if not ok:
            continue
        sign = 1 if bits % 2 == 1 else -1
        pred += sign * arr_int[flat_idx - off]
    return pred % _U64


def _encode_lorenzo_reference(quantized: np.ndarray) -> np.ndarray:
    """Per-element d-dimensional Lorenzo residuals (wrap-around uint64).

    Out-of-range neighbors count as zero, matching the vectorized
    first-difference composition in ``lorenzo_encode``.
    """
    arr = np.ascontiguousarray(quantized, dtype=np.int64)
    shape = arr.shape
    strides = tuple(int(s) // arr.itemsize for s in arr.strides)
    vals = [int(v) % _U64 for v in arr.reshape(-1)]
    out = np.empty(len(vals), dtype=np.uint64)
    for flat_idx, coords in enumerate(np.ndindex(*shape) if shape
                                      else [()]):
        pred = _lorenzo_prediction(vals, shape, strides, flat_idx, coords)
        out[flat_idx] = (vals[flat_idx] - pred) % _U64
    return out.reshape(shape).view(np.int64)


def _decode_lorenzo_reference(residuals: np.ndarray) -> np.ndarray:
    """Per-element inverse: reconstruct each site from decoded neighbors."""
    arr = np.ascontiguousarray(residuals, dtype=np.int64)
    shape = arr.shape
    strides = tuple(int(s) // arr.itemsize for s in arr.strides)
    res = [int(v) % _U64 for v in arr.reshape(-1)]
    vals: list[int] = [0] * len(res)
    for flat_idx, coords in enumerate(np.ndindex(*shape) if shape
                                      else [()]):
        pred = _lorenzo_prediction(vals, shape, strides, flat_idx, coords)
        vals[flat_idx] = (res[flat_idx] + pred) % _U64
    out = np.empty(len(vals), dtype=np.uint64)
    for i in range(len(vals)):
        out[i] = vals[i]
    return out.reshape(shape).view(np.int64)
