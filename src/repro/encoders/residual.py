"""Byte-plane residual codec for prediction residuals.

Prediction-based compressors (our sz, zfp, mgard, fpzip natives)
produce signed residual arrays dominated by values near zero.  Two
stream formats live here:

* **RZC2** (current): residuals are zigzag mapped and the uint64 codes
  are split into little-endian *byte planes*; only the planes up to the
  largest code's byte length are stored, and each plane independently
  picks the cheapest of five encodings from byte statistics computed in
  single vectorized passes:

  - ``CONST`` — every byte equal: 1 byte;
  - ``RAW`` — verbatim;
  - ``SPARSE`` — positions + values of the nonzero bytes;
  - ``BITPACK`` — 32-value chunks packed at each chunk's own bit width
    (32·w bits is always whole bytes; both directions run as a single
    ``unpackbits`` + index gather/scatter + ``packbits`` over the whole
    plane — no per-chunk or per-width inner loop);
  - ``ZLIB`` — DEFLATE, tried only when a byte-histogram entropy
    estimate predicts it beats the structural encodings by enough to
    be worth its CPU cost (always worth trying at high effort levels).

  Both directions run on pooled scratch (:mod:`repro.native.pool`) and
  never scan byte-by-byte in Python.

* **RZC1** (legacy): ``min(code, 255)`` bytes plus an 8-byte overflow
  stream, the whole payload squeezed by a ``zlib``-family backend.
  Decode support is retained for old streams, and two cases still
  *encode* RZC1: the ``bz2``/``lzma`` backends (a strong generic
  entropy stage beats byte-plane structure when the caller asked for
  maximum compression) and arrays below ``_RZC1_CUTOFF`` elements
  (per-plane framing would dominate the payload).
"""

from __future__ import annotations

import bz2
import lzma
import sys
import zlib

import numpy as np

from ..native import pool as _pool
from .zigzag import zigzag_decode, zigzag_encode

__all__ = ["encode_residuals", "decode_residuals", "LOSSLESS_BACKENDS"]

_MAGIC = b"RZC1"
_MAGIC2 = b"RZC2"

_COMPRESSORS = {
    "zlib": lambda b, lvl: zlib.compress(b, lvl),
    "bz2": lambda b, lvl: bz2.compress(b, min(max(lvl, 1), 9)),
    "lzma": lambda b, lvl: lzma.compress(b, preset=min(max(lvl, 0), 9)),
    "none": lambda b, lvl: b,
}


def _deflate_plane(plane: np.ndarray, level: int) -> bytes:
    """DEFLATE one byte plane; any zlib stream, so decode is unchanged.

    At low effort, greedy level-1 LZ matching on near-incompressible
    byte planes is all cost and (measured on the bench grid) no gain —
    ``Z_HUFFMAN_ONLY`` is both smaller and ~2x faster there, because a
    byte plane's redundancy is almost entirely first-order.  High
    levels try the default match-searching strategy *as well* and keep
    the smaller stream, so more effort can never produce a larger
    plane than less effort did.
    """
    obj = zlib.compressobj(1, zlib.DEFLATED, zlib.MAX_WBITS, 9,
                           zlib.Z_HUFFMAN_ONLY)
    huff = obj.compress(plane) + obj.flush()
    if level <= 4:
        return huff
    deep = zlib.compress(plane, min(level, 9))
    return deep if len(deep) < len(huff) else huff
_DECOMPRESSORS = {
    "zlib": zlib.decompress,
    "bz2": bz2.decompress,
    "lzma": lzma.decompress,
    "none": lambda b: b,
}

LOSSLESS_BACKENDS = tuple(sorted(_COMPRESSORS))

_BACKEND_IDS = {name: i for i, name in enumerate(sorted(_COMPRESSORS))}
_BACKEND_NAMES = {i: name for name, i in _BACKEND_IDS.items()}

# plane encodings
_P_CONST = 0
_P_RAW = 1
_P_SPARSE = 2
_P_BITPACK = 3
_P_ZLIB = 4

_CHUNK = 32  # values per BITPACK chunk; 32*w bits is always whole bytes

#: below this many residuals, RZC2's per-plane framing dominates the
#: payload and RZC1's single squeezed stream is both smaller and no
#: slower, so tiny arrays keep the legacy format on encode too
_RZC1_CUTOFF = 2048

#: bit length of every possible byte value, for vectorized width lookup
_BITLEN8 = np.array([int(v).bit_length() for v in range(256)],
                    dtype=np.uint8)

#: for a chunk packed at width ``w``, the bit offsets (into the chunk's
#: 256-bit MSB-first expansion) of the stored bits, in stream order:
#: value ``j``'s low ``w`` bits, MSB first.  Lets encode and decode map
#: the whole plane with one ``unpackbits`` + gather/scatter +
#: ``packbits`` instead of a per-width shift/mask loop.
_PACK_OFFSETS = [
    np.array([j * 8 + (8 - w) + b for j in range(_CHUNK) for b in range(w)],
             dtype=np.int64)
    for w in range(9)
]

_LITTLE = sys.byteorder == "little"


def encode_residuals(residuals: np.ndarray, backend: str = "zlib",
                     level: int = 1) -> bytes:
    """Encode a signed int64 residual array to a self-describing stream."""
    if backend not in _COMPRESSORS:
        raise ValueError(f"unknown lossless backend {backend!r}; "
                         f"choose from {LOSSLESS_BACKENDS}")
    if backend in ("bz2", "lzma") or residuals.size < _RZC1_CUTOFF:
        return _encode_rzc1(residuals, backend, level)
    return _encode_rzc2(residuals, backend, level)


def decode_residuals(stream: bytes | memoryview) -> np.ndarray:
    """Decode a stream produced by :func:`encode_residuals` to int64."""
    view = memoryview(stream)
    magic = bytes(view[:4])
    if magic == _MAGIC2:
        return _decode_rzc2(view)
    if magic == _MAGIC:
        return _decode_rzc1(view)
    raise ValueError("not a residual stream (bad magic)")


# ----------------------------------------------------------------------
# RZC2: byte planes
# ----------------------------------------------------------------------
def _encode_rzc2(residuals: np.ndarray, backend: str, level: int) -> bytes:
    r = np.ascontiguousarray(residuals, dtype=np.int64).reshape(-1)
    n = r.size
    allow_zlib = backend == "zlib"
    header = bytearray(_MAGIC2)
    header += np.uint64(n).tobytes()
    if n == 0:
        header.append(0)
        header.append(_BACKEND_IDS[backend])
        return bytes(header)
    zz = _pool.acquire(n, np.uint64)
    scratch = _pool.acquire(n, np.uint64)
    plane_buf = _pool.acquire(n, np.uint8)
    try:
        codes = zigzag_encode(r, out=zz, scratch=scratch)
        maxc = int(codes.max())
        nplanes = (maxc.bit_length() + 7) // 8 if maxc else 0
        header.append(nplanes)
        header.append(_BACKEND_IDS[backend])
        if _LITTLE:
            planes8 = codes.view(np.uint8).reshape(n, 8)
        else:
            planes8 = codes.astype("<u8").view(np.uint8).reshape(n, 8)
        out = bytearray(bytes(header))
        for p in range(nplanes):
            np.copyto(plane_buf, planes8[:, p])
            tag, payload = _encode_plane(plane_buf, level, allow_zlib)
            out.append(tag)
            out += np.uint64(len(payload)).tobytes()
            out += payload
        return bytes(out)
    finally:
        _pool.release(zz, scratch, plane_buf)


def _encode_plane(plane: np.ndarray, level: int,
                  allow_zlib: bool) -> tuple[int, bytes]:
    """Pick the cheapest encoding for one contiguous uint8 plane.

    One ``bincount`` pass supplies the constant/sparse/entropy
    statistics; the per-chunk maxima reshape the plane in place when the
    length is a whole number of chunks (the common case for block-sized
    buffers), so the scratch copy only happens on ragged tails.
    """
    n = plane.size
    nchunks = (n + _CHUNK - 1) // _CHUNK
    counts = np.bincount(plane, minlength=256)
    k = n - int(counts[0])
    if k == 0:
        return _P_CONST, b"\x00"
    nz = np.flatnonzero(counts)
    mx = int(nz[-1])
    if counts[0] == 0 and nz.size == 1:
        return _P_CONST, bytes([mx])
    sparse_cost = 4 + 5 * k if n < 2**32 else n + 1
    raw_cost = n
    best = min(sparse_cost, raw_cost)
    if allow_zlib:
        if n < 1024:
            # tiny plane: DEFLATE costs microseconds and the
            # first-order entropy estimate misses run/positional
            # structure, so just try it
            attempt = True
        else:
            probs = counts[nz] / n
            entropy = float(-(probs * np.log2(probs)).sum())
            estimate = n * entropy / 8.0 * 1.05 + 12
            # DEFLATE is one C call — cheaper than even *scanning* the
            # plane for a BITPACK body — so try it whenever the
            # first-order estimate says it can win outright; at low
            # effort demand real slack so near-incompressible planes
            # (the usual LSB noise plane) skip straight to RAW
            margin = 0.8 if level <= 4 else 1.0
            attempt = estimate < margin * best
        if attempt:
            blob = _deflate_plane(plane, max(level, 1))
            if len(blob) < best:
                # a winning DEFLATE body skips the chunk-width scan
                # entirely; BITPACK only out-costs it on planes whose
                # chunks are locally narrow but globally diverse, and
                # those fail the entropy gate above
                return _P_ZLIB, blob
    if n % _CHUNK == 0:
        full = plane
        pooled = None
    else:
        pooled = _pool.acquire(nchunks * _CHUNK, np.uint8)
        pooled[:n] = plane
        pooled[n:] = 0
        full = pooled
    try:
        chunk_max = full.reshape(nchunks, _CHUNK).max(axis=1)
        widths = _BITLEN8[chunk_max]
        pack_cost = (nchunks + 1) // 2 + 4 * int(widths.sum(dtype=np.int64))
        if sparse_cost <= min(pack_cost, raw_cost):
            pos = np.flatnonzero(plane).astype("<u4")
            vals = plane[pos]
            return _P_SPARSE, (np.uint32(pos.size).tobytes()
                               + pos.tobytes() + vals.tobytes())
        if pack_cost < raw_cost:
            return _P_BITPACK, _bitpack_chunks(full, nchunks, widths)
        return _P_RAW, plane.tobytes()
    finally:
        if pooled is not None:
            _pool.release(pooled)


def _pack_indices(widths: np.ndarray,
                  counts: np.ndarray) -> np.ndarray | None:
    """Bit indices, in stream order, of every stored bit of a plane.

    Index ``i`` of the packed bit stream reads (or writes) bit
    ``_pack_indices(...)[i]`` of the plane's MSB-first 256-bit-per-chunk
    expansion.  Stream order groups chunks by ascending width (stable),
    then value order within a chunk, then the value's low ``w`` bits MSB
    first — the RZC2 BITPACK layout.  ``None`` when no chunk stores bits.
    """
    parts = [
        (np.flatnonzero(widths == w)[:, None] * (8 * _CHUNK)
         + _PACK_OFFSETS[w]).reshape(-1)
        for w in range(1, 9) if counts[w]
    ]
    if not parts:
        return None
    return np.concatenate(parts) if len(parts) > 1 else parts[0]


def _bitpack_chunks(padded: np.ndarray, nchunks: int,
                    widths: np.ndarray) -> bytes:
    """Pack 32-value chunks at their own widths, grouped by width.

    Layout: nibble-packed per-chunk widths, then — for each width in
    ascending order — the ``4 * width``-byte payloads of every chunk of
    that width, concatenated.  Both directions are one ``unpackbits``,
    one gather (or scatter), and one ``packbits`` over the whole plane:
    no per-chunk loop, and the per-width work is a single index-table
    concatenation.
    """
    counts = np.bincount(widths, minlength=9)
    src = _pack_indices(widths, counts)
    body = np.packbits(np.unpackbits(padded)[src]) if src is not None \
        else np.empty(0, np.uint8)
    # nibble-pack widths (values 0..8 fit in 4 bits)
    pad_w = np.zeros(2 * ((nchunks + 1) // 2), dtype=np.uint8)
    pad_w[:nchunks] = widths
    nibbles = (pad_w[0::2] << 4) | pad_w[1::2]
    return nibbles.tobytes() + body.tobytes()


def _bitunpack_chunks(buf: memoryview, n: int, out: np.ndarray) -> None:
    """Inverse of :func:`_bitpack_chunks` into ``out`` (n uint8)."""
    nchunks = (n + _CHUNK - 1) // _CHUNK
    nwb = (nchunks + 1) // 2
    nibbles = np.frombuffer(buf[:nwb], dtype=np.uint8)
    widths = np.empty(2 * nwb, dtype=np.uint8)
    widths[0::2] = nibbles >> 4
    widths[1::2] = nibbles & 0x0F
    widths = widths[:nchunks]
    if np.any(widths > 8):
        raise ValueError("corrupt residual stream: bitpack width > 8")
    counts = np.bincount(widths, minlength=9)
    total = 4 * int(np.arange(9).dot(counts))
    body = np.frombuffer(buf[nwb:], dtype=np.uint8)
    if body.size != total:
        raise ValueError("corrupt residual stream: bitpack size mismatch")
    bits = np.zeros(nchunks * _CHUNK * 8, dtype=np.uint8)
    dst = _pack_indices(widths, counts)
    if dst is not None:
        # 32*w bits per chunk is whole bytes, so the body expands with
        # no trailing pad: every unpacked bit has a destination
        bits[dst] = np.unpackbits(body)
    out[:] = np.packbits(bits)[:n]


def _decode_rzc2(view: memoryview) -> np.ndarray:
    n = int(np.frombuffer(view[4:12], dtype=np.uint64)[0])
    nplanes = view[12]
    backend_id = view[13]
    if backend_id not in _BACKEND_NAMES:
        raise ValueError(f"unknown lossless backend id {backend_id}")
    if nplanes > 8:
        raise ValueError(f"corrupt residual stream: {nplanes} byte planes")
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    # codes are rebuilt arithmetically — widen plane 0, then shift-or
    # each higher plane in.  All ops are contiguous, which beats
    # scattering byte columns into an (n, 8) staging matrix.
    codes = _pool.acquire(n, np.uint64)
    plane_buf = _pool.acquire(n, np.uint8)
    shifted = None
    scratch = None
    try:
        if nplanes == 0:
            codes[:] = 0
        pos = 14
        for p in range(nplanes):
            if pos + 9 > len(view):
                raise ValueError("corrupt residual stream: truncated plane")
            tag = view[pos]
            plen = int(np.frombuffer(view[pos + 1:pos + 9],
                                     dtype=np.uint64)[0])
            pos += 9
            payload = view[pos:pos + plen]
            if len(payload) != plen:
                raise ValueError("corrupt residual stream: truncated plane")
            pos += plen
            _decode_plane(tag, payload, n, plane_buf)
            if p == 0:
                codes[:] = plane_buf
            else:
                if shifted is None:
                    shifted = _pool.acquire(n, np.uint64)
                shifted[:] = plane_buf
                np.left_shift(shifted, 8 * p, out=shifted)
                np.bitwise_or(codes, shifted, out=codes)
        if pos != len(view):
            raise ValueError("corrupt residual stream: trailing bytes")
        scratch = _pool.acquire(n, np.uint64)
        return zigzag_decode(codes, out=np.empty(n, np.int64),
                             scratch=scratch)
    finally:
        _pool.release(codes, plane_buf)
        if shifted is not None:
            _pool.release(shifted)
        if scratch is not None:
            _pool.release(scratch)


def _decode_plane(tag: int, payload: memoryview, n: int,
                  out: np.ndarray) -> None:
    if tag == _P_CONST:
        if len(payload) != 1:
            raise ValueError("corrupt residual stream: bad const plane")
        out[:] = payload[0]
    elif tag == _P_RAW:
        if len(payload) != n:
            raise ValueError("corrupt residual stream: bad raw plane")
        out[:] = np.frombuffer(payload, dtype=np.uint8)
    elif tag == _P_SPARSE:
        if len(payload) < 4:
            raise ValueError("corrupt residual stream: bad sparse plane")
        k = int(np.frombuffer(payload[:4], dtype=np.uint32)[0])
        if len(payload) != 4 + 5 * k:
            raise ValueError("corrupt residual stream: bad sparse plane")
        positions = np.frombuffer(payload[4:4 + 4 * k], dtype="<u4")
        if k and int(positions.max()) >= n:
            raise ValueError("corrupt residual stream: sparse index range")
        out[:] = 0
        out[positions.astype(np.int64)] = np.frombuffer(
            payload[4 + 4 * k:], dtype=np.uint8)
    elif tag == _P_BITPACK:
        _bitunpack_chunks(payload, n, out)
    elif tag == _P_ZLIB:
        raw = zlib.decompress(bytes(payload))
        if len(raw) != n:
            raise ValueError("corrupt residual stream: bad zlib plane")
        out[:] = np.frombuffer(raw, dtype=np.uint8)
    else:
        raise ValueError(f"unknown plane encoding {tag}")


# ----------------------------------------------------------------------
# RZC1: legacy two-stream layout
# ----------------------------------------------------------------------
def _encode_rzc1(residuals: np.ndarray, backend: str, level: int) -> bytes:
    codes = zigzag_encode(
        np.ascontiguousarray(residuals, dtype=np.int64)).reshape(-1)
    n = codes.size
    stream_a = np.minimum(codes, np.uint64(255)).astype(np.uint8)
    big = codes >= np.uint64(255)
    stream_b = codes[big].astype("<u8").tobytes()
    payload = stream_a.tobytes() + stream_b
    compressed = _COMPRESSORS[backend](payload, level)
    header = (
        _MAGIC
        + np.uint64(n).tobytes()
        + np.uint64(int(big.sum())).tobytes()
        + bytes([_BACKEND_IDS[backend]])
    )
    return header + compressed


def _decode_rzc1(view: memoryview) -> np.ndarray:
    n = int(np.frombuffer(view[4:12], dtype=np.uint64)[0])
    n_big = int(np.frombuffer(view[12:20], dtype=np.uint64)[0])
    backend_id = view[20]
    backend = _BACKEND_NAMES.get(backend_id)
    if backend is None:
        raise ValueError(f"unknown lossless backend id {backend_id}")
    payload = _DECOMPRESSORS[backend](bytes(view[21:]))
    expected = n + 8 * n_big
    if len(payload) != expected:
        raise ValueError(
            f"corrupt residual stream: payload {len(payload)} != {expected}"
        )
    stream_a = np.frombuffer(payload, dtype=np.uint8, count=n)
    codes = stream_a.astype(np.uint64)
    if n_big:
        stream_b = np.frombuffer(payload, dtype="<u8", offset=n, count=n_big)
        codes[stream_a == 255] = stream_b
    return zigzag_decode(codes)
