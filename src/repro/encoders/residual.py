"""Fast two-stream residual codec for prediction residuals.

Prediction-based compressors (our sz, mgard, fpzip natives) produce
signed residual arrays dominated by values near zero.  This codec maps
them through zigzag and splits them into two fixed-layout streams:

* stream A: one byte per value, ``min(code, 255)`` — 255 marks overflow;
* stream B: the full 8-byte little-endian code of each overflowing value.

Both encode and decode are single-pass vectorized NumPy; a final
``zlib``-family lossless stage squeezes the entropy out of stream A
(which is where the signal lives for well-predicted data).  The layout is
deliberately branch-free so the decoder never scans byte-by-byte.
"""

from __future__ import annotations

import bz2
import lzma
import zlib

import numpy as np

from .zigzag import zigzag_decode, zigzag_encode

__all__ = ["encode_residuals", "decode_residuals", "LOSSLESS_BACKENDS"]

_MAGIC = b"RZC1"

_COMPRESSORS = {
    "zlib": lambda b, lvl: zlib.compress(b, lvl),
    "bz2": lambda b, lvl: bz2.compress(b, min(max(lvl, 1), 9)),
    "lzma": lambda b, lvl: lzma.compress(b, preset=min(max(lvl, 0), 9)),
    "none": lambda b, lvl: b,
}
_DECOMPRESSORS = {
    "zlib": zlib.decompress,
    "bz2": bz2.decompress,
    "lzma": lzma.decompress,
    "none": lambda b: b,
}

LOSSLESS_BACKENDS = tuple(sorted(_COMPRESSORS))

_BACKEND_IDS = {name: i for i, name in enumerate(sorted(_COMPRESSORS))}
_BACKEND_NAMES = {i: name for name, i in _BACKEND_IDS.items()}


def encode_residuals(residuals: np.ndarray, backend: str = "zlib",
                     level: int = 1) -> bytes:
    """Encode a signed int64 residual array to a self-describing stream."""
    if backend not in _COMPRESSORS:
        raise ValueError(f"unknown lossless backend {backend!r}; "
                         f"choose from {LOSSLESS_BACKENDS}")
    codes = zigzag_encode(np.ascontiguousarray(residuals, dtype=np.int64)).reshape(-1)
    n = codes.size
    stream_a = np.minimum(codes, np.uint64(255)).astype(np.uint8)
    big = codes >= np.uint64(255)
    stream_b = codes[big].astype("<u8").tobytes()
    payload = stream_a.tobytes() + stream_b
    compressed = _COMPRESSORS[backend](payload, level)
    header = (
        _MAGIC
        + np.uint64(n).tobytes()
        + np.uint64(int(big.sum())).tobytes()
        + bytes([_BACKEND_IDS[backend]])
    )
    return header + compressed


def decode_residuals(stream: bytes | memoryview) -> np.ndarray:
    """Decode a stream produced by :func:`encode_residuals` to int64."""
    view = memoryview(stream)
    if bytes(view[:4]) != _MAGIC:
        raise ValueError("not a residual stream (bad magic)")
    n = int(np.frombuffer(view[4:12], dtype=np.uint64)[0])
    n_big = int(np.frombuffer(view[12:20], dtype=np.uint64)[0])
    backend_id = view[20]
    backend = _BACKEND_NAMES.get(backend_id)
    if backend is None:
        raise ValueError(f"unknown lossless backend id {backend_id}")
    payload = _DECOMPRESSORS[backend](bytes(view[21:]))
    expected = n + 8 * n_big
    if len(payload) != expected:
        raise ValueError(
            f"corrupt residual stream: payload {len(payload)} != {expected}"
        )
    stream_a = np.frombuffer(payload, dtype=np.uint8, count=n)
    codes = stream_a.astype(np.uint64)
    if n_big:
        stream_b = np.frombuffer(payload, dtype="<u8", offset=n, count=n_big)
        codes[stream_a == 255] = stream_b
    return zigzag_decode(codes)
