"""Bit-level packing utilities.

Two layers are provided:

* :func:`pack_fixed` / :func:`unpack_fixed` — vectorized fixed-width
  field packing used by the zfp native's bit-plane coder;
* :class:`BitWriter` / :class:`BitReader` — sequential bit IO used by
  the Huffman coder and stream headers.

The vectorized path expands values to a flat bit array with ``repeat`` /
``arange`` arithmetic and defers to ``numpy.packbits`` (C speed), the
pattern the HPC guides recommend instead of per-element Python loops.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pack_fixed", "unpack_fixed", "pack_varwidth", "BitWriter", "BitReader"]


def pack_fixed(values: np.ndarray, width: int) -> bytes:
    """Pack each value's low ``width`` bits MSB-first into bytes."""
    if not 0 <= width <= 64:
        raise ValueError(f"width must be in [0, 64], got {width}")
    v = np.ascontiguousarray(values, dtype=np.uint64).reshape(-1)
    if width == 0 or v.size == 0:
        return b""
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bits = ((v[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits.reshape(-1)).tobytes()


def unpack_fixed(buf: bytes | memoryview, count: int, width: int) -> np.ndarray:
    """Inverse of :func:`pack_fixed`; returns uint64 values."""
    if not 0 <= width <= 64:
        raise ValueError(f"width must be in [0, 64], got {width}")
    if width == 0 or count == 0:
        return np.zeros(count, dtype=np.uint64)
    total_bits = count * width
    raw = np.frombuffer(buf, dtype=np.uint8)
    bits = np.unpackbits(raw, count=total_bits).reshape(count, width)
    weights = (np.uint64(1) << np.arange(width - 1, -1, -1, dtype=np.uint64))
    return bits.astype(np.uint64) @ weights


def pack_varwidth(values: np.ndarray, widths: np.ndarray) -> bytes:
    """Pack values with per-value bit widths, MSB-first, concatenated.

    Vectorized: per-value bit offsets come from a cumulative sum of the
    widths; every output bit is computed with one gather.
    """
    v = np.ascontiguousarray(values, dtype=np.uint64).reshape(-1)
    w = np.ascontiguousarray(widths, dtype=np.int64).reshape(-1)
    if v.size != w.size:
        raise ValueError("values and widths must have equal length")
    if v.size == 0:
        return b""
    if np.any((w < 0) | (w > 64)):
        raise ValueError("per-value widths must be in [0, 64]")
    total = int(w.sum())
    if total == 0:
        return b""
    starts = np.concatenate(([0], np.cumsum(w)))[:-1]
    owner = np.repeat(np.arange(v.size), w)
    bit_in_value = np.arange(total) - starts[owner]
    shift = (w[owner] - 1 - bit_in_value).astype(np.uint64)
    bits = ((v[owner] >> shift) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits).tobytes()


class BitWriter:
    """Sequential MSB-first bit writer."""

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []

    def write(self, value: int, width: int) -> None:
        """Append the low ``width`` bits of ``value``, MSB first."""
        if not 0 <= width <= 64:
            raise ValueError(f"width must be in [0, 64], got {width}")
        if width == 0:
            return
        v = np.uint64(value & ((1 << width) - 1) if width < 64 else value & (2**64 - 1))
        shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
        self._chunks.append(((v >> shifts) & np.uint64(1)).astype(np.uint8))

    def write_bits(self, bits: np.ndarray) -> None:
        """Append a 0/1 uint8 array verbatim.

        Zero-length input is a no-op; multi-dimensional input is
        flattened in C order.
        """
        arr = np.ascontiguousarray(bits, dtype=np.uint8).reshape(-1)
        if arr.size:
            self._chunks.append(arr)

    def write_values(self, values: np.ndarray, width: int) -> None:
        """Bulk fast path: append each value's low ``width`` bits MSB-first.

        Equivalent to ``write(v, width)`` per value but vectorized; any
        width in [0, 64] (including the >32 widths the bit-plane coder
        emits) and zero-length arrays round-trip.
        """
        if not 0 <= width <= 64:
            raise ValueError(f"width must be in [0, 64], got {width}")
        v = np.ascontiguousarray(values, dtype=np.uint64).reshape(-1)
        if width == 0 or v.size == 0:
            return
        shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
        bits = ((v[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
        self._chunks.append(bits.reshape(-1))

    @property
    def bit_length(self) -> int:
        return sum(c.size for c in self._chunks)

    def getvalue(self) -> bytes:
        if not self._chunks:
            return b""
        return np.packbits(np.concatenate(self._chunks)).tobytes()


class BitReader:
    """Sequential MSB-first bit reader over a byte buffer."""

    def __init__(self, buf: bytes | memoryview):
        self._bits = np.unpackbits(np.frombuffer(buf, dtype=np.uint8))
        self._pos = 0

    def read(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer."""
        if not 0 <= width <= 64:
            raise ValueError(f"width must be in [0, 64], got {width}")
        if width == 0:
            return 0
        end = self._pos + width
        if end > self._bits.size:
            raise ValueError("bit stream exhausted")
        chunk = self._bits[self._pos:end]
        self._pos = end
        weights = np.uint64(1) << np.arange(width - 1, -1, -1, dtype=np.uint64)
        return int(chunk.astype(np.uint64) @ weights)

    def read_bits(self, count: int) -> np.ndarray:
        """Read ``count`` raw bits as a 0/1 uint8 array."""
        count = int(count)
        end = self._pos + count
        if end > self._bits.size:
            raise ValueError("bit stream exhausted")
        chunk = self._bits[self._pos:end]
        self._pos = end
        return chunk

    def read_values(self, count: int, width: int) -> np.ndarray:
        """Bulk fast path: read ``count`` fixed-``width`` values as uint64.

        Inverse of :meth:`BitWriter.write_values`; any width in [0, 64]
        and ``count == 0`` are valid.
        """
        if not 0 <= width <= 64:
            raise ValueError(f"width must be in [0, 64], got {width}")
        count = int(count)
        if count == 0 or width == 0:
            if count:
                return np.zeros(count, dtype=np.uint64)
            return np.zeros(0, dtype=np.uint64)
        end = self._pos + count * width
        if end > self._bits.size:
            raise ValueError("bit stream exhausted")
        chunk = self._bits[self._pos:end].reshape(count, width)
        self._pos = end
        weights = np.uint64(1) << np.arange(width - 1, -1, -1, dtype=np.uint64)
        return chunk.astype(np.uint64) @ weights

    @property
    def remaining(self) -> int:
        return self._bits.size - self._pos

    @property
    def position(self) -> int:
        return self._pos
