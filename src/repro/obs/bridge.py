"""Bridges from existing measurement sources into the metrics registry.

The registry (:mod:`repro.obs.registry`) is the *one* namespace a
scraper sees; this module maps the two measurement systems that predate
it onto that namespace:

* :func:`ingest_trace` — the per-plugin trace aggregate report
  (:func:`repro.trace.aggregate`) becomes ``pressio_trace_*`` gauges, so
  a scrape of a traced process shows the same calls/self-time/throughput
  table ``pressio trace`` prints;
* :func:`ingest_metrics_results` — the typed results of the ``time`` /
  ``size`` (or any other) metrics plugin become ``pressio_metric_*``
  gauges labelled by plugin, joining per-operation wall totals and
  compression ratios into the same scrape;
* :func:`ingest_profile` — a stage-profile artifact
  (:meth:`repro.profile.StageProfiler.result`) becomes
  ``pressio_profile_*`` gauges labelled by stage path, so the last
  profile's attribution table is scrapeable next to the trace gauges.

Both are idempotent refreshes: gauges are *set*, not incremented, so
re-ingesting after every operation (what the metrics server does for
the ambient trace context) converges instead of double counting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from . import runtime
from .registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from ..core.options import PressioOptions
    from ..trace.context import TraceContext

__all__ = ["ingest_trace", "ingest_metrics_results", "ingest_profile",
           "ingest_runtime"]


def _target(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    return registry if registry is not None else runtime.ACTIVE


def ingest_trace(ctx: "TraceContext",
                 registry: MetricsRegistry | None = None) -> int:
    """Refresh ``pressio_trace_*`` gauges from a trace context.

    Returns the number of aggregate rows ingested (0 when no registry
    is active and none was passed).
    """
    reg = _target(registry)
    if reg is None:
        return 0
    from ..trace.export import aggregate

    rows = aggregate(ctx)
    calls = reg.gauge("pressio_trace_calls",
                      "span count per plugin/stage in the active trace",
                      ("plugin",))
    total = reg.gauge("pressio_trace_total_ms",
                      "total wall time per plugin/stage (ms)", ("plugin",))
    self_ms = reg.gauge("pressio_trace_self_ms",
                        "self wall time per plugin/stage (ms)", ("plugin",))
    rate = reg.gauge("pressio_trace_bytes_per_second",
                     "uncompressed-side throughput per plugin/stage",
                     ("plugin",))
    errors = reg.gauge("pressio_trace_errors",
                       "error-status span count per plugin/stage",
                       ("plugin",))
    for plugin, row in rows.items():
        calls.labels(plugin=plugin).set(row["calls"])
        total.labels(plugin=plugin).set(row["total_ms"])
        self_ms.labels(plugin=plugin).set(row["self_ms"])
        rate.labels(plugin=plugin).set(row["bytes_per_s"])
        errors.labels(plugin=plugin).set(row["errors"])
    counter_gauge = reg.gauge("pressio_trace_counter",
                              "named counters from the active trace",
                              ("name",))
    for name, value in ctx.counters().items():
        counter_gauge.labels(name=name).set(value)
    return len(rows)


def ingest_profile(profile: dict, registry: MetricsRegistry | None = None
                   ) -> int:
    """Refresh ``pressio_profile_*`` gauges from a stage-profile artifact.

    ``profile`` is the dict :meth:`repro.profile.StageProfiler.result`
    returns (schema ``pressio-profile/1``).  Gauges are labelled by the
    canonical stage path, plus a per-run ``pressio_profile_wall_ms``
    labelled by the profile's label.  Returns the number of stage rows
    ingested (0 when no registry is active and none was passed).
    """
    reg = _target(registry)
    if reg is None:
        return 0
    label = str(profile.get("label", "profile"))
    wall = reg.gauge("pressio_profile_wall_ms",
                     "wall time of the last stage profile (ms)", ("label",))
    wall.labels(label=label).set(profile.get("wall_ns", 0) / 1e6)
    excl = reg.gauge("pressio_profile_stage_exclusive_ms",
                     "exclusive wall time per profiled stage (ms)",
                     ("stage",))
    calls = reg.gauge("pressio_profile_stage_calls",
                      "span count per profiled stage", ("stage",))
    rate = reg.gauge("pressio_profile_stage_bytes_per_second",
                     "uncompressed-side throughput per profiled stage",
                     ("stage",))
    alloc = reg.gauge("pressio_profile_stage_alloc_net_bytes",
                      "net allocation growth per profiled stage (bytes)",
                      ("stage",))
    stages = profile.get("stages", [])
    for row in stages:
        stage = row["path"]
        excl.labels(stage=stage).set(row["exclusive_ns"] / 1e6)
        calls.labels(stage=stage).set(row["calls"])
        rate.labels(stage=stage).set(row.get("bytes_per_s", 0.0))
        alloc.labels(stage=stage).set(row.get("alloc_net_bytes", 0))
    return len(stages)


def ingest_runtime(registry: MetricsRegistry | None = None) -> int:
    """Refresh runtime gauges from the buffer pool and pipelined executor.

    Exposes the :mod:`repro.native.pool` hit/miss/return counters (see
    its module docstring) and the :mod:`repro.meta.pipeline` in-flight
    depth, so a scrape shows whether the native cores are recycling
    scratch and whether a pipelined compress is currently overlapped.
    Returns the number of gauges refreshed (0 when no registry is active
    and none was passed).
    """
    reg = _target(registry)
    if reg is None:
        return 0
    from ..meta import pipeline as _pipeline
    from ..native import pool as _pool

    pool_stats = _pool.stats()
    values = (
        ("pressio_pool_hits_total",
         "buffer-pool acquires served from a free list",
         pool_stats["hits"]),
        ("pressio_pool_misses_total",
         "buffer-pool acquires that fell through to the allocator",
         pool_stats["misses"]),
        ("pressio_pool_returns_total",
         "buffers returned to the pool's free lists",
         pool_stats["returned"]),
        ("pressio_pool_bytes",
         "bytes parked on this thread's pool free lists",
         pool_stats["pooled_bytes"]),
        ("pressio_pipeline_inflight",
         "stage-2 tasks queued or running in pipelined compressors",
         _pipeline.inflight),
        ("pressio_pipeline_inflight_peak",
         "high-water mark of in-flight pipelined stage-2 tasks",
         _pipeline.peak_inflight),
        ("pressio_pipeline_chunks_total",
         "chunks entropy-coded by pipelined stage-2 workers",
         _pipeline.stage2_total),
    )
    for name, help_text, value in values:
        reg.gauge(name, help_text).set(float(value))
    return len(values)


#: metrics-plugin result keys worth exposing, mapped to (metric, labels).
_RESULT_KEYS = {
    "size:compression_ratio": ("pressio_metric_compression_ratio", {}),
    "size:bit_rate": ("pressio_metric_bit_rate", {}),
    "size:uncompressed_size": ("pressio_metric_uncompressed_bytes", {}),
    "size:compressed_size": ("pressio_metric_compressed_bytes", {}),
    "time:compress_total_ms": ("pressio_metric_wall_ms",
                               {"operation": "compress"}),
    "time:decompress_total_ms": ("pressio_metric_wall_ms",
                                 {"operation": "decompress"}),
    "time:compress_calls": ("pressio_metric_calls",
                            {"operation": "compress"}),
    "time:decompress_calls": ("pressio_metric_calls",
                              {"operation": "decompress"}),
    "time:compress_bytes_per_s": ("pressio_metric_bytes_per_second",
                                  {"operation": "compress"}),
    "time:decompress_bytes_per_s": ("pressio_metric_bytes_per_second",
                                    {"operation": "decompress"}),
}


def ingest_metrics_results(results: "PressioOptions", plugin: str,
                           registry: MetricsRegistry | None = None) -> int:
    """Refresh ``pressio_metric_*`` gauges from plugin results.

    ``plugin`` labels every series (which compressor produced these
    numbers).  Unknown keys are ignored; returns how many were mapped.
    """
    reg = _target(registry)
    if reg is None:
        return 0
    mapped = 0
    for key, (metric, extra) in _RESULT_KEYS.items():
        value = results.get(key)
        if value is None:
            continue
        labelnames = ("plugin",) + tuple(extra)
        gauge = reg.gauge(metric,
                          f"bridged from metrics-plugin key {key.split(':')[0]}:*",
                          labelnames)
        gauge.labels(plugin=plugin, **extra).set(float(value))
        mapped += 1
    return mapped
