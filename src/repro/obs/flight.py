"""Always-on flight recorder: a crash-forensics ring buffer.

Traces and metrics answer "how is the system doing"; the flight
recorder answers "what were the last things that happened before it
went wrong" — after the fact, without having had tracing enabled in
advance of the failure.  It keeps a fixed-size ring of recent events
(closed spans, operation records, metric deltas, taxonomy errors) and
dumps a timestamped JSON bundle when:

* an unhandled exception reaches ``sys.excepthook``;
* the process receives ``SIGUSR2`` (dump-and-continue, for a live hang);
* a :class:`~repro.core.status.CorruptStreamError` is recorded on the
  error taxonomy (the "wrong bytes came back" emergency).

Cost model: when the recorder is disabled, the hot path pays the single
:data:`repro._hot.ANY` read it already paid — there is no second
sentinel.  When enabled, :meth:`FlightRecorder.record` is one dict
build and one list-slot store; the ring is *best-effort lock-free*:
concurrent writers may race a sequence number and overwrite one
another's slot, losing an event rather than blocking an operation.

The module is a dependency leaf (standard library + :mod:`repro._hot`),
so any layer — core, trace, obs, meta — may import it without cycles;
the span tap into :data:`repro.trace.context.SPAN_SINK` is installed
lazily at :func:`enable_flight` time.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
import traceback
from typing import Any

from .. import _hot

__all__ = [
    "ACTIVE",
    "FlightRecorder",
    "enable_flight",
    "disable_flight",
    "flight_recording",
    "replay",
]

#: Bundle schema identifier; bump on incompatible change.
BUNDLE_SCHEMA = "pressio-flight/1"

#: The active recorder, or None when flight recording is disabled.
ACTIVE: "FlightRecorder | None" = None

_prev_excepthook = None
_prev_sigusr2 = None


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


class FlightRecorder:
    """Fixed-capacity ring of recent observability events.

    ``capacity`` bounds memory; once full, each new event overwrites the
    oldest.  :meth:`snapshot` returns surviving events in sequence
    order; :meth:`dump` serializes them (plus the triggering exception,
    when any) into a timestamped bundle under :attr:`dump_dir`.
    """

    def __init__(self, capacity: int = 1024,
                 dump_dir: str | None = None) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.dump_dir = dump_dir or os.getcwd()
        self._ring: list[dict[str, Any] | None] = [None] * capacity
        self._seq = 0
        #: paths of bundles written by this recorder, oldest first.
        self.dumps: list[str] = []
        #: epoch at creation so bundle readers can map perf -> wall.
        self.epoch_ns = time.time_ns() - time.perf_counter_ns()

    # -- recording --------------------------------------------------------
    def record(self, kind: str, **fields: Any) -> None:
        """Append one event; never blocks, never raises on field content.

        Best-effort lock-free: two threads may observe the same sequence
        number and one event wins the slot — an acceptable loss for a
        forensic buffer that must never stall an operation.
        """
        seq = self._seq
        self._seq = seq + 1
        entry = {"seq": seq, "kind": kind,
                 "perf_ns": time.perf_counter_ns(),
                 "thread_id": threading.get_ident()}
        for key, value in fields.items():
            entry[key] = _jsonable(value)
        self._ring[seq % self.capacity] = entry

    def record_span(self, sp: Any) -> None:
        """Span tap installed as :data:`repro.trace.context.SPAN_SINK`."""
        self.record("span", name=sp.name, span_id=sp.span_id,
                    parent_id=sp.parent_id, thread=sp.thread_id,
                    start_ns=sp.start_ns, end_ns=sp.end_ns,
                    duration_ns=sp.duration_ns, status=sp.status,
                    attrs=sp.attrs)

    def record_error(self, operation: str, plugin: str,
                     exc: BaseException, extra: dict[str, Any]) -> None:
        """Taxonomy tap mirrored from :func:`repro.obs.runtime.record_error`."""
        self.record("error", operation=operation, plugin=plugin,
                    etype=type(exc).__name__, message=str(exc),
                    extra=extra)

    # -- inspection -------------------------------------------------------
    def snapshot(self) -> list[dict[str, Any]]:
        """Surviving events, oldest first (a point-in-time copy)."""
        entries = [e for e in self._ring if e is not None]
        entries.sort(key=lambda e: e["seq"])
        return entries

    # -- dumping ----------------------------------------------------------
    def dump(self, reason: str,
             exc: BaseException | None = None) -> str | None:
        """Write a bundle and return its path (None if the write failed).

        The recorder must never convert a recoverable situation into an
        unrecoverable one, so filesystem failures are swallowed after a
        taxonomy count.
        """
        bundle = {
            "schema": BUNDLE_SCHEMA,
            "reason": reason,
            "pid": os.getpid(),
            "wall_time_ns": time.time_ns(),
            "epoch_ns": self.epoch_ns,
            "capacity": self.capacity,
            "events_recorded": self._seq,
            "events": self.snapshot(),
        }
        if exc is not None:
            bundle["exception"] = {
                "etype": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exception(
                    type(exc), exc, exc.__traceback__),
            }
        path = os.path.join(
            self.dump_dir,
            f"flight_{time.strftime('%Y%m%dT%H%M%S')}"
            f"_{os.getpid()}_{self._seq}.json")
        try:
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(bundle, fh, indent=1)
        except OSError as e:
            from . import runtime as _obs

            _obs.record_error("flight-dump", "flight", e, path=path)
            return None
        self.dumps.append(path)
        return path


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------

def enable_flight(capacity: int = 1024, dump_dir: str | None = None,
                  install_hooks: bool = True) -> FlightRecorder:
    """Activate a recorder; optionally install crash/signal dump hooks.

    With ``install_hooks`` (the default) an unhandled exception reaching
    ``sys.excepthook`` dumps a bundle before delegating to the previous
    hook, and ``SIGUSR2`` dumps-and-continues (only from the main
    thread, where the signal module allows handler installation).
    """
    global ACTIVE, _prev_excepthook, _prev_sigusr2
    recorder = FlightRecorder(capacity=capacity, dump_dir=dump_dir)
    ACTIVE = recorder
    _hot.set_flight_active(True)
    from ..trace import context as _tcontext

    _tcontext.SPAN_SINK = recorder.record_span
    if install_hooks:
        _prev_excepthook = sys.excepthook

        def _flight_excepthook(etype, value, tb):
            rec = ACTIVE
            if rec is not None:
                rec.record("unhandled", etype=etype.__name__,
                           message=str(value))
                rec.dump("unhandled-exception", exc=value)
            (_prev_excepthook or sys.__excepthook__)(etype, value, tb)

        sys.excepthook = _flight_excepthook
        if threading.current_thread() is threading.main_thread():
            try:
                _prev_sigusr2 = signal.signal(
                    signal.SIGUSR2, _sigusr2_handler)
            except (ValueError, OSError, AttributeError):
                # non-main interpreter thread or a platform without
                # SIGUSR2; the excepthook/taxonomy triggers still work
                _prev_sigusr2 = None
    return recorder


def _sigusr2_handler(signum, frame) -> None:
    rec = ACTIVE
    if rec is not None:
        rec.record("signal", signum=signum)
        rec.dump("sigusr2")


def disable_flight() -> FlightRecorder | None:
    """Deactivate and uninstall hooks; returns the previous recorder."""
    global ACTIVE, _prev_excepthook, _prev_sigusr2
    previous = ACTIVE
    ACTIVE = None
    _hot.set_flight_active(False)
    from ..trace import context as _tcontext

    if getattr(_tcontext.SPAN_SINK, "__self__", None) is previous:
        _tcontext.SPAN_SINK = None
    if _prev_excepthook is not None:
        sys.excepthook = _prev_excepthook
        _prev_excepthook = None
    if (_prev_sigusr2 is not None
            and threading.current_thread() is threading.main_thread()):
        try:
            signal.signal(signal.SIGUSR2, _prev_sigusr2)
        except (ValueError, OSError):
            pass
        _prev_sigusr2 = None
    return previous


class flight_recording:
    """Scoped recorder: ``with flight_recording() as rec: ...``."""

    def __init__(self, capacity: int = 1024,
                 dump_dir: str | None = None,
                 install_hooks: bool = False) -> None:
        self._args = (capacity, dump_dir, install_hooks)
        self.recorder: FlightRecorder | None = None

    def __enter__(self) -> FlightRecorder:
        self.recorder = enable_flight(*self._args)
        return self.recorder

    def __exit__(self, *exc_info: Any) -> None:
        disable_flight()


# ---------------------------------------------------------------------------
# replay
# ---------------------------------------------------------------------------

def replay(bundle: str | dict[str, Any]):
    """Rebuild a :class:`~repro.trace.context.TraceContext` from a bundle.

    Span events become closed spans with their original ids and
    timestamps, so a dumped bundle flows through the existing trace
    exporters (``render_tree``, ``write_chrome_trace``, ``aggregate``)
    exactly like a live capture.  Error events become counters named
    ``flight:error:<etype>``.
    """
    from ..trace.context import Span, TraceContext

    if isinstance(bundle, str):
        with open(bundle, "r", encoding="utf-8") as fh:
            bundle = json.load(fh)
    ctx = TraceContext("flight-replay")
    max_id = 0
    for event in bundle.get("events", []):
        kind = event.get("kind")
        if kind == "span":
            sp = Span.__new__(Span)
            sp.name = str(event.get("name", "span"))
            sp.span_id = int(event.get("span_id", 0))
            parent = event.get("parent_id")
            sp.parent_id = int(parent) if parent is not None else None
            sp.thread_id = int(event.get("thread", 0))
            sp.thread_name = f"flight-{sp.thread_id}"
            sp.start_ns = int(event.get("start_ns", 0))
            end = event.get("end_ns")
            sp.end_ns = int(end) if end is not None else sp.start_ns
            attrs = event.get("attrs")
            sp.attrs = dict(attrs) if isinstance(attrs, dict) else {}
            sp.status = str(event.get("status", "ok"))
            sp._token = None
            ctx.adopt_span(sp)
            max_id = max(max_id, sp.span_id)
        elif kind == "error":
            ctx.add_counter(
                f"flight:error:{event.get('etype', 'Exception')}")
        elif kind == "operation":
            ctx.add_counter(
                f"flight:operation:{event.get('operation', 'op')}")
    ctx._next_span_id = max_id + 1
    return ctx
