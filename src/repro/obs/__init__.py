"""Externalized observability: metrics registry, Prometheus, JSON logs.

:mod:`repro.trace` (PR 1) measures *inside* the process; this package
lets the measurements escape it:

* :mod:`repro.obs.registry` — named counters/gauges/histograms with
  ``plugin`` / ``operation`` / ``dtype`` labels, one namespace bridging
  the trace aggregates and the ``time``/``size`` metrics plugins;
* :mod:`repro.obs.prometheus` — text exposition rendering;
* :mod:`repro.obs.server` — a stdlib HTTP endpoint (``/metrics``,
  ``/healthz``) on a daemon thread;
* :mod:`repro.obs.logging` — structured JSON logs carrying the current
  span id, so log lines join JSONL trace exports;
* :mod:`repro.obs.bench` — the ``pressio bench`` regression harness
  emitting ``BENCH_<date>.json`` artifacts.

Quickstart::

    from repro import obs

    server = obs.start_server(port=9100)      # enables collection too
    obs.configure_logging()                   # JSON logs on stderr
    ...compress/decompress...                 # counted automatically
    # curl localhost:9100/metrics  |  curl localhost:9100/healthz
    server.stop()

Collection follows the tracing model: **zero-cost when disabled** (the
hot path reads one module global per subsystem and compares it to
``None``), scoped with :func:`metrics_enabled`, global with
:func:`enable_metrics`.
"""

from .bridge import ingest_metrics_results, ingest_trace
from .flight import (
    FlightRecorder,
    disable_flight,
    enable_flight,
    flight_recording,
)
from .history import append_history, detect_drift, load_history
from .logging import JsonLogFormatter, capture_logs
from .logging import configure as configure_logging
from .logging import get_logger
from .prometheus import render as render_prometheus
from .quality import config_label, dataset_fingerprint, record_quality
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from .runtime import (
    active_registry,
    count,
    disable_metrics,
    enable_metrics,
    metrics_enabled,
    observe,
    record_error,
    record_operation,
    set_gauge,
)
from .server import (MetricsServer, PortInUseError,
                     bind_with_fallback, start_server)

__all__ = [
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "active_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "record_operation",
    "record_error",
    "count",
    "observe",
    "set_gauge",
    "render_prometheus",
    "MetricsServer",
    "PortInUseError",
    "bind_with_fallback",
    "start_server",
    "ingest_trace",
    "ingest_metrics_results",
    "JsonLogFormatter",
    "configure_logging",
    "capture_logs",
    "get_logger",
    "FlightRecorder",
    "enable_flight",
    "disable_flight",
    "flight_recording",
    "record_quality",
    "dataset_fingerprint",
    "config_label",
    "append_history",
    "load_history",
    "detect_drift",
]
