"""Bench-history persistence and quality-drift detection.

``pressio bench`` measures a grid once; this module gives those
measurements a memory.  ``pressio bench --history`` appends one compact
JSONL entry per run to ``benchmarks/BENCH_history.jsonl`` — timestamp,
git SHA, and per-configuration ratio / bound-margin / median times —
and :func:`detect_drift` compares the newest entry against a sliding
window of its predecessors:

* a configuration whose **compression ratio** fell more than
  ``ratio_slo_pct`` percent below the window median has drifted;
* a configuration whose **bound margin** (``max_abs_error/bound``)
  grew more than ``margin_slo_pct`` percent above the window median —
  or crossed 1.0 when the window honoured the bound — has drifted.

Each flag names the responsible configuration (the
:func:`repro.obs.quality.config_label` string), the metric, and both
values, so the CI annotation reads like a diagnosis instead of a
boolean.  Entries are self-describing (``schema`` field) and the
reader skips torn or foreign lines, so a truncated append never
poisons the whole history.
"""

from __future__ import annotations

import json
import os
from typing import Any

from .quality import config_label

__all__ = ["HISTORY_SCHEMA", "DEFAULT_HISTORY_PATH", "history_entry",
           "append_history", "load_history", "detect_drift",
           "format_drift"]

HISTORY_SCHEMA = "pressio-bench-history/1"

#: Repo-relative default; CI and the CLI agree on this path.
DEFAULT_HISTORY_PATH = os.path.join("benchmarks", "BENCH_history.jsonl")


def history_entry(rows: list[dict[str, Any]], created_at: str,
                  git_sha: str | None = None,
                  quick: bool = False) -> dict[str, Any]:
    """Distill bench result rows into one appendable history record."""
    configs = []
    for row in rows:
        configs.append({
            "compressor": row["compressor"],
            "dataset": row["dataset"],
            "bound": row["bound"],
            "dims": list(row.get("dims", [])),
            "compression_ratio": row.get("compression_ratio"),
            "max_abs_error": row.get("max_abs_error"),
            "bound_margin": row.get("bound_margin"),
            "compress_ms_median": row.get("compress_ms", {}).get("median"),
            "decompress_ms_median": row.get(
                "decompress_ms", {}).get("median"),
        })
    return {
        "schema": HISTORY_SCHEMA,
        "created_at": created_at,
        "git_sha": git_sha,
        "quick": quick,
        "configs": configs,
    }


def append_history(entry: dict[str, Any],
                   path: str = DEFAULT_HISTORY_PATH) -> str:
    """Append one entry as a single JSONL line; returns the path."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


def load_history(path: str = DEFAULT_HISTORY_PATH) -> list[dict[str, Any]]:
    """All readable entries, oldest first; missing file is empty history."""
    if not os.path.exists(path):
        return []
    entries: list[dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn append; skip, don't poison the history
            if entry.get("schema") == HISTORY_SCHEMA:
                entries.append(entry)
    return entries


def _config_key(cfg: dict[str, Any]) -> tuple:
    return (cfg["compressor"], cfg["dataset"], cfg["bound"],
            tuple(cfg.get("dims", ())))


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def detect_drift(entries: list[dict[str, Any]], window: int = 5,
                 ratio_slo_pct: float = 10.0,
                 margin_slo_pct: float = 25.0) -> list[dict[str, Any]]:
    """Compare the newest entry against the window of its predecessors.

    Returns one flag dict per drifted (configuration, metric) pair:
    ``{"config", "metric", "value", "reference", "delta_pct",
    "message"}``.  Fewer than two entries (or a configuration with no
    prior observations) can't drift — there is nothing to drift *from*.
    """
    if len(entries) < 2:
        return []
    current = entries[-1]
    reference_window = entries[-1 - window:-1]

    history: dict[tuple, dict[str, list[float]]] = {}
    for entry in reference_window:
        for cfg in entry.get("configs", []):
            slot = history.setdefault(_config_key(cfg),
                                      {"ratio": [], "margin": []})
            if cfg.get("compression_ratio") is not None:
                slot["ratio"].append(float(cfg["compression_ratio"]))
            if cfg.get("bound_margin") is not None:
                slot["margin"].append(float(cfg["bound_margin"]))

    flags: list[dict[str, Any]] = []
    for cfg in current.get("configs", []):
        key = _config_key(cfg)
        label = config_label(cfg["compressor"], cfg["dataset"],
                             cfg["bound"], cfg.get("dims"))
        past = history.get(key)
        if past is None:
            continue
        ratio = cfg.get("compression_ratio")
        if ratio is not None and past["ratio"]:
            ref = _median(past["ratio"])
            if ref > 0:
                delta_pct = 100.0 * (ratio - ref) / ref
                if delta_pct < -ratio_slo_pct:
                    flags.append({
                        "config": label,
                        "metric": "compression_ratio",
                        "value": ratio,
                        "reference": ref,
                        "delta_pct": delta_pct,
                        "message": (
                            f"{label}: compression_ratio {ratio:.2f} is "
                            f"{-delta_pct:.1f}% below the window median "
                            f"{ref:.2f} (SLO {ratio_slo_pct:g}%)"),
                    })
        margin = cfg.get("bound_margin")
        if margin is not None and past["margin"]:
            ref = _median(past["margin"])
            delta_pct = (100.0 * (margin - ref) / ref if ref > 0
                         else float("inf") if margin > 0 else 0.0)
            crossed = margin > 1.0 >= ref
            if delta_pct > margin_slo_pct or crossed:
                detail = ("bound newly violated"
                          if crossed else f"SLO {margin_slo_pct:g}%")
                flags.append({
                    "config": label,
                    "metric": "bound_margin",
                    "value": margin,
                    "reference": ref,
                    "delta_pct": delta_pct,
                    "message": (
                        f"{label}: bound_margin {margin:.3f} vs window "
                        f"median {ref:.3f} (+{delta_pct:.1f}%; {detail})"),
                })
    return flags


def format_drift(flags: list[dict[str, Any]]) -> str:
    """Human-readable drift verdict for CLI / CI output."""
    if not flags:
        return "quality drift: none detected"
    lines = [f"quality drift: {len(flags)} flag(s)"]
    lines += [f"  DRIFT {flag['message']}" for flag in flags]
    return "\n".join(lines)
