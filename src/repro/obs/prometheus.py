"""Prometheus text exposition format (version 0.0.4) rendering.

Turns a :class:`~repro.obs.registry.MetricsRegistry` into the plain-text
format every Prometheus-compatible scraper understands::

    # HELP pressio_operations_total compress/decompress operations
    # TYPE pressio_operations_total counter
    pressio_operations_total{operation="compress",plugin="sz"} 3

Format invariants this module is responsible for (and the exposition
tests pin):

* HELP text escapes backslash and newline; label values additionally
  escape double quotes;
* label order is the family's declared ``labelnames`` order, stable
  across scrapes;
* histograms render cumulative ``_bucket`` series with ``le`` as the
  **last** label, a ``le="+Inf"`` bucket equal to ``_count``, plus
  ``_sum`` and ``_count`` series;
* numbers render in Go-compatible form (``+Inf``/``-Inf``/``NaN``;
  integral floats without an exponent).
"""

from __future__ import annotations

import math

from .registry import Histogram, MetricFamily, MetricsRegistry

__all__ = ["render", "render_family", "escape_help", "escape_label_value",
           "format_value", "CONTENT_TYPE"]

#: The Content-Type header for exposition-format responses.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\")
                 .replace("\n", r"\n")
                 .replace('"', r'\"'))


def format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e17:
        return str(int(value))
    return repr(float(value))


def _labels_text(names: tuple[str, ...], values: tuple[str, ...],
                 extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [f'{n}="{escape_label_value(v)}"' for n, v in zip(names, values)]
    pairs += [f'{n}="{escape_label_value(v)}"' for n, v in extra]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _bucket_bound_text(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else format_value(bound)


def render_family(family: MetricFamily) -> str:
    """One family's ``# HELP`` / ``# TYPE`` block plus all its series."""
    lines = [
        f"# HELP {family.name} {escape_help(family.help)}",
        f"# TYPE {family.name} {family.kind}",
    ]
    for labelvalues, child in family.samples():
        if isinstance(family, Histogram):
            for bound, cumulative in child.cumulative():
                labels = _labels_text(
                    family.labelnames, labelvalues,
                    extra=(("le", _bucket_bound_text(bound)),))
                lines.append(f"{family.name}_bucket{labels} {cumulative}")
            base = _labels_text(family.labelnames, labelvalues)
            lines.append(f"{family.name}_sum{base} "
                         f"{format_value(child.total)}")
            lines.append(f"{family.name}_count{base} {child.count}")
        else:
            labels = _labels_text(family.labelnames, labelvalues)
            lines.append(
                f"{family.name}{labels} {format_value(child.value)}")
    return "\n".join(lines)


def render(registry: MetricsRegistry) -> str:
    """The full exposition document, newline-terminated."""
    blocks = [render_family(family) for family in registry.collect()]
    return "\n".join(blocks) + ("\n" if blocks else "")
