"""Prometheus text exposition format (version 0.0.4) rendering.

Turns a :class:`~repro.obs.registry.MetricsRegistry` into the plain-text
format every Prometheus-compatible scraper understands::

    # HELP pressio_operations_total compress/decompress operations
    # TYPE pressio_operations_total counter
    pressio_operations_total{operation="compress",plugin="sz"} 3

Format invariants this module is responsible for (and the exposition
tests pin):

* HELP text escapes backslash and newline; label values additionally
  escape double quotes;
* label order is the family's declared ``labelnames`` order, stable
  across scrapes;
* histograms render cumulative ``_bucket`` series with ``le`` as the
  **last** label, a ``le="+Inf"`` bucket equal to ``_count``, plus
  ``_sum`` and ``_count`` series;
* numbers render in Go-compatible form (``+Inf``/``-Inf``/``NaN``;
  integral floats without an exponent);
* histogram exemplars render as ``# EXEMPLAR`` comment lines (a strict
  0.0.4 scraper sees an ordinary comment; :func:`parse` reads them
  back), since 0.0.4 has no native exemplar syntax.

:func:`parse` is the exact inverse for everything this module emits —
the scrape side of ``pressio top --url`` and the round-trip property
the exposition tests assert (escape then parse is the identity).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any

from .registry import Histogram, MetricFamily, MetricsRegistry

__all__ = ["render", "render_family", "escape_help", "escape_label_value",
           "unescape_label_value", "format_value", "parse", "fetch",
           "ParsedExposition", "ParsedSample", "CONTENT_TYPE"]

#: The Content-Type header for exposition-format responses.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\")
                 .replace("\n", r"\n")
                 .replace('"', r'\"'))


def format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e17:
        return str(int(value))
    return repr(float(value))


def _labels_text(names: tuple[str, ...], values: tuple[str, ...],
                 extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [f'{n}="{escape_label_value(v)}"' for n, v in zip(names, values)]
    pairs += [f'{n}="{escape_label_value(v)}"' for n, v in extra]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _bucket_bound_text(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else format_value(bound)


def render_family(family: MetricFamily) -> str:
    """One family's ``# HELP`` / ``# TYPE`` block plus all its series."""
    lines = [
        f"# HELP {family.name} {escape_help(family.help)}",
        f"# TYPE {family.name} {family.kind}",
    ]
    for labelvalues, child in family.samples():
        if isinstance(family, Histogram):
            for bound, cumulative in child.cumulative():
                labels = _labels_text(
                    family.labelnames, labelvalues,
                    extra=(("le", _bucket_bound_text(bound)),))
                lines.append(f"{family.name}_bucket{labels} {cumulative}")
            base = _labels_text(family.labelnames, labelvalues)
            lines.append(f"{family.name}_sum{base} "
                         f"{format_value(child.total)}")
            lines.append(f"{family.name}_count{base} {child.count}")
            for bucket, (value, exemplar) in sorted(
                    child.exemplars.items()):
                bound = (child.bounds[bucket]
                         if bucket < len(child.bounds) else float("inf"))
                labels = _labels_text(
                    family.labelnames, labelvalues,
                    extra=(("le", _bucket_bound_text(bound)),))
                pairs = ",".join(
                    f'{k}="{escape_label_value(v)}"'
                    for k, v in sorted(exemplar.items()))
                lines.append(
                    f"# EXEMPLAR {family.name}_bucket{labels} "
                    f"{format_value(value)} {{{pairs}}}")
        else:
            labels = _labels_text(family.labelnames, labelvalues)
            lines.append(
                f"{family.name}{labels} {format_value(child.value)}")
    return "\n".join(lines)


def render(registry: MetricsRegistry) -> str:
    """The full exposition document, newline-terminated."""
    blocks = [render_family(family) for family in registry.collect()]
    return "\n".join(blocks) + ("\n" if blocks else "")


# ---------------------------------------------------------------------------
# scrape parsing (the inverse direction)
# ---------------------------------------------------------------------------

def unescape_label_value(value: str) -> str:
    """Exact inverse of :func:`escape_label_value`."""
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if nxt in ("\\", '"'):
                out.append(nxt)
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def _parse_number(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


@dataclass
class ParsedSample:
    """One series line: full sample name (incl. ``_bucket``), labels, value."""

    name: str
    labels: dict[str, str]
    value: float


@dataclass
class ParsedExposition:
    """A scraped exposition document, queryable by series name."""

    samples: list[ParsedSample] = field(default_factory=list)
    #: family name -> HELP text (unescaped)
    help: dict[str, str] = field(default_factory=dict)
    #: family name -> TYPE (counter/gauge/histogram/untyped)
    types: dict[str, str] = field(default_factory=dict)
    #: (bucket sample name, frozen label items) -> (value, exemplar labels)
    exemplars: dict[tuple[str, tuple[tuple[str, str], ...]],
                    tuple[float, dict[str, str]]] = field(
                        default_factory=dict)

    def series(self, name: str) -> list[ParsedSample]:
        return [s for s in self.samples if s.name == name]

    def value(self, name: str, **labels: str) -> float:
        wanted = {k: str(v) for k, v in labels.items()}
        for sample in self.samples:
            if sample.name == name and sample.labels == wanted:
                return sample.value
        raise KeyError(f"{name}{wanted!r} not in scrape")

    def names(self) -> set[str]:
        return {s.name for s in self.samples}


_LABELS_BODY_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"\s*,?\s*')


def _parse_labels(body: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(body):
        m = _LABELS_BODY_RE.match(body, pos)
        if m is None:
            raise ValueError(f"malformed label body {body!r}")
        labels[m.group(1)] = unescape_label_value(m.group(2))
        pos = m.end()
    return labels


_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"        # sample name
    r"(?:\{(.*)\})?"                       # optional label body
    r"\s+(\S+)"                            # value
    r"(?:\s+(-?\d+))?"                     # optional timestamp
    r"\s*$")


def parse(text: str) -> ParsedExposition:
    """Parse a 0.0.4 exposition document (as produced by :func:`render`).

    Tolerates what a scraper must: blank lines, unknown comments,
    optional timestamps, and an OpenMetrics-style trailing exemplar
    (``... # {labels} value``) on sample lines.  Raises ``ValueError``
    on a malformed sample line — a *silent* skip would make the
    round-trip tests vacuous.
    """
    doc = ParsedExposition()
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "HELP":
                # escape_help emits a subset of the label-value escapes,
                # so the label unescaper is its exact inverse too
                doc.help[parts[2]] = unescape_label_value(
                    parts[3] if len(parts) > 3 else "")
            elif len(parts) >= 4 and parts[1] == "TYPE":
                doc.types[parts[2]] = parts[3]
            elif len(parts) >= 3 and parts[1] == "EXEMPLAR":
                _parse_exemplar_comment(doc, line)
            continue
        # OpenMetrics-style trailing exemplar on the sample line itself
        if " # " in line:
            line = line.split(" # ", 1)[0].rstrip()
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"malformed sample line {raw!r}")
        name, label_body, value_text = m.group(1), m.group(2), m.group(3)
        labels = _parse_labels(label_body) if label_body else {}
        doc.samples.append(
            ParsedSample(name, labels, _parse_number(value_text)))
    return doc


_EXEMPLAR_RE = re.compile(
    r"^#\s+EXEMPLAR\s+([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(.*?)\})?\s+(\S+)\s+\{(.*)\}\s*$")


def _parse_exemplar_comment(doc: ParsedExposition, line: str) -> None:
    m = _EXEMPLAR_RE.match(line)
    if m is None:
        return  # an unknown comment is never an error
    name, label_body, value_text, exemplar_body = m.groups()
    labels = _parse_labels(label_body) if label_body else {}
    key = (name, tuple(sorted(labels.items())))
    doc.exemplars[key] = (_parse_number(value_text),
                          _parse_labels(exemplar_body))


def fetch(url: str, timeout: float = 5.0) -> ParsedExposition:
    """Scrape ``url`` (a ``/metrics`` endpoint) and parse the body."""
    from urllib.request import urlopen

    with urlopen(url, timeout=timeout) as resp:
        return parse(resp.read().decode("utf-8"))
