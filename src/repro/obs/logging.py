"""Structured JSON logging correlated with the trace subsystem.

Every record formatted by :class:`JsonLogFormatter` is one JSON object
per line carrying the ids of the innermost open span (from
:func:`repro.trace.runtime.current_span`), so a log stream joins against
a JSONL trace export (:func:`repro.trace.write_jsonl`) on ``span_id`` —
"which stage of which operation printed this" becomes a merge, not a
guess::

    {"ts": "2026-08-07T00:00:00.123456+00:00", "level": "error",
     "logger": "repro.errors", "message": "compress failed ...",
     "span_id": 17, "parent_span_id": 12, "span_name": "compress",
     "operation": "compress", "plugin": "sz", "etype": "PressioError"}

The ``repro`` logger hierarchy ships with a :class:`logging.NullHandler`
and does not propagate, so library code can log unconditionally (the
error-taxonomy arms in :mod:`repro.core.compressor` do) without spraying
stderr in applications that never opted in.  :func:`configure` opts in:
it installs a JSON handler on the hierarchy root and returns it.
"""

from __future__ import annotations

import io
import json
import logging
import time
from typing import Any, TextIO

from ..trace import runtime as _trace

__all__ = ["JsonLogFormatter", "configure", "get_logger", "ROOT_LOGGER_NAME"]

ROOT_LOGGER_NAME = "repro"

#: LogRecord attributes that are plumbing, not user-supplied fields.
_RESERVED = frozenset(logging.LogRecord(
    "", 0, "", 0, "", (), None).__dict__) | {
    "message", "asctime", "taskName",
}

_root = logging.getLogger(ROOT_LOGGER_NAME)
_root.addHandler(logging.NullHandler())
_root.propagate = False


class JsonLogFormatter(logging.Formatter):
    """Format records as single-line JSON with span correlation ids."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": time.strftime("%Y-%m-%dT%H:%M:%S",
                                time.gmtime(record.created))
                  + f".{int(record.msecs * 1000):06d}+00:00",
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        span = _trace.current_span()
        if span is not None:
            payload["span_id"] = span.span_id
            payload["parent_span_id"] = span.parent_id
            payload["span_name"] = span.name
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc_type"] = record.exc_info[0].__name__
            payload["exc_message"] = str(record.exc_info[1])
            payload["traceback"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    if not name:
        return _root
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure(stream: TextIO | None = None, path: str | None = None,
              level: int = logging.INFO) -> logging.Handler:
    """Install a JSON handler on the ``repro`` logger hierarchy.

    ``stream`` and ``path`` are mutually exclusive destinations (default:
    stderr).  Calling again replaces the previously installed handler
    rather than stacking duplicates, so harnesses can reconfigure freely.
    Returns the installed handler (tests read its stream).
    """
    if stream is not None and path is not None:
        raise ValueError("pass stream or path, not both")
    handler: logging.Handler
    if path is not None:
        handler = logging.FileHandler(path, encoding="utf-8")
    else:
        handler = logging.StreamHandler(stream)  # None -> stderr
    handler.setFormatter(JsonLogFormatter())
    handler.set_name("repro-obs-json")
    for existing in list(_root.handlers):
        if existing.get_name() == "repro-obs-json":
            _root.removeHandler(existing)
            existing.close()
    _root.addHandler(handler)
    _root.setLevel(level)
    return handler


def capture_logs(level: int = logging.DEBUG
                 ) -> tuple[logging.Handler, io.StringIO]:
    """Configure logging into an in-memory buffer (test/debug helper)."""
    buffer = io.StringIO()
    handler = configure(stream=buffer, level=level)
    return handler, buffer
