"""A background HTTP endpoint serving ``/metrics`` and ``/healthz``.

Stdlib-only (``http.server`` on a daemon thread), so embedding costs an
import and one call::

    from repro import obs

    server = obs.start_server(port=9100)   # also enables collection
    ...                                    # compress/decompress as usual
    print(server.url)                      # http://127.0.0.1:9100
    server.stop()

``GET /metrics`` renders the active registry in Prometheus text format
(refreshing the trace-bridge gauges first when a trace context is
active); ``GET /healthz`` answers liveness probes with a small JSON
body.  Binding port 0 picks a free port — :attr:`MetricsServer.port`
reports the real one — which keeps tests and parallel jobs collision
free.
"""

from __future__ import annotations

import errno
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from . import bridge, prometheus, runtime
from .registry import MetricsRegistry

__all__ = ["MetricsServer", "PortInUseError", "bind_with_fallback",
           "start_server"]


class PortInUseError(OSError):
    """The requested port is already bound by another process.

    Raised instead of the raw ``OSError`` so callers (the
    ``serve-metrics`` and ``serve`` CLIs) can offer the port-0 fallback
    with a clear message rather than a traceback.
    """

    def __init__(self, host: str, port: int,
                 surface: str = "metrics") -> None:
        super().__init__(errno.EADDRINUSE,
                         f"{surface} port {host}:{port} is already in use")
        self.host = host
        self.port = port
        self.surface = surface


def bind_with_fallback(bind, host: str, port: int,
                       auto_port: bool = False,
                       surface: str = "metrics"):
    """The one shared ``--auto-port`` path for every pressio listener.

    Calls ``bind(host, port)``; on ``EADDRINUSE`` the collision is
    counted (``pressio_<surface>_port_in_use_total``) and then either
    the bind is retried on port 0 (``auto_port=True`` — the kernel
    hands out a free port, so concurrent startups cannot race on a
    fixed number) or a typed :class:`PortInUseError` is raised.

    ``serve-metrics`` and ``serve`` both route their sockets through
    here — the regression test for concurrent startup pins that they
    stay on this path rather than growing divergent retry loops.
    """
    try:
        return bind(host, port)
    except OSError as e:
        if e.errno != errno.EADDRINUSE:
            raise
        runtime.count(
            f"pressio_{surface}_port_in_use_total",
            f"{surface} startups that hit EADDRINUSE",
            host=host, port=str(port))
        if auto_port and port != 0:
            return bind(host, 0)
        raise PortInUseError(host, port, surface=surface) from e


class MetricsServer:
    """Owns the listening socket and its serving thread."""

    def __init__(self, registry: MetricsRegistry | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 auto_port: bool = False) -> None:
        self._registry = registry
        self._host = host
        self._requested_port = port
        self._auto_port = auto_port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started_at = 0.0

    # -- lifecycle --------------------------------------------------------
    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            raise RuntimeError("server already started")
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                server._handle(self)

            def log_message(self, format: str, *args) -> None:
                from .logging import get_logger

                get_logger("obs.http").debug(format % args)

        self._httpd = bind_with_fallback(
            lambda host, port: ThreadingHTTPServer((host, port), Handler),
            self._host, self._requested_port,
            auto_port=self._auto_port, surface="metrics")
        self._httpd.daemon_threads = True
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="pressio-metrics-server", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start() if self._httpd is None else self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- introspection -----------------------------------------------------
    @property
    def registry(self) -> MetricsRegistry | None:
        """The pinned registry, or the ambient one when none was pinned."""
        return self._registry if self._registry is not None else runtime.ACTIVE

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("server not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started_at if self._httpd else 0.0

    # -- request handling --------------------------------------------------
    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        path = request.path.split("?", 1)[0]
        if path == "/metrics":
            body, content_type, code = self._metrics_response()
        elif path in ("/healthz", "/health"):
            body, content_type, code = self._health_response()
        else:
            body = b"not found; try /metrics or /healthz\n"
            content_type, code = "text/plain; charset=utf-8", 404
        request.send_response(code)
        request.send_header("Content-Type", content_type)
        request.send_header("Content-Length", str(len(body)))
        request.end_headers()
        request.wfile.write(body)

    def _metrics_response(self) -> tuple[bytes, str, int]:
        registry = self.registry
        if registry is None:
            return (b"# metrics collection is disabled "
                    b"(call repro.obs.enable_metrics())\n",
                    prometheus.CONTENT_TYPE, 200)
        from ..trace import runtime as trace_runtime

        ctx = trace_runtime.active_tracer()
        if ctx is not None:
            bridge.ingest_trace(ctx, registry)
        bridge.ingest_runtime(registry)
        return (prometheus.render(registry).encode("utf-8"),
                prometheus.CONTENT_TYPE, 200)

    def _health_response(self) -> tuple[bytes, str, int]:
        registry = self.registry
        operations = 0.0
        if registry is not None:
            family = registry.get("pressio_operations_total")
            if family is not None:
                operations = sum(child.value
                                 for _, child in family.samples())
        payload = {
            "status": "ok",
            "uptime_seconds": round(self.uptime_seconds, 3),
            "collecting": registry is not None,
            "operations": operations,
        }
        return (json.dumps(payload).encode("utf-8") + b"\n",
                "application/json", 200)


def start_server(port: int = 0, host: str = "127.0.0.1",
                 registry: MetricsRegistry | None = None,
                 auto_port: bool = False) -> MetricsServer:
    """Enable collection (if needed) and serve it in the background.

    When no registry is passed and none is active, a fresh one is
    installed via :func:`repro.obs.runtime.enable_metrics` so operations
    that follow are counted without further setup.  ``auto_port=True``
    falls back to an OS-assigned port when the requested one is taken.
    """
    if registry is None and runtime.ACTIVE is None:
        runtime.enable_metrics()
    return MetricsServer(registry=registry, host=host, port=port,
                         auto_port=auto_port).start()
