"""``pressio bench``: a recurring benchmark grid with regression checks.

The paper's evaluation is a grid — compressor x dataset x error bound —
measured with the monotonic clock and summarized by medians (Fig. 3).
This module turns that one-off experiment shape into a *recurring*
artifact so performance has a trajectory, not a single data point:

* :func:`run_grid` rounds-trips every configuration through the plugin
  API, recording per-rep compress/decompress wall times, their
  median/p25/p75/p90, and the compression ratio;
* :func:`write_artifact` emits a timestamped ``BENCH_<date>.json``;
* :func:`compare` diffs two artifacts configuration-by-configuration
  and flags median-time regressions beyond a percentage threshold (and
  compression-ratio losses beyond the same threshold);
* :func:`run_bench` is the CLI: it benches, writes the artifact, finds
  the previous artifact (or an explicit ``--baseline``), and prints a
  per-configuration verdict table.

``--profile`` additionally captures one stage profile per configuration
(:mod:`repro.profile`) into ``<output-dir>/profiles/`` — profile JSON
plus collapsed-stack flamegraph — and records each profile's relative
path on its result row.  When the regression gate fires, the verdict is
followed by a stage-attribution table naming the stages that own the
delta (a full profile diff when the baseline row carries a profile too,
the current run's top stages otherwise).

Every artifact header records the git SHA and the hot-path sentinel
state at run time, so bench runs and profiles are joinable by commit
and a run accidentally taken with an observer active is visibly tainted.

CI runs ``pressio bench --quick`` nightly against the committed
baseline and fails on >15 % median regression, so a hot-path PR that
slows a codec shows up the next morning instead of at the next paper.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone
from typing import Any, Callable

import numpy as np

from . import quality as _quality

__all__ = ["run_grid", "write_artifact", "load_artifact",
           "find_previous_artifact", "compare", "format_comparison",
           "build_bench_parser", "run_bench"]

#: compressor plugin -> the option key its absolute bound is set through
#: (same mapping the Fig. 3 harness uses).
BOUND_KEYS = {
    "sz": "pressio:abs",
    "zfp": "zfp:accuracy",
    "mgard": "mgard:tolerance",
}

DEFAULT_COMPRESSORS = ("sz", "zfp", "mgard")
DEFAULT_DATASETS = ("nyx", "scale_letkf", "hacc")
DEFAULT_BOUNDS = (1e-4, 1e-3, 1e-2)
DEFAULT_DIMS = (32, 32, 32)
DEFAULT_REPS = 7

QUICK_COMPRESSORS = ("sz", "zfp")
QUICK_DATASETS = ("nyx",)
QUICK_BOUNDS = (1e-4, 1e-2)
QUICK_DIMS = (24, 24, 24)
QUICK_REPS = 3

SCHEMA = "pressio-bench/1"


def _percentiles(samples: list[float]) -> dict[str, float]:
    arr = np.asarray(samples, dtype=float)
    return {
        "median": float(np.median(arr)),
        "p25": float(np.percentile(arr, 25)),
        "p75": float(np.percentile(arr, 75)),
        "p90": float(np.percentile(arr, 90)),
        "min": float(arr.min()),
        "max": float(arr.max()),
    }


def _make_dataset(name: str, dims: tuple[int, ...]) -> np.ndarray:
    from ..datasets import DATASET_GENERATORS

    gen = DATASET_GENERATORS.get(name)
    if gen is None:
        raise ValueError(f"unknown dataset {name!r}; "
                         f"known: {sorted(DATASET_GENERATORS)}")
    if name == "hacc":  # 1-D particle data sized by element count
        return np.asarray(gen(int(np.prod(dims))))
    return np.asarray(gen(dims))


def run_grid(compressors: tuple[str, ...] = DEFAULT_COMPRESSORS,
             datasets: tuple[str, ...] = DEFAULT_DATASETS,
             bounds: tuple[float, ...] = DEFAULT_BOUNDS,
             dims: tuple[int, ...] = DEFAULT_DIMS,
             reps: int = DEFAULT_REPS,
             progress: Callable[[str], None] | None = None,
             profile_dir: str | None = None,
             ) -> list[dict[str, Any]]:
    """Round-trip the full grid; returns one result row per configuration.

    Bounds are value-range-relative (multiplied by each dataset's value
    range before being handed to the plugin), matching the paper's
    methodology, so one grid spec is meaningful across datasets.

    With ``profile_dir`` set, each configuration additionally runs one
    *profiled* round trip after its timed reps (so profiling overhead
    never contaminates the timings), writing ``PROFILE_<config>.json``
    plus a collapsed-stack ``.folded`` into that directory and recording
    the JSON's basename on the row under ``"profile"``.
    """
    from ..core.data import PressioData
    from ..core.library import Pressio

    library = Pressio()
    arrays = {name: _make_dataset(name, dims) for name in datasets}
    rows: list[dict[str, Any]] = []
    for compressor in compressors:
        bound_key = BOUND_KEYS.get(compressor)
        for dataset in datasets:
            arr = arrays[dataset]
            value_range = float(arr.max() - arr.min())
            for rel_bound in bounds:
                plugin = library.get_compressor(compressor)
                if plugin is None:
                    raise ValueError(library.error_msg())
                if bound_key is not None:
                    abs_bound = rel_bound * value_range
                    if plugin.set_options({bound_key: abs_bound}) != 0:
                        raise ValueError(plugin.error_msg())
                data = PressioData.from_numpy(arr, copy=False)
                template = PressioData.empty(data.dtype, data.dims)

                compress_s: list[float] = []
                decompress_s: list[float] = []
                compressed = plugin.compress(data)  # untimed warm-up
                decompressed = plugin.decompress(compressed, template)
                for _ in range(reps):
                    t0 = time.perf_counter()
                    compressed = plugin.compress(data)
                    t1 = time.perf_counter()
                    decompressed = plugin.decompress(compressed, template)
                    t2 = time.perf_counter()
                    compress_s.append(t1 - t0)
                    decompress_s.append(t2 - t1)
                ratio = data.size_in_bytes / compressed.size_in_bytes
                max_abs_error = float(np.max(np.abs(
                    arr.astype(np.float64)
                    - decompressed.to_numpy().astype(np.float64))))
                abs_bound = (rel_bound * value_range
                             if bound_key is not None else None)
                margin = (max_abs_error / abs_bound
                          if abs_bound else None)
                row = {
                    "compressor": compressor,
                    "dataset": dataset,
                    "bound": rel_bound,
                    "dims": list(arr.shape),
                    "reps": reps,
                    "compress_ms": _percentiles(
                        [s * 1e3 for s in compress_s]),
                    "decompress_ms": _percentiles(
                        [s * 1e3 for s in decompress_s]),
                    "compression_ratio": ratio,
                    "max_abs_error": max_abs_error,
                    "bound_margin": margin,
                }
                _quality.record_quality(
                    compressor, ratio, bound=abs_bound,
                    max_abs_error=max_abs_error,
                    fingerprint=_quality.dataset_fingerprint(arr),
                    config=_quality.config_label(
                        compressor, dataset, rel_bound, arr.shape))
                if profile_dir is not None:
                    row["profile"] = _profile_config(
                        plugin, data, template, compressor, dataset,
                        rel_bound, profile_dir)
                rows.append(row)
                if progress is not None:
                    progress(
                        f"{compressor:<8} {dataset:<12} bound={rel_bound:g} "
                        f"compress {row['compress_ms']['median']:.2f}ms "
                        f"decompress {row['decompress_ms']['median']:.2f}ms "
                        f"ratio {row['compression_ratio']:.1f}")
    return rows


def _profile_config(plugin: Any, data: Any, template: Any,
                    compressor: str, dataset: str, rel_bound: float,
                    profile_dir: str) -> str:
    """One profiled round trip for a bench configuration.

    Writes ``PROFILE_<compressor>_<dataset>_<bound>.json`` and the
    matching ``.folded`` flamegraph input into ``profile_dir``; returns
    the JSON's basename (rows stay relocatable with the artifact).
    """
    from ..profile import StageProfiler, write_collapsed, write_profile

    label = f"{compressor}_{dataset}_{rel_bound:g}"
    with StageProfiler(label) as prof:
        compressed = plugin.compress(data)
        plugin.decompress(compressed, template)
    profile = prof.result(meta={
        "compressor": compressor, "dataset": dataset, "bound": rel_bound,
    })
    os.makedirs(profile_dir, exist_ok=True)
    name = f"PROFILE_{label}.json"
    write_profile(profile, os.path.join(profile_dir, name))
    write_collapsed(profile, os.path.join(
        profile_dir, f"PROFILE_{label}.folded"))
    return name


def _print_attribution(regressions: list[dict[str, Any]],
                       output_dir: str, baseline_path: str | None,
                       top: int = 3) -> None:
    """Name the stages behind each regression, when profiles exist.

    Uses a full profile diff when the baseline row recorded a profile
    that is still on disk (next to the baseline artifact); otherwise
    falls back to the current profile's top exclusive stages, which at
    least localizes where the slow configuration spends its time.
    """
    from ..profile import attribute_regression, load_profile

    profile_dir = os.path.join(output_dir, "profiles")
    base_dir = (os.path.join(os.path.dirname(baseline_path), "profiles")
                if baseline_path else None)
    for entry in regressions:
        cfg = entry["config"]
        name = cfg.get("profile")
        if not name:
            continue
        try:
            current = load_profile(os.path.join(profile_dir, name))
        except (OSError, ValueError, json.JSONDecodeError):
            continue
        header = (f"{cfg['compressor']}/{cfg['dataset']}/"
                  f"bound={cfg['bound']:g}")
        base_name = entry.get("baseline_profile")
        baseline = None
        if base_dir and base_name:
            base_path = os.path.join(base_dir, base_name)
            # benching into the directory that holds the baseline
            # artifact overwrites its PROFILE_* files before the
            # comparison runs — the "baseline" profile on disk is then
            # this run's own, and diffing it would vacuously attribute
            # nothing.  Detect the collision and fall back.
            if os.path.abspath(base_path) != os.path.abspath(
                    os.path.join(profile_dir, name)):
                try:
                    baseline = load_profile(base_path)
                except (OSError, ValueError, json.JSONDecodeError):
                    baseline = None
        if baseline is not None:
            lines = attribute_regression(current, baseline, top=top)
            print(f"  {header}:")
            for line in lines:
                print(f"    {line}")
            if not lines:
                print("    (no stage exceeds the reporting floor; "
                      "the slowdown is outside the profiled stages)")
        else:
            stages = [r for r in current.get("stages", [])
                      if r.get("calls", 0) > 0][:top]
            wall = max(current.get("wall_ns", 0), 1)
            print(f"  {header} (no baseline profile; top stages):")
            for row in stages:
                pct = 100.0 * row["exclusive_ns"] / wall
                print(f"    {row['path']}: "
                      f"{row['exclusive_ns'] / 1e6:.2f}ms "
                      f"exclusive ({pct:.1f}% of wall)")


# ---------------------------------------------------------------------------
# artifacts
# ---------------------------------------------------------------------------

def write_artifact(rows: list[dict[str, Any]], output_dir: str,
                   quick: bool = False,
                   timestamp: datetime | None = None) -> str:
    """Write ``BENCH_<UTC timestamp>.json``; returns the path."""
    from ..profile.export import git_revision
    from .. import _hot

    stamp = timestamp or datetime.now(timezone.utc)
    artifact = {
        "schema": SCHEMA,
        "created_at": stamp.isoformat(),
        "host": platform.node(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "git_sha": git_revision(),
        "hot_sentinel": bool(_hot.ANY),
        "quick": quick,
        "configs": rows,
    }
    os.makedirs(output_dir, exist_ok=True)
    path = os.path.join(
        output_dir, f"BENCH_{stamp.strftime('%Y%m%d-%H%M%S')}.json")
    with open(path, "w") as fh:
        json.dump(artifact, fh, indent=2)
        fh.write("\n")
    return path


def load_artifact(path: str) -> dict[str, Any]:
    with open(path) as fh:
        artifact = json.load(fh)
    if artifact.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unsupported artifact schema {artifact.get('schema')!r}")
    return artifact


def find_previous_artifact(output_dir: str,
                           exclude: str | None = None) -> str | None:
    """Latest ``BENCH_*.json`` in ``output_dir`` other than ``exclude``."""
    candidates = sorted(glob.glob(os.path.join(output_dir, "BENCH_*.json")))
    if exclude is not None:
        exclude = os.path.abspath(exclude)
        candidates = [c for c in candidates
                      if os.path.abspath(c) != exclude]
    return candidates[-1] if candidates else None


# ---------------------------------------------------------------------------
# regression comparison
# ---------------------------------------------------------------------------

def _config_key(row: dict[str, Any]) -> tuple:
    return (row["compressor"], row["dataset"], row["bound"],
            tuple(row.get("dims", ())))


def compare(current: dict[str, Any], baseline: dict[str, Any],
            threshold_pct: float = 15.0) -> dict[str, Any]:
    """Per-configuration deltas of current vs baseline, with verdicts.

    A configuration regresses when a median time grows more than
    ``threshold_pct`` percent, or the compression ratio shrinks more
    than ``threshold_pct`` percent.  Configurations present on only one
    side are reported but never count as regressions.
    """
    base_rows = {_config_key(r): r for r in baseline["configs"]}
    cur_rows = {_config_key(r): r for r in current["configs"]}
    deltas: list[dict[str, Any]] = []
    regressions: list[dict[str, Any]] = []
    for key, row in cur_rows.items():
        base = base_rows.get(key)
        if base is None:
            deltas.append({"config": row, "status": "new"})
            continue
        entry: dict[str, Any] = {"config": row, "status": "ok",
                                 "deltas_pct": {}}
        if base.get("profile"):
            entry["baseline_profile"] = base["profile"]
        failed: list[str] = []
        for field in ("compress_ms", "decompress_ms"):
            old = base[field]["median"]
            new = row[field]["median"]
            pct = 100.0 * (new - old) / old if old > 0 else 0.0
            entry["deltas_pct"][field] = pct
            if pct > threshold_pct:
                failed.append(f"{field} +{pct:.1f}%")
        old_ratio = base["compression_ratio"]
        new_ratio = row["compression_ratio"]
        ratio_pct = (100.0 * (new_ratio - old_ratio) / old_ratio
                     if old_ratio > 0 else 0.0)
        entry["deltas_pct"]["compression_ratio"] = ratio_pct
        if ratio_pct < -threshold_pct:
            failed.append(f"compression_ratio {ratio_pct:.1f}%")
        if failed:
            entry["status"] = "regression"
            entry["failed"] = failed
            regressions.append(entry)
        deltas.append(entry)
    for key, row in base_rows.items():
        if key not in cur_rows:
            deltas.append({"config": row, "status": "missing"})
    return {
        "baseline_created_at": baseline.get("created_at"),
        "current_created_at": current.get("created_at"),
        "threshold_pct": threshold_pct,
        "deltas": deltas,
        "regressions": regressions,
        "verdict": "REGRESSION" if regressions else "PASS",
    }


def format_comparison(report: dict[str, Any]) -> str:
    """Human-readable verdict table for a :func:`compare` report."""
    lines = [
        f"baseline: {report['baseline_created_at']}  "
        f"current: {report['current_created_at']}  "
        f"threshold: {report['threshold_pct']:g}%",
        f"{'compressor':<10} {'dataset':<12} {'bound':>8} "
        f"{'compress':>10} {'decompress':>11} {'ratio':>8}  status",
    ]
    lines.append("-" * len(lines[-1]))
    for entry in report["deltas"]:
        cfg = entry["config"]
        prefix = (f"{cfg['compressor']:<10} {cfg['dataset']:<12} "
                  f"{cfg['bound']:>8.0e} ")
        if entry["status"] in ("new", "missing"):
            lines.append(prefix + f"{'-':>10} {'-':>11} {'-':>8}  "
                         + entry["status"])
            continue
        d = entry["deltas_pct"]
        lines.append(
            prefix
            + f"{d['compress_ms']:>+9.1f}% {d['decompress_ms']:>+10.1f}% "
            + f"{d['compression_ratio']:>+7.1f}%  " + entry["status"])
    lines.append("")
    lines.append(f"verdict: {report['verdict']}"
                 + (f" ({len(report['regressions'])} configuration(s) "
                    f"beyond threshold)"
                    if report["regressions"] else ""))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pressio bench",
        description="run the benchmark grid, write a BENCH_<date>.json "
                    "artifact, and compare against the previous one",
    )
    parser.add_argument("--quick", action="store_true",
                        help="small grid for CI smoke runs")
    parser.add_argument("--serve", action="store_true",
                        help="compare served round trips (live local "
                             "daemon, shared-memory handoff) against "
                             "in-process on the quick grid and write a "
                             "pressio-serve-bench/1 artifact")
    parser.add_argument("--serve-output",
                        default="benchmarks/BENCH_serve_compare.json",
                        help="artifact path for the --serve comparison")
    parser.add_argument("--compressors", default=None,
                        help="comma-separated plugin ids")
    parser.add_argument("--datasets", default=None,
                        help="comma-separated synthetic dataset names")
    parser.add_argument("--bounds", default=None,
                        help="comma-separated value-range-relative bounds")
    parser.add_argument("--dims", default=None,
                        help="comma-separated dataset dims")
    parser.add_argument("--reps", type=int, default=None,
                        help="repetitions per configuration")
    parser.add_argument("--output-dir", default="bench-results",
                        help="directory for BENCH_*.json artifacts")
    parser.add_argument("--baseline", default=None,
                        help="explicit baseline artifact (default: the "
                             "previous BENCH_*.json in --output-dir)")
    parser.add_argument("--threshold", type=float, default=15.0,
                        help="regression threshold in percent")
    parser.add_argument("--fail-on-regress", action="store_true",
                        help="exit 1 when any configuration regresses")
    parser.add_argument("--no-compare", action="store_true",
                        help="write the artifact only")
    parser.add_argument("--profile", action="store_true",
                        help="capture a stage profile per configuration "
                             "(JSON + flamegraph in <output-dir>/profiles) "
                             "so regressions can be attributed to a stage")
    parser.add_argument("--history", action="store_true",
                        help="append this run to the quality-drift "
                             "history and report drift against it")
    parser.add_argument("--history-file", default=None,
                        help="history JSONL path (default: "
                             "benchmarks/BENCH_history.jsonl)")
    parser.add_argument("--drift-window", type=int, default=5,
                        help="prior history entries to compare against")
    parser.add_argument("--drift-ratio-pct", type=float, default=10.0,
                        help="flag a ratio this far below the window "
                             "median (percent)")
    parser.add_argument("--drift-margin-pct", type=float, default=25.0,
                        help="flag a bound margin this far above the "
                             "window median (percent)")
    parser.add_argument("--fail-on-drift", action="store_true",
                        help="exit 1 when quality drift is flagged")
    return parser


def run_bench(argv: list[str]) -> int:
    args = build_bench_parser().parse_args(argv)
    if args.serve:
        from ..serve.bench import run_serve_bench

        return run_serve_bench(args)
    compressors = (tuple(args.compressors.split(","))
                   if args.compressors else
                   QUICK_COMPRESSORS if args.quick else DEFAULT_COMPRESSORS)
    datasets = (tuple(args.datasets.split(","))
                if args.datasets else
                QUICK_DATASETS if args.quick else DEFAULT_DATASETS)
    bounds = (tuple(float(b) for b in args.bounds.split(","))
              if args.bounds else
              QUICK_BOUNDS if args.quick else DEFAULT_BOUNDS)
    dims = (tuple(int(d) for d in args.dims.split(","))
            if args.dims else QUICK_DIMS if args.quick else DEFAULT_DIMS)
    reps = args.reps or (QUICK_REPS if args.quick else DEFAULT_REPS)

    print(f"benchmark grid: {len(compressors)} compressor(s) x "
          f"{len(datasets)} dataset(s) x {len(bounds)} bound(s), "
          f"{reps} reps, dims {'x'.join(str(d) for d in dims)}")
    profile_dir = (os.path.join(args.output_dir, "profiles")
                   if args.profile else None)
    rows = run_grid(compressors, datasets, bounds, dims, reps,
                    progress=print, profile_dir=profile_dir)
    path = write_artifact(rows, args.output_dir, quick=args.quick)
    print(f"wrote {path}")
    if profile_dir is not None:
        print(f"wrote {len(rows)} profile(s) to {profile_dir}")

    drifted = False
    if args.history:
        from . import history as _history
        from ..profile.export import git_revision

        history_path = args.history_file or _history.DEFAULT_HISTORY_PATH
        entry = _history.history_entry(
            rows, created_at=load_artifact(path)["created_at"],
            git_sha=git_revision(), quick=args.quick)
        _history.append_history(entry, history_path)
        entries = _history.load_history(history_path)
        print(f"appended run to {history_path} "
              f"({len(entries)} entr{'y' if len(entries) == 1 else 'ies'})")
        flags = _history.detect_drift(
            entries, window=args.drift_window,
            ratio_slo_pct=args.drift_ratio_pct,
            margin_slo_pct=args.drift_margin_pct)
        print(_history.format_drift(flags))
        drifted = bool(flags)

    if args.no_compare:
        return 1 if drifted and args.fail_on_drift else 0
    baseline_path = args.baseline or find_previous_artifact(
        args.output_dir, exclude=path)
    if baseline_path is None:
        print("no previous artifact to compare against; "
              "this run becomes the baseline")
        return 0
    try:
        baseline = load_artifact(baseline_path)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"error: cannot load baseline {baseline_path}: {e}",
              file=sys.stderr)
        return 2
    report = compare(load_artifact(path), baseline,
                     threshold_pct=args.threshold)
    print(f"\ncomparing against {baseline_path}:")
    print(format_comparison(report))
    if report["regressions"] and args.profile:
        print("\nstage attribution for regressed configuration(s):")
        _print_attribution(report["regressions"], args.output_dir,
                           baseline_path)
    if report["regressions"] and args.fail_on_regress:
        return 1
    if drifted and args.fail_on_drift:
        return 1
    return 0
