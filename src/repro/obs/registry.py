"""The metrics registry: named counters, gauges, and histograms.

The trace subsystem (:mod:`repro.trace`) answers "where did *this run*
spend its time"; this module answers the operational question "what has
*this process* done since it started" — the numbers a scraper polls.
The model follows the Prometheus client-library conventions so the
exposition layer (:mod:`repro.obs.prometheus`) is a straight rendering:

* a :class:`MetricsRegistry` owns uniquely-named metric *families*;
* a family (:class:`Counter`, :class:`Gauge`, :class:`Histogram`)
  declares an ordered tuple of label names (``plugin``, ``operation``,
  ``dtype``, ...);
* :meth:`MetricFamily.labels` returns the child time series for one
  combination of label values; children are created on first use and
  remembered, so a scrape sees every combination ever touched.

Everything is stdlib-only and thread-safe: one lock per registry guards
family creation, one lock per family guards its children and their
values.  Nothing here is on the compression hot path — the single
global read that gates instrumentation lives in
:mod:`repro.obs.runtime`.
"""

from __future__ import annotations

import re
import threading
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_DURATION_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Histogram bounds for operation durations in **seconds**, spanning the
#: microsecond-scale noop round trips up to multi-second native codecs.
DEFAULT_DURATION_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class MetricFamily:
    """A named metric plus its per-label-combination children."""

    kind = "untyped"

    def __init__(self, name: str, help: str,
                 labelnames: tuple[str, ...] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r}")
        if len(set(labelnames)) != len(labelnames):
            raise ValueError(f"duplicate label names in {labelnames!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Any] = {}
        if not self.labelnames:
            # the unlabelled series exists from declaration, so a scrape
            # shows the zero value rather than omitting the metric
            self._children[()] = self._new_child()

    def _new_child(self):
        raise NotImplementedError

    def labels(self, **labelvalues: Any):
        """The child series for one combination of label values."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}")
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._new_child()
            return child

    def samples(self) -> list[tuple[tuple[str, ...], Any]]:
        """(labelvalues, child) pairs in insertion order."""
        with self._lock:
            return list(self._children.items())

    # convenience for the no-label case --------------------------------
    def _sole(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} has labels {self.labelnames}; use .labels()")
        return self._children[()]


class _CounterValue:
    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class _GaugeValue:
    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class _HistogramValue:
    """Cumulative-bucket histogram state (le-style, like Prometheus)."""

    __slots__ = ("bounds", "bucket_counts", "total", "count", "exemplars",
                 "_lock")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last is +Inf
        self.total = 0.0
        self.count = 0
        #: bucket index -> (observed value, exemplar labels); keeps the
        #: most recent exemplar per bucket, OpenMetrics-style, so a
        #: drifted quality bucket names the config that landed in it
        self.exemplars: dict[int, tuple[float, dict[str, str]]] = {}
        self._lock = threading.Lock()

    def observe(self, value: float,
                exemplar: dict[str, str] | None = None) -> None:
        with self._lock:
            self.total += value
            self.count += 1
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    bucket = i
                    break
            else:
                self.bucket_counts[-1] += 1
                bucket = len(self.bounds)
            if exemplar:
                self.exemplars[bucket] = (
                    value, {str(k): str(v) for k, v in exemplar.items()})

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs ending at +Inf."""
        with self._lock:
            running = 0
            out: list[tuple[float, int]] = []
            for bound, n in zip(self.bounds, self.bucket_counts):
                running += n
                out.append((bound, running))
            out.append((float("inf"), running + self.bucket_counts[-1]))
            return out


class Counter(MetricFamily):
    """A monotonically increasing value (operation counts, bytes, errors)."""

    kind = "counter"

    def _new_child(self) -> _CounterValue:
        return _CounterValue()

    def inc(self, amount: float = 1.0) -> None:
        self._sole().inc(amount)

    @property
    def value(self) -> float:
        return self._sole().value


class Gauge(MetricFamily):
    """A value that can go up and down (last ratio, queue depth, uptime)."""

    kind = "gauge"

    def _new_child(self) -> _GaugeValue:
        return _GaugeValue()

    def set(self, value: float) -> None:
        self._sole().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._sole().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._sole().dec(amount)

    @property
    def value(self) -> float:
        return self._sole().value


class Histogram(MetricFamily):
    """Bucketed distribution with ``_sum``/``_count`` (durations, sizes)."""

    kind = "histogram"

    def __init__(self, name: str, help: str,
                 labelnames: tuple[str, ...] = (),
                 buckets: tuple[float, ...] = DEFAULT_DURATION_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("duplicate histogram bucket bounds")
        if "le" in labelnames:
            raise ValueError("'le' is reserved for histogram buckets")
        self.buckets = bounds
        super().__init__(name, help, labelnames)

    def _new_child(self) -> _HistogramValue:
        return _HistogramValue(self.buckets)

    def observe(self, value: float,
                exemplar: dict[str, str] | None = None) -> None:
        self._sole().observe(value, exemplar=exemplar)


class MetricsRegistry:
    """A namespace of uniquely-named metric families.

    Families are created through the get-or-create accessors
    (:meth:`counter` / :meth:`gauge` / :meth:`histogram`), which makes
    instrumentation sites idempotent: the first caller declares the
    family, later callers get the same object, and a declaration that
    disagrees with the existing one (kind or label names) is an error
    rather than a silent overwrite.
    """

    def __init__(self, namespace: str = "pressio") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    # -- family management ------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: tuple[str, ...], **kwargs) -> Any:
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                if existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, not {labelnames}")
                return existing
            family = cls(name, help, labelnames, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labelnames: tuple[str, ...] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: tuple[str, ...] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = DEFAULT_DURATION_BUCKETS,
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    # -- introspection -----------------------------------------------------
    def collect(self) -> Iterator[MetricFamily]:
        """Families sorted by name (the exposition order)."""
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        yield from families

    def get(self, name: str) -> MetricFamily | None:
        with self._lock:
            return self._families.get(name)

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._families)

    def value(self, name: str, **labelvalues: Any) -> float:
        """Read one series' current value (counters and gauges)."""
        family = self.get(name)
        if family is None:
            raise KeyError(name)
        child = family.labels(**labelvalues) if labelvalues else family._sole()
        return child.value

    def clear(self) -> None:
        with self._lock:
            self._families.clear()
