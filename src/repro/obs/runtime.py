"""The process-wide active metrics registry and zero-cost guards.

Mirrors :mod:`repro.trace.runtime`: the compression hot path reads one
module global (``ACTIVE``) and compares it to ``None``.  When metrics
collection is disabled that comparison is the *entire* cost, so the
paper's Fig. 3 overhead claim — pinned by
``tests/trace/test_overhead.py`` — survives the registry being wired
into :meth:`repro.core.compressor.PressioCompressor.compress`.

Helpers degrade to no-ops when disabled, so instrumentation sites
(including the *cold* error paths) never need their own guards:

* :func:`record_operation` — op counter + duration histogram + byte
  counters for one compress/decompress, labelled by plugin/dtype;
* :func:`record_error` — the error-taxonomy counter family
  (``pressio_errors_total{operation,plugin,etype}``) plus a structured
  log record carrying the current span id;
* :func:`count` — a generic labelled counter bump for plugin-specific
  events (the ``external`` compressor's worker failures use this).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from .. import _hot
from . import flight as _flight
from .registry import MetricsRegistry

__all__ = [
    "ACTIVE",
    "active_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "record_operation",
    "record_error",
    "count",
    "observe",
    "set_gauge",
]

#: The active registry, or None when collection is disabled.
ACTIVE: MetricsRegistry | None = None


def active_registry() -> MetricsRegistry | None:
    """The active :class:`MetricsRegistry`, or None when disabled."""
    return ACTIVE


def enable_metrics(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the active registry."""
    global ACTIVE
    if registry is None:
        registry = MetricsRegistry()
    ACTIVE = registry
    _hot.set_registry_active(True)
    return registry


def disable_metrics() -> MetricsRegistry | None:
    """Deactivate collection; returns the registry that was active."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = None
    _hot.set_registry_active(False)
    return previous


@contextmanager
def metrics_enabled(registry: MetricsRegistry | None = None,
                    ) -> Iterator[MetricsRegistry]:
    """Scoped collection: activate for the block, restore prior state."""
    global ACTIVE
    previous = ACTIVE
    installed = enable_metrics(registry)
    try:
        yield installed
    finally:
        ACTIVE = previous
        _hot.set_registry_active(previous is not None)


# ---------------------------------------------------------------------------
# instrumentation helpers (no-ops when disabled)
# ---------------------------------------------------------------------------

def record_operation(operation: str, plugin: str, dtype: str,
                     seconds: float, input_bytes: int,
                     output_bytes: int) -> None:
    """Record one completed compress/decompress on the active registry.

    The operation count is the series the acceptance check joins against
    the trace aggregate report: one increment per public
    ``compress``/``decompress`` call, labelled exactly like the span the
    tracer would open for the same call.
    """
    reg = ACTIVE
    if reg is None:
        return
    reg.counter(
        "pressio_operations_total",
        "compress/decompress operations completed",
        ("operation", "plugin", "dtype"),
    ).labels(operation=operation, plugin=plugin, dtype=dtype).inc()
    reg.histogram(
        "pressio_operation_duration_seconds",
        "wall time of compress/decompress operations",
        ("operation", "plugin"),
    ).labels(operation=operation, plugin=plugin).observe(seconds)
    reg.counter(
        "pressio_processed_bytes_total",
        "bytes entering (in) and leaving (out) operations",
        ("operation", "plugin", "direction"),
    ).labels(operation=operation, plugin=plugin, direction="in").inc(
        input_bytes)
    reg.counter(
        "pressio_processed_bytes_total",
        "bytes entering (in) and leaving (out) operations",
        ("operation", "plugin", "direction"),
    ).labels(operation=operation, plugin=plugin, direction="out").inc(
        output_bytes)
    if operation == "compress" and output_bytes:
        reg.gauge(
            "pressio_last_compression_ratio",
            "uncompressed/compressed byte ratio of the last compress",
            ("plugin",),
        ).labels(plugin=plugin).set(input_bytes / output_bytes)


def record_error(operation: str, plugin: str, exc: BaseException,
                 **extra: Any) -> None:
    """Count an error by taxonomy and emit a structured log record.

    Called from the ``except`` arms of the core compressor and the
    out-of-process path; always emits the log record (the logger is a
    no-op until :func:`repro.obs.logging.configure` installs a handler)
    and bumps ``pressio_errors_total`` when a registry is active.

    When a flight recorder is active the error also lands in its ring,
    and a :class:`~repro.core.status.CorruptStreamError` — wrong bytes
    came back — triggers an immediate bundle dump (matched by class
    name through the MRO so this module never imports
    :mod:`repro.core.status` and cycles).
    """
    etype = type(exc).__name__
    rec = _flight.ACTIVE
    if rec is not None:
        rec.record_error(operation, plugin, exc, extra)
        if any(c.__name__ == "CorruptStreamError"
               for c in type(exc).__mro__):
            rec.dump("corrupt-stream", exc=exc)
    reg = ACTIVE
    if reg is not None:
        reg.counter(
            "pressio_errors_total",
            "operation failures by exception taxonomy",
            ("operation", "plugin", "etype"),
        ).labels(operation=operation, plugin=plugin, etype=etype).inc()
    from .logging import get_logger

    get_logger("errors").error(
        "%s failed in plugin %s: %s", operation, plugin, exc,
        extra={"operation": operation, "plugin": plugin,
               "etype": etype, **extra},
    )


def count(name: str, help: str = "", amount: float = 1.0,
          **labels: Any) -> None:
    """Bump a labelled counter on the active registry (no-op when off)."""
    reg = ACTIVE
    if reg is None:
        return
    family = reg.counter(name, help, tuple(labels))
    (family.labels(**labels) if labels else family._sole()).inc(amount)


def observe(name: str, value: float, help: str = "",
            buckets: tuple[float, ...] | None = None,
            **labels: Any) -> None:
    """Record a histogram observation on the active registry."""
    reg = ACTIVE
    if reg is None:
        return
    kwargs = {"buckets": buckets} if buckets is not None else {}
    family = reg.histogram(name, help, tuple(labels), **kwargs)
    (family.labels(**labels) if labels else family._sole()).observe(value)


def set_gauge(name: str, value: float, help: str = "",
              **labels: Any) -> None:
    """Set a labelled gauge on the active registry (no-op when off)."""
    reg = ACTIVE
    if reg is None:
        return
    family = reg.gauge(name, help, tuple(labels))
    (family.labels(**labels) if labels else family._sole()).set(value)
