"""Quality-drift telemetry: compression-ratio and bound-margin series.

Performance telemetry answers "is it still fast"; this module answers
"is it still *good*".  Two histogram families on the active registry:

* ``pressio_quality_ratio{compressor}`` — achieved compression ratio
  (uncompressed/compressed bytes), log-ish buckets from 1x to 1000x;
* ``pressio_quality_bound_margin{compressor}`` — how much of the error
  budget a round trip consumed: ``max_abs_error / abs_bound``.  Values
  at or below 1.0 honour the bound; above 1.0 is a violation (the same
  quantity the conformance oracles assert on, now on a dashboard).

Every observation carries an **exemplar** — the dataset fingerprint and
the config string — so when a bucket drifts the scrape names the exact
configuration that landed there rather than an anonymous count
(rendered as ``# EXEMPLAR`` comment lines; see
:mod:`repro.obs.prometheus`).

:func:`dataset_fingerprint` gives a short stable content hash for
labelling: dtype + shape + a strided sample of the raw bytes, cheap
enough to run per bench configuration.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

from . import runtime as _runtime

__all__ = ["RATIO_BUCKETS", "MARGIN_BUCKETS", "record_quality",
           "dataset_fingerprint", "config_label"]

#: Ratio buckets: 1x (incompressible) through three decades, roughly
#: geometric so both lossless-ish (2-4x) and aggressive (100x+) regimes
#: resolve.
RATIO_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                 256.0, 512.0, 1000.0)

#: Bound-margin buckets: dense below 1.0 (how much budget was used),
#: plus >1.0 buckets so violations land somewhere visible instead of
#: only in +Inf.
MARGIN_BUCKETS = (0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 2.0, 10.0)


def dataset_fingerprint(array: np.ndarray, sample: int = 4096) -> str:
    """A short stable content hash for exemplar labels.

    Hashes dtype, shape, and an evenly strided byte sample (the whole
    buffer when small), so the fingerprint identifies the dataset
    without re-reading gigabytes on every bench row.
    """
    arr = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(str(arr.dtype).encode())
    digest.update(str(arr.shape).encode())
    raw = arr.view(np.uint8).reshape(-1)
    if raw.size <= sample:
        digest.update(raw.tobytes())
    else:
        step = raw.size // sample
        digest.update(raw[::step][:sample].tobytes())
    return digest.hexdigest()[:12]


def config_label(compressor: str, dataset: str, bound: float,
                 dims: Any = None) -> str:
    """The canonical config string used in exemplars and drift reports."""
    label = f"{compressor}/{dataset}/bound={bound:g}"
    if dims:
        label += "/" + "x".join(str(d) for d in dims)
    return label


def record_quality(compressor: str, ratio: float,
                   bound: float | None = None,
                   max_abs_error: float | None = None,
                   fingerprint: str | None = None,
                   config: str | None = None) -> None:
    """Record one round trip's quality on the active registry.

    No-op when metrics collection is disabled.  The bound margin is
    only recorded when both ``bound`` and ``max_abs_error`` are known
    (lossless or unbounded configs have no budget to measure against).
    """
    reg = _runtime.ACTIVE
    if reg is None:
        return
    exemplar: dict[str, str] = {}
    if fingerprint:
        exemplar["fingerprint"] = fingerprint
    if config:
        exemplar["config"] = config
    reg.histogram(
        "pressio_quality_ratio",
        "achieved compression ratio (uncompressed/compressed bytes)",
        ("compressor",), buckets=RATIO_BUCKETS,
    ).labels(compressor=compressor).observe(
        ratio, exemplar=exemplar or None)
    if bound is not None and bound > 0 and max_abs_error is not None:
        reg.histogram(
            "pressio_quality_bound_margin",
            "max_abs_error / abs_bound per round trip "
            "(<=1 honours the bound)",
            ("compressor",), buckets=MARGIN_BUCKETS,
        ).labels(compressor=compressor).observe(
            max_abs_error / bound, exemplar=exemplar or None)
