"""Lock rules (``LK*``): acquire/release balance and global lock order.

The chunk-pipelined executor, the buffer pool, the trace runtime, and
the metrics registry each guard their state with a lock; PR 8 made it
normal for one request to cross several of them.  LK001 keeps manual
``lock.acquire()`` calls exception-safe inside one function; LK002
builds a whole-program static lock-order graph (``with`` regions plus
call-graph reachability) and flags any cycle — the static shadow of the
runtime inversion detector in :mod:`repro.sanitize`.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..dataflow import CallGraph, build_lock_graph, lock_id_for_expr
from ..model import Finding, Severity
from ..project import ProjectIndex, SourceModule, dotted_name
from . import Rule, register_rule

#: methods implementing the lock protocol itself (wrapper classes, the
#: sanitizer's own proxies): calling inner.acquire() here IS the design
_PROTOCOL_METHODS = ("acquire", "release", "__enter__", "__exit__",
                     "locked")


def _lock_receiver(call: ast.Call) -> str | None:
    """Receiver dotted name for ``<recv>.acquire()`` / ``.release()``."""
    if not isinstance(call.func, ast.Attribute):
        return None
    if call.func.attr not in ("acquire", "release"):
        return None
    name = dotted_name(call.func.value)
    if name and "lock" in name.split(".")[-1].lower():
        return name
    return None


def _in_finalbody(node: ast.AST, fn: ast.FunctionDef) -> bool:
    for candidate in ast.walk(fn):
        if isinstance(candidate, ast.Try):
            for stmt in candidate.finalbody:
                if any(sub is node for sub in ast.walk(stmt)):
                    return True
    return False


@register_rule
class LockImbalanceRule(Rule):
    """LK001: manual lock acquire/release stays balanced + safe."""

    rule_id = "LK001"
    name = "lock-acquire-release-imbalance"
    severity = Severity.ERROR
    description = (
        "A manual lock.acquire() call must be paired with a release() in "
        "the same function, and the release must sit in a try/finally so "
        "an exception cannot leave the lock held.  Prefer 'with lock:' "
        "which gets both for free.  Lock-protocol methods (acquire/"
        "release/__enter__/__exit__ on wrapper classes) are exempt."
    )
    rationale = (
        "A lock left held on an exception path deadlocks the next "
        "request on that subsystem — in the pipelined executor that "
        "stalls the whole stage overlap the paper's throughput numbers "
        "depend on."
    )
    good_example = (
        "lock.acquire()\n"
        "try:\n"
        "    update_shared_state()\n"
        "finally:\n"
        "    lock.release()\n"
        "# or simply:  with lock: update_shared_state()"
    )
    bad_example = (
        "lock.acquire()\n"
        "update_shared_state()  # raises -> lock held forever\n"
        "lock.release()"
    )

    def check(self, module: SourceModule,
              index: ProjectIndex) -> Iterable[Finding]:
        if module.tree is None:
            return
        for fn in ast.walk(module.tree):
            if not isinstance(fn, ast.FunctionDef):
                continue
            if fn.name in _PROTOCOL_METHODS:
                continue
            yield from self._check_function(module, fn)

    def _check_function(self, module: SourceModule,
                        fn: ast.FunctionDef) -> Iterable[Finding]:
        acquires: dict[str, list[ast.Call]] = {}
        releases: dict[str, list[ast.Call]] = {}
        for node in ast.walk(fn):
            if isinstance(node, ast.FunctionDef) and node is not fn:
                continue
            if not isinstance(node, ast.Call):
                continue
            recv = _lock_receiver(node)
            if recv is None:
                continue
            bucket = acquires if node.func.attr == "acquire" else releases
            bucket.setdefault(recv, []).append(node)
        for recv, calls in sorted(acquires.items()):
            rel = releases.get(recv, [])
            if not rel:
                yield self.finding(
                    module, calls[0],
                    f"lock {recv!r} is acquired in {fn.name}() but never "
                    f"released there; use 'with {recv}:' or pair with a "
                    f"finally release")
            elif not any(_in_finalbody(r, fn) for r in rel):
                yield self.finding(
                    module, calls[0],
                    f"lock {recv!r} acquired in {fn.name}() is released "
                    f"outside any finally block; an exception between "
                    f"acquire and release leaves it held")


@register_rule
class LockOrderCycleRule(Rule):
    """LK002: the whole-program static lock-order graph is acyclic."""

    rule_id = "LK002"
    name = "lock-order-cycle"
    severity = Severity.ERROR
    description = (
        "Taking lock B while holding lock A (directly nested 'with' "
        "blocks, or a call made under A that reaches a 'with B:' through "
        "the call graph) fixes the order A->B.  If another code path "
        "fixes B->A the program can deadlock; LK002 flags every "
        "acquisition edge participating in such a cycle."
    )
    rationale = (
        "Pool, pipeline, trace, and obs locks are all crossed by one "
        "compress() call now; a static cycle between them is a deadlock "
        "waiting for the right thread interleaving.  The sanitizer "
        "reports the runtime order graph; LK002 is its compile-time "
        "gate."
    )
    good_example = (
        "# one global order: registry lock before family lock, always\n"
        "with registry._lock:\n"
        "    with family._lock:\n"
        "        ..."
    )
    bad_example = (
        "def put(self):                 # fixes order A -> B\n"
        "    with self._stats_lock:\n"
        "        with self._queue_lock: ...\n"
        "def drain(self):               # fixes order B -> A: cycle\n"
        "    with self._queue_lock:\n"
        "        with self._stats_lock: ..."
    )

    def check(self, module: SourceModule,
              index: ProjectIndex) -> Iterable[Finding]:
        if module.tree is None:
            return
        CallGraph.for_index(index)
        order = build_lock_graph(index)
        seen: set[tuple] = set()
        for edge in order.cyclic_edges():
            if edge.module is not module:
                continue
            key = (edge.first, edge.second,
                   getattr(edge.node, "lineno", 0))
            if key in seen:
                continue
            seen.add(key)
            yield self.finding(
                module, edge.node,
                f"lock-order cycle: {_short(edge.first)} is held while "
                f"{_short(edge.second)} is taken here (via {edge.via}), "
                f"but another path takes them in the opposite order",
                first=edge.first, second=edge.second)


def _short(lock_id: str) -> str:
    path, _, name = lock_id.rpartition(":")
    return f"{name} ({path.rsplit('/', 1)[-1]})" if path else name
