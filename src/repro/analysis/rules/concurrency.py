"""Concurrency rules (``TS*``): thread-safety as an enforced contract.

The paper (Section IV-B) argues the safest design *tells* callers what
is thread-safe instead of hoping.  TS002 makes that declaration
mandatory and machine-checkable; TS001 looks for the classic bug the
declaration exists to prevent — shared-state writes from callables the
parallel meta-compressors fan out across threads.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..model import Finding, Severity
from ..project import ClassInfo, ProjectIndex, SourceModule, dotted_name
from ..visitor import collect_worker_defs, function_locals, is_abstract_method
from . import Rule, register_rule

#: accepted thread_safety declarations, mirroring pressio_thread_safety
THREAD_SAFETY_VALUES = ("single", "serialized", "multithreaded")


def _inside_lock(node: ast.AST, fn: ast.FunctionDef) -> bool:
    """True when ``node`` sits under a ``with <...lock...>:`` block."""
    for candidate in ast.walk(fn):
        if not isinstance(candidate, ast.With):
            continue
        holds_lock = any(
            "lock" in (dotted_name(item.context_expr) or "").lower()
            for item in candidate.items
        )
        if holds_lock and any(sub is node for sub in ast.walk(candidate)):
            return True
    return False


@register_rule
class SharedStateWriteRule(Rule):
    """TS001: no unsynchronized shared writes in thread-mapped callables."""

    rule_id = "TS001"
    name = "unsynchronized-shared-write"
    severity = Severity.ERROR
    description = (
        "A callable handed to a thread pool (pool.submit/map, self._map, "
        "wrap_task) must not write self.* attributes, global/nonlocal "
        "names, or subscripts of closed-over objects unless the write is "
        "under a 'with ...lock...:' block."
    )
    rationale = (
        "meta/parallel.py fans these callables across worker threads; an "
        "unsynchronized write races exactly the way the pressio:thread_safe "
        "introspection exists to prevent (paper Section IV-B/IV-D)."
    )

    def check(self, module: SourceModule,
              index: ProjectIndex) -> Iterable[Finding]:
        if module.tree is None:
            return
        for owner in ast.walk(module.tree):
            if not isinstance(owner, ast.FunctionDef):
                continue
            for worker in collect_worker_defs(owner):
                yield from self._check_worker(module, worker)

    def _check_worker(self, module: SourceModule,
                      worker: ast.FunctionDef) -> Iterable[Finding]:
        locals_ = function_locals(worker)
        declared_global: set[str] = set()
        declared_nonlocal: set[str] = set()
        for node in ast.walk(worker):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Nonlocal):
                declared_nonlocal.update(node.names)

        def flag(node: ast.AST, what: str) -> Finding:
            return self.finding(
                module, node,
                f"thread-mapped callable {worker.name!r} writes {what} "
                f"without holding a lock; workers run concurrently in "
                f"the parallel meta-compressors",
            )

        for node in ast.walk(worker):
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if _inside_lock(node, worker):
                    continue
                if isinstance(target, ast.Attribute):
                    base = dotted_name(target.value) or ""
                    root = base.split(".")[0]
                    if root == "self" or (root and root not in locals_):
                        yield flag(node, f"attribute {base}.{target.attr}")
                elif isinstance(target, ast.Name):
                    if target.id in declared_global:
                        yield flag(node, f"module global {target.id!r}")
                    elif target.id in declared_nonlocal:
                        yield flag(node, f"nonlocal {target.id!r}")
                elif isinstance(target, ast.Subscript):
                    base = dotted_name(target.value) or ""
                    root = base.split(".")[0]
                    if root and root != "self" and root not in locals_:
                        yield flag(node, f"closed-over container {root!r}")


def _is_concrete_compressor(info: ClassInfo, index: ProjectIndex) -> bool:
    if info.registered_kind == "compressor":
        return True
    if info.registered_kind is not None:
        return False
    if info.name.startswith("_"):
        return False
    if not index.is_subclass_of(info, "PressioCompressor"):
        return False
    if info.name == "PressioCompressor":
        return False
    fn = info.methods.get("_compress")
    return fn is not None and not is_abstract_method(fn)


@register_rule
class ThreadSafetyDeclarationRule(Rule):
    """TS002: every compressor plugin declares ``thread_safety``."""

    rule_id = "TS002"
    name = "missing-thread-safety-declaration"
    severity = Severity.ERROR
    description = (
        "Every compressor plugin class (registered via @compressor_plugin/"
        "register_compressor, or a concrete public PressioCompressor "
        "subclass) must carry a thread_safety class attribute set to one "
        "of 'single', 'serialized', or 'multithreaded' — declared in its "
        "body or inherited from a project-resolvable base."
    )
    rationale = (
        "Mirrors pressio_thread_safety: the introspection field Table I "
        "credits LibPressio with and faults other interface libraries for "
        "lacking; the parallel meta-compressors plan worker counts from it."
    )

    def check(self, module: SourceModule,
              index: ProjectIndex) -> Iterable[Finding]:
        for info in module.classes:
            if not _is_concrete_compressor(info, index):
                continue
            chain = index.class_and_ancestors(info)
            declared = next(
                (cls for cls in chain if "thread_safety" in cls.attr_names),
                None,
            )
            if declared is None:
                yield self.finding(
                    module, info.node,
                    f"compressor plugin {info.name} does not declare a "
                    f"thread_safety class attribute (expected one of "
                    f"{', '.join(THREAD_SAFETY_VALUES)})",
                )
                continue
            value = declared.str_attrs.get("thread_safety")
            if value not in THREAD_SAFETY_VALUES:
                yield self.finding(
                    module, declared.node if declared is info else info.node,
                    f"compressor plugin {info.name} declares thread_safety "
                    f"with a non-literal or unknown value; expected one of "
                    f"{', '.join(THREAD_SAFETY_VALUES)}",
                )
