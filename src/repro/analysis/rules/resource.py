"""Resource-safety rules (``RS*``): pool-buffer lifetime discipline.

The buffer pool (PR 8) made every native core's scratch memory a shared,
recycled resource — which means a buffer leaked on an exception path is
permanently lost to the pool, a double-release hands the same backing
store to two owners, and a pooled buffer escaping a function outlives
the lifetime its acquirer reasoned about.  These rules run the
path-sensitive lifetime interpreter from
:mod:`repro.analysis.dataflow` over every function that touches the
pool and report the three failure shapes at the acquire / release /
escape site.

Sanctioned ownership transfers (allocator functions and the documented
``compress_stage1`` stage-split protocol) are modeled, not suppressed —
see the dataflow module docstring.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..dataflow import (CallGraph, analyze_buffers, allocator_keys,
                        pool_aliases)
from ..model import Finding, Severity
from ..project import ProjectIndex, SourceModule
from . import Rule, register_rule


def _module_touches_pool(module: SourceModule) -> bool:
    if module.tree is None:
        return False
    if pool_aliases(module):
        return True
    return any(source.lstrip(".").endswith(("pool.acquire", "pool.release"))
               for source in module.import_sources.values())


def _pool_functions(module: SourceModule, index: ProjectIndex):
    """FunctionInfos in this module, with the shared call graph."""
    graph = CallGraph.for_index(index)
    infos = [info for info in graph.functions.values()
             if info.module is module]
    return graph, sorted(infos, key=lambda i: i.node.lineno)


class _BufferRule(Rule):
    """Shared driver: run the interpreter once per pool-touching fn."""

    def check(self, module: SourceModule,
              index: ProjectIndex) -> Iterable[Finding]:
        if not _module_touches_pool(module):
            return
        graph, infos = _pool_functions(module, index)
        allocators = allocator_keys(graph)
        for info in infos:
            if info.key in allocators:
                continue  # transfers ownership by construction
            events = analyze_buffers(info, graph)
            yield from self._report(module, info, events)

    def _report(self, module, info, events) -> Iterable[Finding]:
        raise NotImplementedError


_LEAK_MESSAGES = {
    "exception": ("pool buffer {name!r} acquired in {fn}() is not released "
                  "when a later statement raises; wrap the span in "
                  "try/finally with pool.release"),
    "return": ("pool buffer {name!r} acquired in {fn}() is not released on "
               "an early-return path; release it in a finally block"),
    "end": ("pool buffer {name!r} acquired in {fn}() is never released "
            "before the function ends; the buffer is lost to the pool"),
    "rebind": ("pool buffer {name!r} in {fn}() is rebound before release; "
               "the original buffer leaks"),
}


@register_rule
class ReleaseMissedRule(_BufferRule):
    """RS001: every acquire is released on every exit path."""

    rule_id = "RS001"
    name = "pool-release-missed"
    severity = Severity.ERROR
    description = (
        "A pool.acquire() result must be released on every exit path out "
        "of the acquiring function — normal returns, early returns, and "
        "exception edges — unless ownership transfers via an allocator "
        "return or the documented compress_stage1 protocol.  Use "
        "try/finally around any span that can raise."
    )
    rationale = (
        "The thread-local pool only recycles what comes back: a buffer "
        "leaked on an exception path degrades every later compression on "
        "that thread back to cold allocation, silently undoing the PR-8 "
        "hot-path win the paper's performance claims rest on."
    )
    good_example = (
        "buf = _pool.acquire(n, np.uint8)\n"
        "try:\n"
        "    encode_into(data, out=buf)  # may raise\n"
        "finally:\n"
        "    _pool.release(buf)"
    )
    bad_example = (
        "buf = _pool.acquire(n, np.uint8)\n"
        "encode_into(data, out=buf)  # raises -> buf is lost to the pool\n"
        "_pool.release(buf)"
    )

    def _report(self, module, info, events) -> Iterable[Finding]:
        for name, kind, node in events.leaks:
            message = _LEAK_MESSAGES[kind].format(name=name, fn=info.name)
            yield self.finding(module, node, message, kind=kind)


@register_rule
class DoubleReleaseRule(_BufferRule):
    """RS002: no buffer is released twice on one path."""

    rule_id = "RS002"
    name = "pool-double-release"
    severity = Severity.ERROR
    description = (
        "A pool buffer must be released exactly once: a second "
        "pool.release() of the same name on one control-flow path puts "
        "the same backing store on the free list twice, so two later "
        "acquires alias one buffer."
    )
    rationale = (
        "Aliased pool buffers corrupt compressed streams non-locally — "
        "the write that trashes the data happens in a different plugin "
        "than the one that double-released.  The runtime sanitizer "
        "catches this dynamically; RS002 catches it before it runs."
    )
    good_example = (
        "buf = _pool.acquire(n, np.uint8)\n"
        "try:\n"
        "    work(buf)\n"
        "finally:\n"
        "    _pool.release(buf)"
    )
    bad_example = (
        "buf = _pool.acquire(n, np.uint8)\n"
        "_pool.release(buf)\n"
        "_pool.release(buf)  # free list now holds buf twice"
    )

    def _report(self, module, info, events) -> Iterable[Finding]:
        for name, node in events.double_releases:
            yield self.finding(
                module, node,
                f"pool buffer {name!r} is released a second time in "
                f"{info.name}(); the backing store would sit on the free "
                f"list twice and alias a later acquire")


@register_rule
class BufferEscapeRule(_BufferRule):
    """RS003: pooled buffers do not escape their acquiring function."""

    rule_id = "RS003"
    name = "pool-buffer-escape"
    severity = Severity.WARNING
    description = (
        "A pooled buffer must not escape the acquiring function via a "
        "return value or an attribute store, except through an allocator "
        "function (every return built from acquires) or the documented "
        "compress_stage1 ownership hand-off ('pool-ownership: caller' in "
        "the docstring).  Escaped buffers outlive the lifetime the "
        "acquirer reasoned about."
    )
    rationale = (
        "The pool's contract is scoped ownership: once a pooled view is "
        "stored on an object or returned ad hoc, a later release "
        "elsewhere poisons memory the holder still reads — the "
        "use-after-release class the sanitizer exists to catch."
    )
    good_example = (
        "def _lift_temps(shape):\n"
        "    # allocator: every return is built from acquires, callers\n"
        "    # inherit the release obligation via the call graph\n"
        "    return [_pool.acquire(shape, np.int64) for _ in range(5)]"
    )
    bad_example = (
        "def make_scratch(self, n):\n"
        "    buf = _pool.acquire(n, np.uint8)\n"
        "    self._scratch = buf  # escapes: lifetime now unbounded\n"
        "    return buf           # and returned outside any protocol"
    )

    def _report(self, module, info, events) -> Iterable[Finding]:
        for name, kind, node in events.escapes:
            how = ("returned from" if kind == "return"
                   else "stored on an attribute in")
            yield self.finding(
                module, node,
                f"pooled buffer {name!r} is {how} {info.name}() outside "
                f"the allocator/stage-split ownership protocols",
                kind=kind)
