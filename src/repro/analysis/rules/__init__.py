"""Rule base class and registry with per-rule enable/disable.

A rule is a small object with identity (``rule_id``), metadata used by
the SARIF exporter and the rule catalog, and a :meth:`Rule.check` that
yields :class:`~repro.analysis.model.Finding` objects for one module.
Registration happens at import time via :func:`register_rule`, the same
extension pattern the plugin registries use — third-party rule packs
can register without modifying this package.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Type

from ..model import Finding, Severity
from ..project import ProjectIndex, SourceModule

__all__ = ["Rule", "register_rule", "all_rules", "get_rule",
           "resolve_selection"]

_RULES: dict[str, "Rule"] = {}


class Rule:
    """Base class for lint rules."""

    rule_id: str = "XX000"
    name: str = "unnamed"
    severity: Severity = Severity.ERROR
    description: str = ""
    #: which paper claim / Section V pitfall the rule guards
    rationale: str = ""

    def check(self, module: SourceModule,
              index: ProjectIndex) -> Iterable[Finding]:
        raise NotImplementedError

    # -- helpers ----------------------------------------------------------
    def finding(self, module: SourceModule, node, message: str,
                **extra) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
            path=module.rel,
            line=line,
            col=getattr(node, "col_offset", 0),
            snippet=module.line(line).strip(),
            extra=extra,
        )


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule instance to the registry."""
    instance = cls()
    if instance.rule_id in _RULES:
        raise ValueError(f"duplicate rule id {instance.rule_id!r}")
    _RULES[instance.rule_id] = instance
    return cls


def _load_packs() -> None:
    from . import (concurrency, contract, hotpath, locks,  # noqa: F401
                   observability, resource)


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id."""
    _load_packs()
    return [_RULES[k] for k in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule | None:
    _load_packs()
    return _RULES.get(rule_id)


def resolve_selection(enable: Iterable[str] | None,
                      disable: Iterable[str] | None) -> list[Rule]:
    """Apply --enable/--disable id selections to the registry.

    ``enable`` (when non-empty) restricts the run to exactly those ids;
    ``disable`` removes ids from whatever is selected.  Unknown ids
    raise ValueError so typos fail loudly rather than silently passing.
    """
    rules = all_rules()
    known = {r.rule_id for r in rules}
    for rid in list(enable or []) + list(disable or []):
        if rid not in known:
            raise ValueError(
                f"unknown rule id {rid!r}; known: {', '.join(sorted(known))}"
            )
    selected = rules
    if enable:
        wanted = set(enable)
        selected = [r for r in selected if r.rule_id in wanted]
    if disable:
        dropped = set(disable)
        selected = [r for r in selected if r.rule_id not in dropped]
    return selected


def iter_rule_docs() -> Iterator[dict]:
    """Metadata rows for --list-rules and the SARIF tool descriptor."""
    for rule in all_rules():
        yield {
            "id": rule.rule_id,
            "name": rule.name,
            "severity": rule.severity.name.lower(),
            "description": rule.description,
            "rationale": rule.rationale,
        }
