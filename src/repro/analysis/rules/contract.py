"""Contract rules (``PC*``): the uniform plugin contract, statically.

These enforce the Table I criteria the paper credits LibPressio with —
introspectable options, uniform error handling — plus the Section V
pitfall of calling a native with unvalidated dtype/dims.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..model import Finding, Severity
from ..project import ClassInfo, ProjectIndex, SourceModule
from ..visitor import (DOC_METHODS, OPTION_DECL_METHODS, OPTION_READ_METHODS,
                       OptionKey, extract_declared_keys, extract_doc_keys,
                       extract_read_keys, handler_is_silent,
                       handler_routes_errors, has_dtype_validation,
                       is_native_call, iter_broad_handlers, keys_match)
from . import Rule, register_rule


def _declared_union(info: ClassInfo, index: ProjectIndex) -> list[OptionKey]:
    """Option keys advertised by the class or any resolvable ancestor."""
    declared: list[OptionKey] = []
    for cls in index.class_and_ancestors(info):
        for method_name in OPTION_DECL_METHODS:
            fn = cls.methods.get(method_name)
            if fn is not None:
                declared.extend(extract_declared_keys(fn))
    return declared


def _is_plugin_class(info: ClassInfo, index: ProjectIndex) -> bool:
    if info.registered_kind is not None:
        return True
    for root in ("PressioCompressor", "PressioMetrics", "PressioIO",
                 "MetaCompressor", "Configurable"):
        if info.name != root and index.is_subclass_of(info, root):
            return True
    return False


@register_rule
class OptionSymmetryRule(Rule):
    """PC001: every option key a plugin consumes must be advertised."""

    rule_id = "PC001"
    name = "option-symmetry"
    severity = Severity.ERROR
    description = (
        "Option keys read in _set_options/_check_options must be declared "
        "in _options (set or set_type), so get_options introspection covers "
        "every accepted key."
    )
    rationale = (
        "Table I: option introspection.  A key that set_options honors but "
        "get_options hides is invisible to tools, the CLI, and opt searches."
    )

    def check(self, module: SourceModule,
              index: ProjectIndex) -> Iterable[Finding]:
        for info in module.classes:
            if not _is_plugin_class(info, index):
                continue
            declared = _declared_union(info, index)
            for method_name in OPTION_READ_METHODS:
                fn = info.methods.get(method_name)
                if fn is None:
                    continue
                seen: set[str] = set()
                for key in extract_read_keys(fn):
                    if key.display() in seen:
                        continue
                    seen.add(key.display())
                    if not keys_match(key, declared):
                        yield self.finding(
                            module, key.node,
                            f"{info.name}.{method_name} reads option "
                            f"{key.display()!r} that no _options method "
                            f"of the class or its bases advertises",
                        )


@register_rule
class DocumentedKeysRule(Rule):
    """PC002: documented option keys must exist."""

    rule_id = "PC002"
    name = "docs-option-drift"
    severity = Severity.WARNING
    description = (
        "Keys documented in _documentation (other than pressio:description) "
        "must be advertised by _options; stale docs mislead every consumer "
        "of get_documentation."
    )
    rationale = (
        "Table I: introspectable documentation is only useful while it "
        "matches the real option set; drift is silent otherwise."
    )

    def check(self, module: SourceModule,
              index: ProjectIndex) -> Iterable[Finding]:
        for info in module.classes:
            if not _is_plugin_class(info, index):
                continue
            declared = _declared_union(info, index)
            if not declared:
                continue
            for method_name in DOC_METHODS:
                fn = info.methods.get(method_name)
                if fn is None:
                    continue
                for key in extract_doc_keys(fn):
                    if not keys_match(key, declared):
                        yield self.finding(
                            module, key.node,
                            f"{info.name}._documentation documents "
                            f"{key.display()!r} but no _options method of "
                            f"the class or its bases advertises it",
                        )


@register_rule
class NativeValidationRule(Rule):
    """PC003: validate dtype/dims before entering native code."""

    rule_id = "PC003"
    name = "unvalidated-native-call"
    severity = Severity.ERROR
    description = (
        "_compress bodies that call into repro.native must carry an explicit "
        "dtype/dims validation (an if-test over .dtype/.dims/.shape or a "
        "*validate* helper) so bad inputs fail with a taxonomy-coded error "
        "instead of an arbitrary exception deep in the native."
    )
    rationale = (
        "Paper Section V: MGARD erroring on <3 samples per dimension and "
        "ZFP block padding are contract violations callers hit at runtime "
        "when plugins skip early validation."
    )

    def check(self, module: SourceModule,
              index: ProjectIndex) -> Iterable[Finding]:
        for info in module.classes:
            fn = info.methods.get("_compress")
            if fn is None:
                continue
            native_calls = [node for node in ast.walk(fn)
                            if isinstance(node, ast.Call)
                            and is_native_call(node, module)]
            if not native_calls:
                continue
            if has_dtype_validation(fn):
                continue
            yield self.finding(
                module, native_calls[0],
                f"{info.name}._compress calls into repro.native without a "
                f"visible dtype/dims validation; reject unsupported inputs "
                f"with a typed PressioError before the native call",
            )


@register_rule
class BareExceptTaxonomyRule(Rule):
    """PC004: broad handlers must route through status/taxonomy."""

    rule_id = "PC004"
    name = "untracked-broad-except"
    severity = Severity.ERROR
    description = (
        "An except arm catching Exception/BaseException (or bare) must "
        "re-raise, capture to a C-style status (status.set_from), or bump "
        "the error-taxonomy counters (record_error/count); silent pass "
        "bodies are always flagged."
    )
    rationale = (
        "Table I: uniform error handling.  A swallowed exception neither "
        "reaches error_code/error_msg nor the pressio_errors_total taxonomy, "
        "so failures disappear from both the C-style API and monitoring."
    )

    def check(self, module: SourceModule,
              index: ProjectIndex) -> Iterable[Finding]:
        if module.tree is None:
            return
        for handler in iter_broad_handlers(module.tree):
            if handler_is_silent(handler):
                yield self.finding(
                    module, handler,
                    "broad except arm silently swallows the exception; "
                    "record it via status.set_from or an error-taxonomy "
                    "counter (repro.obs.runtime.record_error/count)",
                )
            elif not handler_routes_errors(handler):
                yield self.finding(
                    module, handler,
                    "broad except arm neither re-raises, captures status "
                    "(status.set_from), nor records an error-taxonomy "
                    "counter (record_error/count)",
                )
