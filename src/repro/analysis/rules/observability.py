"""Observability rules (``OB*``): traces must survive process hops.

PR 8's cross-process propagation only produces one stitched tree when
*every* place that leaves the process carries the trace context along.
A new subprocess call that forgets :func:`repro.trace.propagate.child_env`
silently truncates the tree — no error, just a hole where the child's
time went.  OB001 turns that silent hole into a lint finding.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..model import Finding, Severity
from ..project import ProjectIndex, SourceModule, dotted_name
from . import Rule, register_rule

#: call names that start (or hand work to) another OS process
_SPAWN_CALLS = {
    "subprocess.run", "subprocess.Popen", "subprocess.call",
    "subprocess.check_call", "subprocess.check_output",
    "os.fork", "os.spawnv", "os.spawnvp", "os.posix_spawn",
    "os.system", "os.popen",
    "multiprocessing.Process", "multiprocessing.Pool",
}
#: bare constructor names commonly imported directly
_SPAWN_BARE = {"ProcessPoolExecutor", "Popen", "posix_spawn"}

#: names whose presence in the same function shows the call site
#: participates in the pressio-spanwire protocol (either direction)
_PROPAGATION_MARKERS = {
    "child_env", "serialize_context", "extract", "begin_child",
    "end_child", "collect_fragments", "dump_fragments", "stitch",
}


def _call_name(node: ast.Call) -> str | None:
    name = dotted_name(node.func)
    if name is None:
        return None
    # normalize aliased module paths: keep the last two components so
    # `sp.Popen` and `subprocess.Popen` both resolve
    parts = name.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else name


def _is_spawn_call(node: ast.Call) -> bool:
    name = _call_name(node)
    if name is None:
        return False
    if name in _SPAWN_CALLS:
        return True
    tail = name.rsplit(".", 1)[-1]
    return tail in _SPAWN_BARE


def _has_propagation_marker(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and \
                node.attr in _PROPAGATION_MARKERS:
            return True
        if isinstance(node, ast.Name) and node.id in _PROPAGATION_MARKERS:
            return True
    return False


@register_rule
class TracePropagationRule(Rule):
    """OB001: process-spawning call sites must propagate trace context."""

    rule_id = "OB001"
    name = "missing-trace-propagation"
    severity = Severity.WARNING
    description = (
        "A function that spawns another process (subprocess.run/Popen, "
        "os.fork, ProcessPoolExecutor, multiprocessing.Process, ...) "
        "must use the repro.trace.propagate protocol in the same "
        "function body — child_env()/serialize_context() on the parent "
        "side, extract()/begin_child() on the child side — or carry an "
        "inline '# pressio-lint: disable=OB001' with a reason."
    )
    rationale = (
        "cross-process stitching (pressio-spanwire/1) only yields one "
        "tree when every process hop forwards the context; a forgotten "
        "hop truncates traces silently, which is exactly the failure "
        "mode end-to-end observability exists to rule out."
    )

    def check(self, module: SourceModule,
              index: ProjectIndex) -> Iterable[Finding]:
        if module.tree is None:
            return
        # walk top-level and nested functions; a spawn at module level
        # is checked against the whole module body
        for scope in ast.walk(module.tree):
            if not isinstance(scope, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                continue
            spawns = [node for node in ast.walk(scope)
                      if isinstance(node, ast.Call)
                      and _is_spawn_call(node)]
            if not spawns:
                continue
            if _has_propagation_marker(scope):
                continue
            for node in spawns:
                yield self.finding(
                    module, node,
                    f"{scope.name!r} spawns a process via "
                    f"{_call_name(node) or 'a spawn call'} without trace "
                    f"propagation; pass propagate.child_env() (parent) "
                    f"or call propagate.extract()/begin_child() (child), "
                    f"or suppress with a reasoned "
                    f"'# pressio-lint: disable=OB001'",
                )
