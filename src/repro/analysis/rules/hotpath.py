"""Hot-path rules (``HP*``): the <1% disabled-observability pin.

``tests/trace/test_overhead.py`` *samples* the claim that a disabled
observer costs one module-global read; these rules *prove* the
syntactic form that makes it true, so a stray logging or tracing call
slipped into an operation body fails CI instead of a timing test that
may or may not notice it under scheduler noise.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..model import Finding, Severity
from ..project import ProjectIndex, SourceModule, dotted_name
from ..visitor import GuardedCallVisitor, classify_observability_call
from . import Rule, register_rule

_OP_METHODS = ("_compress", "_decompress")


@register_rule
class UnguardedObservabilityRule(Rule):
    """HP001: observability calls in op bodies need a sentinel guard."""

    rule_id = "HP001"
    name = "unguarded-observability"
    severity = Severity.ERROR
    description = (
        "Inside _compress/_decompress bodies, calls into the tracer, the "
        "metrics registry, loggers/print, or plugin registries must sit "
        "inside an if whose test reads repro._hot.ANY or a runtime ACTIVE "
        "sentinel (or inside an except arm — the cold error path)."
    )
    rationale = (
        "Paper Fig. 3 / ROADMAP <1% overhead pin: unguarded observability "
        "in an operation body costs attribute lookups and calls on every "
        "operation even when nothing is watching."
    )

    def check(self, module: SourceModule,
              index: ProjectIndex) -> Iterable[Finding]:
        for info in module.classes:
            for method_name in _OP_METHODS:
                fn = info.methods.get(method_name)
                if fn is None:
                    continue
                visitor = GuardedCallVisitor().visit(fn)
                for call, guarded in visitor.calls:
                    if guarded:
                        continue
                    label = classify_observability_call(call, module)
                    if label is None:
                        continue
                    target = dotted_name(call.func) or "<call>"
                    yield self.finding(
                        module, call,
                        f"{info.name}.{method_name} performs an unguarded "
                        f"{label} call ({target}); guard it with "
                        f"'if _hot.ANY:' / 'if _trace.ACTIVE is not None:' "
                        f"so the disabled path stays call-free",
                    )


_HOT_FN_NAMES = ("compress", "decompress")
_HOT_FN_PREFIXES = ("_compress", "_decompress", "_encode", "_decode")


def _is_hot_function(name: str) -> bool:
    """Module-level names that sit on the per-operation hot path.

    The native cores expose ``compress``/``decompress`` plus stage
    helpers like ``_encode_codes``; the prefix match requires a word
    boundary so ``_compressor_producer`` and friends stay out of scope.
    """
    if name in _HOT_FN_NAMES:
        return True
    return any(name == p or name.startswith(p + "_")
               for p in _HOT_FN_PREFIXES)


@register_rule
class UnguardedHotFunctionRule(Rule):
    """HP003: profiler hooks in native hot functions need sentinel guards."""

    rule_id = "HP003"
    name = "unguarded-hot-function-hook"
    severity = Severity.ERROR
    description = (
        "Module-level hot functions (compress/decompress and "
        "_compress*/_decompress*/_encode*/_decode* helpers) may only call "
        "into the tracer, profiler, metrics registry, or loggers from "
        "inside an if whose test reads a hot-path sentinel "
        "(repro._hot.ANY or a runtime ACTIVE) or an except arm."
    )
    rationale = (
        "Stage profiling hooks live inside the native cores, below the "
        "plugin wrappers HP002 already pins; an unguarded hook there "
        "runs on every operation — watched or not — and erodes the "
        "<1% disabled-observability budget from the inside."
    )

    def check(self, module: SourceModule,
              index: ProjectIndex) -> Iterable[Finding]:
        if module.tree is None:
            return
        for node in module.tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            if not _is_hot_function(node.name):
                continue
            visitor = GuardedCallVisitor().visit(node)
            for call, guarded in visitor.calls:
                if guarded:
                    continue
                label = classify_observability_call(call, module)
                if label is None:
                    continue
                target = dotted_name(call.func) or "<call>"
                yield self.finding(
                    module, call,
                    f"hot function {node.name} performs an unguarded "
                    f"{label} call ({target}); guard it with "
                    f"'if _trace.ACTIVE is not None:' (statement form) so "
                    f"the disabled path stays call-free",
                )


def _range_iterates_elements(call: ast.Call) -> str | None:
    """For a ``range(...)`` call, the data-sized argument it loops over.

    Returns the source-ish spelling of the first argument that scales
    with array contents — an ``<expr>.size`` / ``<expr>.shape[...]``
    attribute or a ``len(<expr>)`` call — or None when the trip count is
    structural (``range(ndim)``, ``range(8)``, ...).
    """
    for arg in call.args:
        node = arg
        # unwrap arithmetic like range(n.size - 1) or len(x) // 2
        while isinstance(node, ast.BinOp):
            node = node.left
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute) and node.attr in ("size",
                                                            "shape"):
            base = dotted_name(node.value) or "<expr>"
            return f"{base}.{node.attr}"
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "len" and node.args):
            base = dotted_name(node.args[0]) or "<expr>"
            return f"len({base})"
    return None


@register_rule
class PerElementLoopRule(Rule):
    """HP004: no per-element Python loops inside hot functions."""

    rule_id = "HP004"
    name = "per-element-python-loop"
    severity = Severity.WARNING
    description = (
        "Module-level hot functions (compress/decompress and "
        "_compress*/_decompress*/_encode*/_decode* helpers) must not "
        "contain 'for ... in range(<data size>)' loops — range() over an "
        "array's .size/.shape or len() of a buffer iterates Python "
        "bytecode once per element; vectorize with numpy instead."
    )
    rationale = (
        "The throughput work trades per-element interpretation for "
        "whole-array numpy kernels; a scalar loop reintroduced into a "
        "hot function undoes that silently — it is correct, just 100x "
        "slower, so only a benchmark would notice.  Intentionally scalar "
        "code (the encoders' audit references) is suppressed via the "
        "lint baseline, never by renaming."
    )

    def check(self, module: SourceModule,
              index: ProjectIndex) -> Iterable[Finding]:
        if module.tree is None:
            return
        for node in module.tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            if not _is_hot_function(node.name):
                continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.For):
                    continue
                it = inner.iter
                if not (isinstance(it, ast.Call)
                        and isinstance(it.func, ast.Name)
                        and it.func.id == "range"):
                    continue
                sized = _range_iterates_elements(it)
                if sized is None:
                    continue
                yield self.finding(
                    module, inner,
                    f"hot function {node.name} loops element-by-element "
                    f"(for ... in range({sized})); hoist this into a "
                    f"vectorized numpy expression, or baseline it if the "
                    f"scalar form is the point (reference/audit code)",
                )


def _is_hot_guard_stmt(stmt: ast.stmt, op_attr: str) -> bool:
    """Match ``if not <...>.ANY: return self._compress_op(...)``."""
    if not isinstance(stmt, ast.If) or stmt.orelse:
        return False
    test = stmt.test
    if not (isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)):
        return False
    sentinel = dotted_name(test.operand) or ""
    if sentinel.split(".")[-1] != "ANY":
        return False
    if len(stmt.body) != 1 or not isinstance(stmt.body[0], ast.Return):
        return False
    value = stmt.body[0].value
    if not isinstance(value, ast.Call):
        return False
    return (dotted_name(value.func) or "").split(".")[-1] == op_attr


@register_rule
class HotWrapperGuardRule(Rule):
    """HP002: public wrappers must open with the single-read fast path."""

    rule_id = "HP002"
    name = "hot-wrapper-guard"
    severity = Severity.ERROR
    description = (
        "In a class that defines _compress_op/_decompress_op, the public "
        "compress/decompress wrappers must begin with "
        "'if not _hot.ANY: return self._compress_op(...)' so the disabled "
        "path performs exactly one module-global read before the body."
    )
    rationale = (
        "This is the statically checkable form of the overhead claim: "
        "any statement before that guard executes on every call, watched "
        "or not, and silently erodes the <1% pin."
    )

    def check(self, module: SourceModule,
              index: ProjectIndex) -> Iterable[Finding]:
        for info in module.classes:
            for public, op_attr in (("compress", "_compress_op"),
                                    ("decompress", "_decompress_op")):
                if op_attr not in info.methods:
                    continue
                fn = info.methods.get(public)
                if fn is None:
                    continue
                body = [stmt for stmt in fn.body
                        if not (isinstance(stmt, ast.Expr)
                                and isinstance(stmt.value, ast.Constant))]
                if body and _is_hot_guard_stmt(body[0], op_attr):
                    continue
                yield self.finding(
                    module, body[0] if body else fn,
                    f"{info.name}.{public} must start with the hot-path "
                    f"fast path 'if not _hot.ANY: return "
                    f"self.{op_attr}(...)'; anything before it runs on "
                    f"every call even with observability disabled",
                )
