"""Baseline suppression: adopt the linter without fixing history first.

A baseline file records fingerprints of known findings; subsequent runs
subtract them, so CI can gate on *new* violations while existing ones
are burned down.  Fingerprints hash (rule, path, source-line text) —
not line numbers — so edits elsewhere in a file do not invalidate
entries (see :meth:`repro.analysis.model.Finding.fingerprint`).
"""

from __future__ import annotations

import json
import os

from .model import Finding

__all__ = ["load_baseline", "write_baseline", "apply_baseline",
           "BaselineError"]

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


def load_baseline(path: str) -> set[str]:
    """Fingerprints from ``path``; empty set when the file is absent."""
    if not os.path.exists(path):
        return set()
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        raise BaselineError(f"unreadable baseline {path}: {e}") from e
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} has unsupported format "
            f"(expected version {BASELINE_VERSION})"
        )
    entries = doc.get("suppressions", [])
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path}: 'suppressions' must be a list")
    fingerprints: set[str] = set()
    for entry in entries:
        fp = entry.get("fingerprint") if isinstance(entry, dict) else None
        if not isinstance(fp, str):
            raise BaselineError(
                f"baseline {path}: every suppression needs a fingerprint"
            )
        fingerprints.add(fp)
    return fingerprints


def write_baseline(path: str, findings: list[Finding]) -> int:
    """Write all ``findings`` as suppressions; returns the entry count."""
    doc = {
        "version": BASELINE_VERSION,
        "suppressions": [
            {
                "rule": f.rule_id,
                "path": f.path.replace("\\", "/"),
                "fingerprint": f.fingerprint(),
                "message": f.message,
            }
            for f in sorted(findings,
                            key=lambda f: (f.path, f.line, f.rule_id))
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return len(doc["suppressions"])


def apply_baseline(findings: list[Finding],
                   fingerprints: set[str]) -> tuple[list[Finding], int]:
    """Split findings into (kept, suppressed_count) against a baseline."""
    kept = [f for f in findings if f.fingerprint() not in fingerprints]
    return kept, len(findings) - len(kept)
