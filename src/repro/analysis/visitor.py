"""Shared AST inspection helpers used by the rule packs.

Everything here is heuristic in the way useful static analysis is:
option keys are recognized when written as literals (or prefix
f-strings), guards are recognized by the sentinel names the runtime
exposes (``repro._hot.ANY``, ``ACTIVE``), and call classification
resolves receivers through each module's import aliases.  The rules
document these boundaries; dynamic constructs simply fall outside the
checked contract.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .project import SourceModule, dotted_name

__all__ = [
    "OPTION_DECL_METHODS", "OPTION_READ_METHODS", "DOC_METHODS",
    "OptionKey", "extract_declared_keys", "extract_read_keys",
    "extract_doc_keys", "keys_match", "iter_broad_handlers",
    "handler_is_silent", "handler_routes_errors", "is_abstract_method",
    "GuardedCallVisitor", "classify_observability_call", "is_native_call",
    "has_dtype_validation", "collect_worker_defs", "function_locals",
]

OPTION_DECL_METHODS = ("_options", "_meta_options")
OPTION_READ_METHODS = ("_set_options", "_set_meta_options", "_check_options")
DOC_METHODS = ("_documentation",)


class OptionKey:
    """A literal option key, or a prefix-wildcard from an f-string.

    ``f"{self.prefix()}:nthreads"`` is represented as the wildcard
    suffix ``":nthreads"`` so declaration and read sides written with
    dynamic prefixes still pair up.
    """

    __slots__ = ("kind", "text", "node")

    def __init__(self, kind: str, text: str, node: ast.AST):
        self.kind = kind  # "lit" | "wild"
        self.text = text
        self.node = node

    def display(self) -> str:
        return self.text if self.kind == "lit" else f"<prefix>{self.text}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OptionKey({self.kind}, {self.text!r})"


def _key_from_node(node: ast.AST) -> OptionKey | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if ":" in node.value:
            return OptionKey("lit", node.value, node)
        return None
    if isinstance(node, ast.JoinedStr):
        has_dynamic = any(isinstance(v, ast.FormattedValue)
                          for v in node.values)
        tail = node.values[-1] if node.values else None
        if (has_dynamic and isinstance(tail, ast.Constant)
                and isinstance(tail.value, str) and ":" in tail.value):
            return OptionKey("wild", tail.value[tail.value.index(":"):], node)
    return None


def extract_declared_keys(fn: ast.FunctionDef) -> list[OptionKey]:
    """Keys advertised via ``opts.set(...)`` / ``opts.set_type(...)``."""
    out: list[OptionKey] = []
    for node in ast.walk(fn):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("set", "set_type") and node.args):
            key = _key_from_node(node.args[0])
            if key is not None:
                out.append(key)
    return out


def extract_read_keys(fn: ast.FunctionDef) -> list[OptionKey]:
    """Keys consumed from the incoming options object.

    Recognized shapes: ``self._take(options, KEY, ...)``,
    ``options.get(KEY[, default])``, ``options.get_as(KEY, ...)``, and
    ``KEY in options`` membership tests.
    """
    out: list[OptionKey] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr == "_take" and len(node.args) >= 2:
                key = _key_from_node(node.args[1])
                if key is not None:
                    out.append(key)
            elif (attr in ("get", "get_as", "get_option") and node.args
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "options"):
                key = _key_from_node(node.args[0])
                if key is not None:
                    out.append(key)
        elif isinstance(node, ast.Compare):
            if (len(node.ops) == 1 and isinstance(node.ops[0], ast.In)
                    and isinstance(node.comparators[0], ast.Name)
                    and node.comparators[0].id == "options"):
                key = _key_from_node(node.left)
                if key is not None:
                    out.append(key)
    return out


def extract_doc_keys(fn: ast.FunctionDef) -> list[OptionKey]:
    """Keys documented via ``docs.set(KEY, text)``."""
    return [k for k in extract_declared_keys(fn)
            if k.text not in ("pressio:description",)]


def keys_match(read: OptionKey, declared: list[OptionKey]) -> bool:
    for decl in declared:
        if decl.kind == "lit" and read.kind == "lit":
            if decl.text == read.text:
                return True
        elif decl.kind == "wild" and read.kind == "wild":
            if decl.text == read.text:
                return True
        elif decl.kind == "wild" and read.kind == "lit":
            if read.text.endswith(decl.text):
                return True
        elif decl.kind == "lit" and read.kind == "wild":
            if decl.text.endswith(read.text):
                return True
    return False


# ---------------------------------------------------------------------------
# exception handlers
# ---------------------------------------------------------------------------

_BROAD = ("Exception", "BaseException")


def iter_broad_handlers(tree: ast.AST) -> Iterator[ast.ExceptHandler]:
    """Handlers catching bare ``except:``, Exception, or BaseException."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Try):
            continue
        for handler in node.handlers:
            if handler.type is None:
                yield handler
                continue
            types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
                     else [handler.type])
            for t in types:
                if (dotted_name(t) or "").split(".")[-1] in _BROAD:
                    yield handler
                    break


def handler_is_silent(handler: ast.ExceptHandler) -> bool:
    """True when the body does nothing observable (pass / ``...``)."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)):
            continue
        return False
    return True


_TAXONOMY_CALLS = ("record_error", "count")


def handler_routes_errors(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises, captures status, or counts.

    The accepted routes are exactly the C-style contract: a bare or
    typed ``raise``, a ``*.status.set_from(exc)`` capture, or a
    taxonomy counter bump (``record_error`` / ``count`` from
    :mod:`repro.obs.runtime`).
    """
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    for node in ast.walk(handler):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func) or ""
        last = name.split(".")[-1]
        if last == "set_from" and ".status." in f".{name}":
            return True
        if last in _TAXONOMY_CALLS:
            return True
    return False


def is_abstract_method(fn: ast.FunctionDef) -> bool:
    """True for ``raise NotImplementedError`` / ellipsis-only bodies."""
    body = [stmt for stmt in fn.body
            if not (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant))]
    if not body:
        return True
    if len(body) == 1 and isinstance(body[0], ast.Raise):
        exc = body[0].exc
        name = (dotted_name(exc) or "").split(".")[-1]
        return name == "NotImplementedError"
    if len(body) == 1 and isinstance(body[0], ast.Pass):
        return True
    return False


# ---------------------------------------------------------------------------
# hot-path guard tracking
# ---------------------------------------------------------------------------

_GUARD_TAILS = ("ANY", "ACTIVE")


def _test_is_guard(test: ast.AST) -> bool:
    """True when an ``if`` test reads a hot-path sentinel.

    Recognized: ``_hot.ANY``, ``_trace.ACTIVE``, ``ACTIVE``, and any
    dotted chain ending in one of those (including negated and
    ``is (not) None`` comparison forms — the walk sees the leaf reads).
    """
    for node in ast.walk(test):
        name = dotted_name(node)
        if name and name.split(".")[-1] in _GUARD_TAILS:
            return True
    return False


class GuardedCallVisitor:
    """Collect calls in a function body with their guardedness.

    A call is *guarded* when it executes only while observability is
    enabled: syntactically inside the body of an ``if`` whose test reads
    a sentinel (``_hot.ANY`` / ``ACTIVE``), or inside an ``except``
    handler (the cold error path).
    """

    def __init__(self) -> None:
        self.calls: list[tuple[ast.Call, bool]] = []

    def visit(self, fn: ast.FunctionDef) -> "GuardedCallVisitor":
        for stmt in fn.body:
            self._visit(stmt, guarded=False)
        return self

    def _visit(self, node: ast.AST, guarded: bool) -> None:
        if isinstance(node, ast.Call):
            self.calls.append((node, guarded))
        if isinstance(node, ast.If) and _test_is_guard(node.test):
            self._visit(node.test, guarded)
            for child in node.body:
                self._visit(child, True)
            for child in node.orelse:
                self._visit(child, guarded)
            return
        if isinstance(node, ast.ExceptHandler):
            for child in ast.iter_child_nodes(node):
                self._visit(child, True)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, guarded)


_LOG_METHODS = ("debug", "info", "warning", "error", "critical",
                "exception", "log")


def classify_observability_call(call: ast.Call,
                                module: SourceModule) -> str | None:
    """Name the observability subsystem a call enters, if any.

    Returns "trace", "profile", "metrics", "logging", or "registry" —
    or None for ordinary calls.  Receivers are resolved through the
    module's import aliases, so both ``from ..trace import runtime as
    _trace`` and direct ``from ..trace.runtime import annotate`` forms
    classify.
    """
    name = dotted_name(call.func) or ""
    if not name:
        return None
    parts = name.split(".")
    root, last = parts[0], parts[-1]
    source = module.alias_source(root)
    if "profile" in source or root == "_profile":
        return "profile"
    if "trace" in source or root == "_trace":
        return "trace"
    if "obs" in source.split(".") or root == "_obs":
        return "metrics"
    if (root == "logging" or name == "print" or last == "get_logger"
            or (root in module.logger_names and (len(parts) == 1
                                                 or last in _LOG_METHODS))):
        return "logging"
    if last == "create" and len(parts) >= 2:
        recv = parts[-2]
        recv_source = module.alias_source(parts[0])
        if "registry" in recv or "registry" in recv_source:
            return "registry"
    return None


def is_native_call(call: ast.Call, module: SourceModule) -> bool:
    """True when the call resolves into :mod:`repro.native`."""
    name = dotted_name(call.func) or ""
    if not name:
        return False
    root = name.split(".")[0]
    source = module.alias_source(root)
    return "native" in source.split(".")


def has_dtype_validation(fn: ast.FunctionDef) -> bool:
    """True when the method checks dtype/dims before doing work.

    Recognized: an ``if`` test that reads a ``.dtype`` attribute (or a
    bare ``dtype`` name), an ``if`` test over ``.dims`` / ``.shape`` /
    ``.ndim``, or a call to a ``*validate*`` helper.
    """
    for node in ast.walk(fn):
        if isinstance(node, ast.If):
            for sub in ast.walk(node.test):
                if isinstance(sub, ast.Attribute) and sub.attr in (
                        "dtype", "dims", "shape", "ndim"):
                    return True
                if isinstance(sub, ast.Name) and sub.id == "dtype":
                    return True
        elif isinstance(node, ast.Call):
            name = (dotted_name(node.func) or "").split(".")[-1]
            if "validate" in name:
                return True
    return False


# ---------------------------------------------------------------------------
# thread-mapped worker detection
# ---------------------------------------------------------------------------

_POOL_METHODS = ("submit", "map", "_map", "wrap_task", "imap",
                 "imap_unordered", "apply_async", "starmap")


def collect_worker_defs(fn: ast.FunctionDef) -> list[ast.FunctionDef]:
    """Nested defs handed to a thread pool / ``self._map`` inside ``fn``."""
    nested = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.FunctionDef) and node is not fn:
            nested[node.name] = node
    submitted: list[ast.FunctionDef] = []
    seen: set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func) or ""
        if name.split(".")[-1] not in _POOL_METHODS:
            continue
        for arg in node.args[:2]:
            if isinstance(arg, ast.Name) and arg.id in nested \
                    and arg.id not in seen:
                seen.add(arg.id)
                submitted.append(nested[arg.id])
    return submitted


def function_locals(fn: ast.FunctionDef) -> set[str]:
    """Names local to ``fn``: params plus anything bound inside it."""
    names: set[str] = set()
    args = fn.args
    for a in (args.posonlyargs + args.args + args.kwonlyargs):
        names.add(a.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)

    def bind(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                bind(elt)
        elif isinstance(target, ast.Starred):
            bind(target.value)

    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bind(target)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            bind(node.target)
        elif isinstance(node, ast.For):
            bind(node.target)
        elif isinstance(node, ast.withitem) and node.optional_vars:
            bind(node.optional_vars)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, ast.comprehension):
            bind(node.target)
        elif isinstance(node, ast.FunctionDef) and node is not fn:
            names.add(node.name)
    return names
