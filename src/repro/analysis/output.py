"""Renderers: human text, machine JSON, and SARIF 2.1.0.

SARIF is the interchange format CI code-scanning UIs ingest; the
document carries the full rule catalog in the tool descriptor so
viewers can show rationale next to each result.
"""

from __future__ import annotations

import json
from collections import Counter

from .model import Finding
from .rules import Rule

__all__ = ["format_text", "format_json", "format_sarif", "SARIF_SCHEMA_URI"]

SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"
TOOL_NAME = "pressio-lint"


def format_text(findings: list[Finding], *, suppressed: int = 0,
                files_scanned: int = 0) -> str:
    """One ``path:line:col: ID severity: message`` line per finding."""
    lines = [
        f"{f.location()}: {f.rule_id} {f.severity.name.lower()}: {f.message}"
        for f in findings
    ]
    by_rule = Counter(f.rule_id for f in findings)
    if findings:
        breakdown = ", ".join(f"{rid}: {n}"
                              for rid, n in sorted(by_rule.items()))
        lines.append("")
        lines.append(
            f"{len(findings)} finding(s) in {files_scanned} file(s) "
            f"({breakdown}); {suppressed} baseline-suppressed"
        )
    else:
        lines.append(
            f"no findings in {files_scanned} file(s); "
            f"{suppressed} baseline-suppressed"
        )
    return "\n".join(lines)


def format_json(findings: list[Finding], *, suppressed: int = 0,
                files_scanned: int = 0) -> str:
    doc = {
        "tool": TOOL_NAME,
        "findings": [f.to_dict() for f in findings],
        "summary": {
            "total": len(findings),
            "suppressed": suppressed,
            "files_scanned": files_scanned,
            "by_rule": dict(Counter(f.rule_id for f in findings)),
            "by_severity": dict(
                Counter(f.severity.name.lower() for f in findings)
            ),
        },
    }
    return json.dumps(doc, indent=2, sort_keys=False) + "\n"


def _sarif_rule(rule: Rule) -> dict:
    return {
        "id": rule.rule_id,
        "name": rule.name,
        "shortDescription": {"text": rule.description},
        "fullDescription": {"text": rule.rationale or rule.description},
        "defaultConfiguration": {"level": rule.severity.sarif_level},
        "helpUri": "https://example.invalid/docs/LINT_RULES.md",
    }


def format_sarif(findings: list[Finding], rules: list[Rule]) -> str:
    """A single-run SARIF 2.1.0 log with the rule catalog embedded."""
    results = []
    for f in findings:
        results.append({
            "ruleId": f.rule_id,
            "level": f.severity.sarif_level,
            "message": {"text": f.message},
            "partialFingerprints": {"pressioLint/v1": f.fingerprint()},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(f.line, 1),
                        "startColumn": f.col + 1,
                        "snippet": {"text": f.snippet},
                    },
                },
            }],
        })
    doc = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri":
                        "https://example.invalid/docs/LINT_RULES.md",
                    "rules": [_sarif_rule(r) for r in rules],
                },
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=False) + "\n"
