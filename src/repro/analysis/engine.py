"""The analysis driver: collect files, run rules, apply suppressions."""

from __future__ import annotations

import os
import re

from .model import Finding, Severity
from .project import ProjectIndex, SourceModule
from .rules import Rule, all_rules

__all__ = ["Analyzer", "analyze_paths", "PARSE_RULE_ID"]

PARSE_RULE_ID = "PE001"

_SUPPRESS_RE = re.compile(
    r"#\s*pressio-lint\s*:\s*disable=([A-Za-z0-9_,\s]+)"
)
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


def _collect_files(paths: list[str]) -> list[str]:
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in _SKIP_DIRS
                                 and not d.startswith("."))
            for name in sorted(filenames):
                if name.endswith(".py"):
                    files.append(os.path.join(dirpath, name))
    return files


def _inline_suppressions(module: SourceModule, line: int) -> set[str]:
    """Rule ids disabled on ``line`` or the line directly above it."""
    ids: set[str] = set()
    for lineno in (line, line - 1):
        match = _SUPPRESS_RE.search(module.line(lineno))
        if match:
            ids.update(part.strip()
                       for part in match.group(1).split(",") if part.strip())
    return ids


class Analyzer:
    """Run a rule selection over a set of paths.

    Separate from the CLI so tests (and future editor/pre-commit
    integrations) can drive it directly and receive typed findings.
    """

    def __init__(self, rules: list[Rule] | None = None,
                 root: str | None = None):
        self.rules = rules if rules is not None else all_rules()
        self.root = os.path.abspath(root or os.getcwd())
        self.files_scanned = 0
        self.inline_suppressed = 0

    def _relpath(self, path: str) -> str:
        abspath = os.path.abspath(path)
        try:
            rel = os.path.relpath(abspath, self.root)
        except ValueError:  # different drive on windows
            return abspath.replace(os.sep, "/")
        if rel.startswith(".."):
            return abspath.replace(os.sep, "/")
        return rel.replace(os.sep, "/")

    def load(self, paths: list[str]) -> ProjectIndex:
        modules: list[SourceModule] = []
        for path in _collect_files(paths):
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            modules.append(SourceModule(path, self._relpath(path), source))
        self.files_scanned = len(modules)
        return ProjectIndex(modules)

    def run(self, paths: list[str]) -> list[Finding]:
        index = self.load(paths)
        findings: list[Finding] = []
        for module in index.modules:
            if module.parse_error is not None:
                err = module.parse_error
                findings.append(Finding(
                    rule_id=PARSE_RULE_ID,
                    severity=Severity.ERROR,
                    message=f"file does not parse: {err.msg}",
                    path=module.rel,
                    line=err.lineno or 1,
                    col=(err.offset or 1) - 1,
                    snippet=module.line(err.lineno or 1).strip(),
                ))
                continue
            for rule in self.rules:
                findings.extend(rule.check(module, index))
        findings = self._apply_inline(index, findings)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings

    def _apply_inline(self, index: ProjectIndex,
                      findings: list[Finding]) -> list[Finding]:
        by_rel = {m.rel: m for m in index.modules}
        kept: list[Finding] = []
        for finding in findings:
            module = by_rel.get(finding.path)
            if module is not None:
                disabled = _inline_suppressions(module, finding.line)
                if finding.rule_id in disabled or "all" in disabled:
                    self.inline_suppressed += 1
                    continue
            kept.append(finding)
        return kept


def analyze_paths(paths: list[str], rules: list[Rule] | None = None,
                  root: str | None = None) -> list[Finding]:
    """Convenience wrapper: run the default (or given) rules over paths."""
    return Analyzer(rules=rules, root=root).run(paths)
