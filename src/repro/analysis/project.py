"""Parse the analyzed tree once and index what rules need.

Rules are cross-file: whether ``SZOmpCompressor`` declares a
``thread_safety`` field depends on ``SZThreadsafeCompressor`` in the
same file and ``SZCompressor`` in another, and whether an option key
read in ``_set_options`` is advertised depends on ``_options`` methods
anywhere up the inheritance chain.  The :class:`ProjectIndex` resolves
those questions so individual rules stay single-purpose.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

__all__ = ["SourceModule", "ClassInfo", "ProjectIndex", "dotted_name",
           "const_str"]


def dotted_name(node: ast.AST | None) -> str | None:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else None
    if isinstance(node, ast.Call):
        # decorator factories: compressor_plugin("sz") -> compressor_plugin
        return dotted_name(node.func)
    return None


def const_str(node: ast.AST | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


@dataclass
class ClassInfo:
    """A class definition plus the facts rules ask about."""

    name: str
    module: "SourceModule"
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    decorators: list[str] = field(default_factory=list)
    #: plugin id from @compressor_plugin("id")-style decorators
    plugin_id: str | None = None
    #: "compressor" / "metric" / "io" when registered, else None
    registered_kind: str | None = None
    #: class-body string assignments, e.g. thread_safety = "serialized"
    str_attrs: dict[str, str] = field(default_factory=dict)
    #: class-body assignment targets of any type
    attr_names: set[str] = field(default_factory=set)
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)

    @property
    def qualname(self) -> str:
        return f"{self.module.rel}:{self.name}"


_DECORATOR_KINDS = {
    "compressor_plugin": "compressor",
    "metric_plugin": "metric",
    "io_plugin": "io",
}
_REGISTER_KINDS = {
    "register_compressor": "compressor",
    "register_metric": "metric",
    "register_io": "io",
}


class SourceModule:
    """One parsed file: source text, AST, imports, and classes."""

    def __init__(self, path: str, rel: str, source: str):
        self.path = path
        self.rel = rel.replace(os.sep, "/")
        self.source = source
        self.lines = source.splitlines()
        self.parse_error: SyntaxError | None = None
        try:
            self.tree: ast.Module | None = ast.parse(source, filename=rel)
        except SyntaxError as e:
            self.tree = None
            self.parse_error = e
        #: import alias -> dotted source module string as written
        #: ("..native.mgard", "repro.trace.runtime", ...)
        self.import_sources: dict[str, str] = {}
        #: module-level names bound to logger factories (NAME = get_logger(..))
        self.logger_names: set[str] = set()
        self.classes: list[ClassInfo] = []
        if self.tree is not None:
            self._index()

    # -- indexing ---------------------------------------------------------
    def _index(self) -> None:
        assert self.tree is not None
        for node in self.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.import_sources[alias.asname or
                                        alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom):
                prefix = "." * node.level + (node.module or "")
                for alias in node.names:
                    self.import_sources[alias.asname or alias.name] = (
                        f"{prefix}.{alias.name}" if prefix else alias.name
                    )
            elif isinstance(node, ast.Assign):
                self._index_module_assign(node)
            elif isinstance(node, ast.ClassDef):
                self.classes.append(self._index_class(node))
        # module-level register_compressor("id", ClassName) calls
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = dotted_name(node.func)
            kind = _REGISTER_KINDS.get((fn or "").split(".")[-1])
            if kind is None or len(node.args) < 2:
                continue
            target = node.args[1]
            if isinstance(target, ast.Name):
                for info in self.classes:
                    if info.name == target.id:
                        info.registered_kind = info.registered_kind or kind
                        info.plugin_id = (info.plugin_id
                                          or const_str(node.args[0]))

    def _index_module_assign(self, node: ast.Assign) -> None:
        if not (isinstance(node.value, ast.Call)):
            return
        fn = dotted_name(node.value.func) or ""
        if fn.split(".")[-1] in ("get_logger", "getLogger"):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.logger_names.add(target.id)

    def _index_class(self, node: ast.ClassDef) -> ClassInfo:
        info = ClassInfo(name=node.name, module=self, node=node)
        for base in node.bases:
            name = dotted_name(base)
            if name:
                info.bases.append(name)
        for deco in node.decorator_list:
            name = dotted_name(deco)
            if not name:
                continue
            info.decorators.append(name)
            kind = _DECORATOR_KINDS.get(name.split(".")[-1])
            if kind is not None:
                info.registered_kind = kind
                if isinstance(deco, ast.Call) and deco.args:
                    info.plugin_id = const_str(deco.args[0])
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[stmt.name] = stmt  # type: ignore[assignment]
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        info.attr_names.add(target.id)
                        value = const_str(stmt.value)
                        if value is not None:
                            info.str_attrs[target.id] = value
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    info.attr_names.add(stmt.target.id)
                    value = const_str(stmt.value)
                    if value is not None:
                        info.str_attrs[stmt.target.id] = value
        return info

    # -- queries ----------------------------------------------------------
    def alias_source(self, name: str) -> str:
        """The import source string an alias was bound from ('' if local)."""
        return self.import_sources.get(name, "")

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class ProjectIndex:
    """All modules under analysis plus cross-file class resolution."""

    def __init__(self, modules: list[SourceModule]):
        self.modules = modules
        #: bare class name -> ClassInfo (first definition wins)
        self.classes_by_name: dict[str, ClassInfo] = {}
        for module in modules:
            for info in module.classes:
                self.classes_by_name.setdefault(info.name, info)

    def resolve_base(self, name: str) -> ClassInfo | None:
        """Resolve a base written as ``Name`` or ``pkg.Name``."""
        return self.classes_by_name.get(name.split(".")[-1])

    def ancestors(self, info: ClassInfo) -> list[ClassInfo]:
        """Project-resolvable ancestors, nearest first, cycle-safe."""
        out: list[ClassInfo] = []
        seen = {info.name}
        queue = list(info.bases)
        while queue:
            base = self.resolve_base(queue.pop(0))
            if base is None or base.name in seen:
                continue
            seen.add(base.name)
            out.append(base)
            queue.extend(base.bases)
        return out

    def is_subclass_of(self, info: ClassInfo, root: str) -> bool:
        """True when ``root`` appears anywhere in the (named) base chain."""
        if info.name == root:
            return True
        for base in [info] + self.ancestors(info):
            for name in base.bases:
                if name.split(".")[-1] == root:
                    return True
        return False

    def class_and_ancestors(self, info: ClassInfo) -> list[ClassInfo]:
        return [info] + self.ancestors(info)
