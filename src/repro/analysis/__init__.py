"""Static analysis for the pressio plugin contract (``pressio lint``).

The paper's central claim is a *uniform, introspectable* plugin
contract: options are discoverable (Table I), errors travel through one
C-style status/taxonomy channel, thread safety is introspectable, and
known native pitfalls (MGARD's >= 3 samples per dimension, ZFP's 4^d
block padding, dimension-order mistakes — Section V) are caught before
the native call.  Every one of those properties is a *syntactic*
property of the plugin source, so contract drift can be caught by a
static pass instead of at runtime.

This package is that pass:

* :mod:`repro.analysis.project` parses the analyzed tree once and
  indexes classes/imports so rules can resolve inheritance;
* :mod:`repro.analysis.rules` holds the rule packs (contract ``PC*``,
  hot-path ``HP*``, thread-safety ``TS*``) behind a registry with
  per-rule enable/disable and severity levels;
* :mod:`repro.analysis.engine` runs the rules and applies inline
  (``# pressio-lint: disable=ID``) and baseline suppressions;
* :mod:`repro.analysis.output` renders text, JSON, and SARIF 2.1.0;
* :mod:`repro.analysis.cli` is the ``pressio lint`` front end.

The rule catalog with rationale lives in ``docs/LINT_RULES.md``.
"""

from __future__ import annotations

from .engine import Analyzer, analyze_paths
from .model import Finding, Severity
from .rules import all_rules, get_rule

__all__ = [
    "Analyzer",
    "analyze_paths",
    "Finding",
    "Severity",
    "all_rules",
    "get_rule",
]
