"""The ``pressio lint`` subcommand.

Exit codes: 0 — clean (after baseline + ``--fail-level``); 1 — findings
at or above the fail level remain; 2 — usage or configuration error.

Examples::

    pressio lint src/repro
    pressio lint src/repro --format sarif --output lint.sarif
    pressio lint src/repro --baseline lint-baseline.json
    pressio lint src/repro --write-baseline lint-baseline.json
    pressio lint --list-rules
    pressio lint --explain RS001
"""

from __future__ import annotations

import argparse
import sys

from .baseline import (BaselineError, apply_baseline, load_baseline,
                       write_baseline)
from .engine import Analyzer
from .model import Severity
from .output import format_json, format_sarif, format_text
from .rules import all_rules, resolve_selection

__all__ = ["build_lint_parser", "run_lint"]


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pressio lint",
        description="static plugin-contract, hot-path, and thread-safety "
                    "analysis for pressio plugin code",
    )
    parser.add_argument("paths", nargs="*", default=[],
                        help="files or directories to analyze")
    parser.add_argument("--format", "-f", default="text",
                        choices=("text", "json", "sarif"),
                        help="report format (default text)")
    parser.add_argument("--output", "-o", default=None,
                        help="write the report to this path (default stdout)")
    parser.add_argument("--baseline", default=None,
                        help="suppress findings recorded in this baseline "
                             "file (missing file = empty baseline)")
    parser.add_argument("--write-baseline", default=None, metavar="PATH",
                        help="record current findings as the new baseline "
                             "and exit 0")
    parser.add_argument("--enable", action="append", default=[],
                        metavar="ID", help="run only these rule ids "
                                           "(repeatable)")
    parser.add_argument("--disable", action="append", default=[],
                        metavar="ID", help="skip these rule ids (repeatable)")
    parser.add_argument("--fail-level", default="warning",
                        choices=("info", "warning", "error", "never"),
                        help="lowest severity that fails the run "
                             "(default warning)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--explain", default=None, metavar="RULEID",
                        help="print the docs/LINT_RULES.md entry and a "
                             "minimal good/bad example for one rule, "
                             "then exit")
    return parser


def _docs_section(rule_id: str) -> str | None:
    """The ``### RULEID — ...`` section from docs/LINT_RULES.md, if
    the docs tree is present (source checkouts; not installed wheels)."""
    from pathlib import Path

    path = Path(__file__).resolve().parents[3] / "docs" / "LINT_RULES.md"
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return None
    lines = text.splitlines()
    start = next((i for i, line in enumerate(lines)
                  if line.startswith(f"### {rule_id} ")), None)
    if start is None:
        return None
    end = next((i for i in range(start + 1, len(lines))
                if lines[i].startswith(("### ", "## "))), len(lines))
    return "\n".join(lines[start:end]).rstrip()


def _explain(rule_id: str) -> int:
    from .rules import get_rule

    rule = get_rule(rule_id.upper())
    if rule is None:
        known = ", ".join(r.rule_id for r in all_rules())
        print(f"error: unknown rule id {rule_id!r}; known: {known}",
              file=sys.stderr)
        return 2
    section = _docs_section(rule.rule_id)
    if section is not None:
        print(section)
    else:
        print(f"### {rule.rule_id} — {rule.name} "
              f"({rule.severity.name.lower()})")
        print()
        print(rule.description)
        rationale = getattr(rule, "rationale", "")
        if rationale:
            print()
            print(f"*Why:* {rationale}")
    for label, attr in (("Good", "good_example"), ("Bad", "bad_example")):
        example = getattr(rule, attr, "")
        if example:
            print()
            print(f"{label}:")
            print()
            print("```python")
            print(example)
            print("```")
    return 0


def _emit(report: str, output: str | None) -> None:
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            fh.write(report)
    else:
        sys.stdout.write(report)
        if not report.endswith("\n"):
            sys.stdout.write("\n")


def run_lint(argv: list[str]) -> int:
    args = build_lint_parser().parse_args(argv)

    if args.explain:
        return _explain(args.explain)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id} [{rule.severity.name.lower():7s}] "
                  f"{rule.name}")
            print(f"    {rule.description}")
        return 0

    if not args.paths:
        print("error: at least one path is required (or --list-rules)",
              file=sys.stderr)
        return 2

    try:
        rules = resolve_selection(args.enable, args.disable)
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    analyzer = Analyzer(rules=rules)
    findings = analyzer.run(args.paths)

    if args.write_baseline:
        count = write_baseline(args.write_baseline, findings)
        print(f"wrote {count} suppression(s) to {args.write_baseline}")
        return 0

    suppressed = 0
    if args.baseline:
        try:
            fingerprints = load_baseline(args.baseline)
        except BaselineError as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        findings, suppressed = apply_baseline(findings, fingerprints)

    if args.format == "sarif":
        report = format_sarif(findings, rules)
    elif args.format == "json":
        report = format_json(findings, suppressed=suppressed,
                             files_scanned=analyzer.files_scanned)
    else:
        report = format_text(findings, suppressed=suppressed,
                             files_scanned=analyzer.files_scanned)
    _emit(report, args.output)
    if args.output and findings:
        # keep the failure actionable even when the report went to a file
        print(f"{len(findings)} finding(s); report written to {args.output}",
              file=sys.stderr)

    if args.fail_level == "never":
        return 0
    threshold = Severity.parse(args.fail_level)
    failing = [f for f in findings if f.severity >= threshold]
    return 1 if failing else 0
