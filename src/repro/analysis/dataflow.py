"""Call graph and intraprocedural def-use dataflow over ProjectIndex.

This module is the analysis substrate for the resource-safety (``RS*``)
and lock (``LK*``) rule packs.  It adds two layers on top of the
per-file :class:`~repro.analysis.project.ProjectIndex`:

* :class:`CallGraph` — a whole-program function table with resolved
  call edges.  Resolution is alias-based, the same discipline the other
  rule packs use: bare names resolve to same-module functions or
  ``from x import f`` imports, ``mod.f`` resolves through the module's
  import aliases, and ``self.m`` resolves through the class and its
  project-visible ancestors.  Dynamic dispatch falls outside the
  checked contract and simply produces no edge.

* :class:`BufferInterp` — a path-sensitive abstract interpreter for
  pool-buffer lifetimes inside one function.  It tracks which local
  names hold a live :func:`repro.native.pool.acquire` result along
  every control-flow path (branches are enumerated and merged as state
  *sets*, so a release that happens on one arm does not mask a leak on
  the other), models ``try``/``except``/``finally`` including the
  implicit exception edges out of any statement that can raise, and
  records leak, double-release, and escape events for the rules to
  report.

The interpreter understands two sanctioned ownership transfers so the
shipped tree can be clean without suppressions:

* *allocator functions* — functions whose every ``return`` is composed
  directly of ``acquire`` calls (e.g. ``_lift_temps``).  Call sites of
  an allocator become acquire sites in the caller via the call graph.
* *stage-split protocol* — functions named ``compress_stage1`` (or
  whose docstring carries a ``pool-ownership: caller`` marker) hand
  pooled buffers to their caller inside the returned state; the runtime
  sanitizer covers that hand-off dynamically.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .project import ProjectIndex, SourceModule, dotted_name

__all__ = [
    "CallGraph", "FunctionInfo", "BufferEvents", "BufferInterp",
    "pool_aliases", "is_pool_acquire", "is_pool_release",
    "release_target_names", "allocator_keys", "analyze_buffers",
    "lock_id_for_expr", "LockOrderGraph", "build_lock_graph",
    "OWNERSHIP_MARKER", "PROTOCOL_EXEMPT_NAMES",
]

#: docstring marker declaring that pooled buffers in the return value
#: transfer to the caller (documented API contract, not a suppression)
OWNERSHIP_MARKER = "pool-ownership: caller"

#: function names whose returns transfer pool ownership by repo protocol
PROTOCOL_EXEMPT_NAMES = ("compress_stage1",)

_STATE_CAP = 32


# ---------------------------------------------------------------------------
# function table + call graph
# ---------------------------------------------------------------------------

@dataclass
class FunctionInfo:
    """One function or method in the analyzed tree."""

    module: SourceModule
    qualname: str  # "func" or "Class.method"
    node: ast.FunctionDef
    cls: str | None = None

    @property
    def key(self) -> str:
        return f"{self.module.rel}:{self.qualname}"

    @property
    def name(self) -> str:
        return self.qualname.split(".")[-1]


class CallGraph:
    """Whole-program function table with alias-resolved call edges."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self.functions: dict[str, FunctionInfo] = {}
        #: module rel -> {local function name -> FunctionInfo}
        self._locals: dict[str, dict[str, FunctionInfo]] = {}
        #: caller key -> [(callee key, call node), ...]
        self.edges: dict[str, list[tuple[str, ast.Call]]] = {}
        self._build()

    @classmethod
    def for_index(cls, index: ProjectIndex) -> "CallGraph":
        """Build once per analyzer run; cached on the index."""
        cached = getattr(index, "_callgraph", None)
        if cached is None:
            cached = cls(index)
            index._callgraph = cached  # type: ignore[attr-defined]
        return cached

    # -- construction -----------------------------------------------------
    def _build(self) -> None:
        for module in self.index.modules:
            if module.tree is None:
                continue
            local: dict[str, FunctionInfo] = {}
            for node in module.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = FunctionInfo(module, node.name, node)
                    self.functions[info.key] = info
                    local[node.name] = info
            for cinfo in module.classes:
                for mname, mnode in cinfo.methods.items():
                    info = FunctionInfo(module, f"{cinfo.name}.{mname}",
                                        mnode, cls=cinfo.name)
                    self.functions[info.key] = info
            self._locals[module.rel] = local
        for key, info in self.functions.items():
            callees: list[tuple[str, ast.Call]] = []
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    target = self.resolve_call(info, node)
                    if target is not None:
                        callees.append((target, node))
            self.edges[key] = callees

    # -- resolution -------------------------------------------------------
    def module_for_source(self, source: str) -> SourceModule | None:
        """Map an import source string to an analyzed module.

        Relative imports are matched by path suffix: ``..native.pool``
        finds the module whose rel path ends in ``native/pool.py``.
        """
        tail = source.lstrip(".")
        if not tail:
            return None
        relpath = tail.replace(".", "/")
        for module in self.index.modules:
            stem = module.rel[:-3] if module.rel.endswith(".py") else module.rel
            if (stem == relpath or stem.endswith("/" + relpath)
                    or stem.endswith("/" + relpath + "/__init__")):
                return module
        return None

    def resolve_call(self, caller: FunctionInfo,
                     call: ast.Call) -> str | None:
        name = dotted_name(call.func)
        if not name:
            return None
        parts = name.split(".")
        module = caller.module
        if len(parts) == 1:
            local = self._locals.get(module.rel, {}).get(parts[0])
            if local is not None:
                return local.key
            source = module.alias_source(parts[0])
            if source:
                head, _, fname = source.rpartition(".")
                target = self.module_for_source(head) if head.strip(".") \
                    else None
                if target is not None:
                    hit = self._locals.get(target.rel, {}).get(fname)
                    if hit is not None:
                        return hit.key
            return None
        if parts[0] == "self" and len(parts) == 2 and caller.cls:
            cinfo = next((c for c in module.classes
                          if c.name == caller.cls), None)
            if cinfo is not None:
                for c in self.index.class_and_ancestors(cinfo):
                    if parts[1] in c.methods:
                        return f"{c.module.rel}:{c.name}.{parts[1]}"
            return None
        if len(parts) == 2:
            source = module.alias_source(parts[0])
            if source:
                target = self.module_for_source(source)
                if target is not None:
                    hit = self._locals.get(target.rel, {}).get(parts[1])
                    if hit is not None:
                        return hit.key
        return None

    def callees(self, key: str) -> list[tuple[str, ast.Call]]:
        return self.edges.get(key, [])

    def transitive_callees(self, key: str, depth: int = 4) -> set[str]:
        """Keys reachable from ``key`` in at most ``depth`` edges."""
        seen: set[str] = set()
        frontier = {key}
        for _ in range(depth):
            nxt: set[str] = set()
            for k in frontier:
                for callee, _node in self.callees(k):
                    if callee not in seen:
                        seen.add(callee)
                        nxt.add(callee)
            if not nxt:
                break
            frontier = nxt
        return seen


# ---------------------------------------------------------------------------
# pool call recognition
# ---------------------------------------------------------------------------

def _is_pool_source(source: str) -> bool:
    tail = source.lstrip(".")
    return tail == "pool" or tail.endswith("native.pool")


def pool_aliases(module: SourceModule) -> set[str]:
    """Import aliases in ``module`` bound to :mod:`repro.native.pool`."""
    return {alias for alias, source in module.import_sources.items()
            if _is_pool_source(source)}


def _pool_method_call(call: ast.Call, module: SourceModule,
                      method: str) -> bool:
    name = dotted_name(call.func)
    if not name:
        return False
    parts = name.split(".")
    if len(parts) == 2 and parts[1] == method:
        return parts[0] in pool_aliases(module)
    if len(parts) == 1:
        source = module.alias_source(parts[0])
        head, _, fname = source.rpartition(".")
        return fname == method and _is_pool_source(head)
    return False


def is_pool_acquire(call: ast.Call, module: SourceModule) -> bool:
    return _pool_method_call(call, module, "acquire")


def is_pool_release(call: ast.Call, module: SourceModule) -> bool:
    return _pool_method_call(call, module, "release")


def release_target_names(call: ast.Call) -> list[str]:
    """Local names released by a ``pool.release(...)`` call.

    ``release(a, b)`` names a and b; ``release(*bufs)`` names bufs (the
    whole collection handle).  Non-name arguments are untracked.
    """
    names: list[str] = []
    for arg in call.args:
        if isinstance(arg, ast.Starred):
            arg = arg.value
        if isinstance(arg, ast.Name):
            names.append(arg.id)
    return names


def _returns_only_acquires(info: FunctionInfo) -> bool:
    """True for allocator functions: every return is built from acquires."""
    module = info.module

    def built_from_acquires(value: ast.AST | None) -> bool:
        if isinstance(value, ast.Call):
            return is_pool_acquire(value, module)
        if isinstance(value, (ast.Tuple, ast.List)):
            return bool(value.elts) and all(built_from_acquires(e)
                                            for e in value.elts)
        if isinstance(value, (ast.ListComp, ast.GeneratorExp)):
            return built_from_acquires(value.elt)
        return False

    returns = [n for n in ast.walk(info.node) if isinstance(n, ast.Return)]
    return bool(returns) and all(built_from_acquires(r.value)
                                 for r in returns)


def allocator_keys(graph: CallGraph) -> set[str]:
    """Function keys acting as pool allocators, cached on the graph."""
    cached = getattr(graph, "_allocators", None)
    if cached is None:
        cached = {key for key, info in graph.functions.items()
                  if _returns_only_acquires(info)}
        graph._allocators = cached  # type: ignore[attr-defined]
    return cached


def ownership_transfers_to_caller(info: FunctionInfo) -> bool:
    """True when returned pooled buffers transfer by documented protocol."""
    if info.name in PROTOCOL_EXEMPT_NAMES:
        return True
    doc = ast.get_docstring(info.node) or ""
    return OWNERSHIP_MARKER in doc


_VIEW_METHODS = ("reshape", "view", "ravel")


def param_returners(graph: CallGraph) -> dict[str, int]:
    """Functions whose every return is (a view of) one parameter.

    Maps function key -> the parameter index returned, so call sites
    like ``kept = _rounding_rshift(blocks, shifts)`` alias the result to
    the in-place-modified argument.  Cached on the graph.
    """
    cached = getattr(graph, "_param_returners", None)
    if cached is not None:
        return cached
    out: dict[str, int] = {}
    for key, info in graph.functions.items():
        params = [a.arg for a in info.node.args.args]
        returns = [n for n in ast.walk(info.node)
                   if isinstance(n, ast.Return)]
        idxs: set[int] = set()
        ok = bool(returns) and bool(params)
        for ret in returns:
            value = ret.value
            name = None
            if isinstance(value, ast.Name):
                name = value.id
            elif (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr in _VIEW_METHODS
                    and isinstance(value.func.value, ast.Name)):
                name = value.func.value.id
            if name is not None and name in params:
                idxs.add(params.index(name))
            else:
                ok = False
                break
        if ok and len(idxs) == 1:
            out[key] = idxs.pop()
    graph._param_returners = out  # type: ignore[attr-defined]
    return out


# ---------------------------------------------------------------------------
# path-sensitive buffer lifetime interpreter
# ---------------------------------------------------------------------------

#: one abstract path state: (held alias groups, released names).  Each
#: group is a frozenset of local names all viewing one pooled buffer
#: (``blocks = _to_blocks(codes, out=blockbuf)`` puts blocks and
#: blockbuf in one group); releasing any member frees the whole group.
_State = tuple[frozenset, frozenset]


def _group_of(groups: frozenset, name: str) -> frozenset | None:
    for group in groups:
        if name in group:
            return group
    return None


def _held_names(groups: frozenset) -> set[str]:
    return {name for group in groups for name in group}


@dataclass
class BufferEvents:
    """What the interpreter observed in one function."""

    #: (name, kind, report node); kind in return/end/exception/rebind
    leaks: list[tuple[str, str, ast.AST]] = field(default_factory=list)
    #: (name, release node)
    double_releases: list[tuple[str, ast.AST]] = field(default_factory=list)
    #: (name, kind, node); kind in return/attribute
    escapes: list[tuple[str, str, ast.AST]] = field(default_factory=list)
    #: name -> acquire statement node
    acquire_nodes: dict[str, ast.AST] = field(default_factory=dict)

    _leak_seen: set = field(default_factory=set)
    _dr_seen: set = field(default_factory=set)
    _esc_seen: set = field(default_factory=set)

    def leak(self, name: str, kind: str, node: ast.AST) -> None:
        if (name, kind) not in self._leak_seen:
            self._leak_seen.add((name, kind))
            self.leaks.append((name, kind, node))

    def double_release(self, name: str, node: ast.AST) -> None:
        key = (name, getattr(node, "lineno", 0))
        if key not in self._dr_seen:
            self._dr_seen.add(key)
            self.double_releases.append((name, node))

    def escape(self, name: str, kind: str, node: ast.AST) -> None:
        key = (name, kind, getattr(node, "lineno", 0))
        if key not in self._esc_seen:
            self._esc_seen.add(key)
            self.escapes.append((name, kind, node))


def _dedupe(states: list[_State]) -> list[_State]:
    return list(dict.fromkeys(states))[:_STATE_CAP]


def _calls_in(node: ast.AST):
    """Calls within ``node``, excluding nested function bodies."""
    stack = [node]
    while stack:
        cur = stack.pop()
        if isinstance(cur, ast.Call):
            yield cur
        for child in ast.iter_child_nodes(cur):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            stack.append(child)


def _contains_call(node: ast.AST) -> bool:
    """True when ``node`` contains a call outside nested function bodies."""
    return next(iter(_calls_in(node)), None) is not None


def _names_in(node: ast.AST | None) -> set[str]:
    if node is None:
        return set()
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


class BufferInterp:
    """Abstract interpreter tracking pooled-buffer lifetimes in one fn.

    The state space is a set of (held, released) name-set pairs, one per
    enumerated control-flow path (bounded by a small cap).  Exceptions
    are modeled pessimistically: every statement containing a call (plus
    ``raise``/``assert``) is a potential exception edge, and the edge is
    only benign when every enclosing ``finally`` (walked outward through
    the ``try`` nesting) releases all held buffers, or an enclosing
    handler exists to consume the exception.
    """

    def __init__(self, info: FunctionInfo, graph: CallGraph):
        self.info = info
        self.module = info.module
        self.graph = graph
        self.allocators = allocator_keys(graph)
        self.events = BufferEvents()
        self.transfers = ownership_transfers_to_caller(info)
        #: finalbodies of the enclosing ``try`` statements, outermost first
        self._finally_stack: list[list[ast.stmt]] = []

    # -- call classification ---------------------------------------------
    def _value_acquires(self, value: ast.AST | None) -> bool:
        """True when evaluating ``value`` hands us a fresh pool buffer."""
        if value is None:
            return False
        for node in ast.walk(value):
            if not isinstance(node, ast.Call):
                continue
            if is_pool_acquire(node, self.module):
                return True
            target = self.graph.resolve_call(self.info, node)
            if target is not None and target in self.allocators:
                return True
        return False

    def _release_names(self, stmt: ast.stmt) -> list[str] | None:
        """Names released when ``stmt`` is a bare pool.release(...) call."""
        if (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)
                and is_pool_release(stmt.value, self.module)):
            return release_target_names(stmt.value)
        return None

    def _can_raise(self, stmt: ast.stmt) -> bool:
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            return True
        if self._release_names(stmt) is not None:
            return False  # pool.release never raises by contract
        # pool acquire / allocator calls are non-raising primitives of
        # the checked contract: `a = acquire(); b = acquire()` before a
        # try/finally is a sanctioned shape, not an exception edge.
        # Observability calls (trace spans, metrics, logging) and
        # nullcontext() share that contract — the hot-path design
        # already assumes they are skippable, so they must not raise.
        from .visitor import classify_observability_call
        for node in _calls_in(stmt):
            if is_pool_acquire(node, self.module) \
                    or is_pool_release(node, self.module):
                continue
            name = dotted_name(node.func) or ""
            if name.split(".")[-1] == "nullcontext":
                continue
            if classify_observability_call(node, self.module) is not None:
                continue
            target = self.graph.resolve_call(self.info, node)
            if target is not None and target in self.allocators:
                continue
            return True
        return False

    # -- driver -----------------------------------------------------------
    def run(self) -> BufferEvents:
        def top_sink(state: _State, node: ast.AST) -> None:
            held, _released = state
            for group in held:
                name = min(group)
                self.events.leak(
                    name, "exception",
                    self.events.acquire_nodes.get(name, node))

        out = self._exec_block(self.info.node.body,
                               [(frozenset(), frozenset())], top_sink)
        for held, _released in out:
            for group in held:
                name = min(group)
                self.events.leak(
                    name, "end",
                    self.events.acquire_nodes.get(name, self.info.node))
        return self.events

    # -- statement execution ----------------------------------------------
    def _exec_block(self, stmts, states, raise_sink) -> list[_State]:
        for stmt in stmts:
            if not states:
                break
            states = self._exec_stmt(stmt, states, raise_sink)
        return _dedupe(states)

    def _exec_stmt(self, stmt, states, raise_sink) -> list[_State]:
        if isinstance(stmt, ast.Try):
            return self._exec_try(stmt, states, raise_sink)
        if isinstance(stmt, ast.If):
            return self._exec_if(stmt, states, raise_sink)
        if isinstance(stmt, (ast.For, ast.While)):
            return self._exec_loop(stmt, states, raise_sink)
        if isinstance(stmt, ast.With):
            if any(_contains_call(item.context_expr)
                   for item in stmt.items):
                for st in states:
                    raise_sink(st, stmt)
            return self._exec_block(stmt.body, states, raise_sink)
        if isinstance(stmt, ast.Return):
            self._exec_return(stmt, states)
            return []
        if isinstance(stmt, ast.Raise):
            for st in states:
                raise_sink(st, stmt)
            return []
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return states  # merged by the enclosing loop approximation
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Import, ast.ImportFrom,
                             ast.Pass, ast.Global, ast.Nonlocal)):
            return states
        # generic statement: exception edge first (state before effects)
        if self._can_raise(stmt):
            for st in states:
                raise_sink(st, stmt)
        return _dedupe([s2 for st in states
                        for s2 in self._apply_effects(stmt, st)])

    def _exec_if(self, stmt, states, raise_sink) -> list[_State]:
        if _contains_call(stmt.test):
            for st in states:
                raise_sink(st, stmt)
        refined = self._none_test(stmt.test)
        then_states: list[_State] = []
        else_states: list[_State] = []
        for st in states:
            held, _released = st
            if refined is not None:
                name, not_none = refined
                if _group_of(held, name) is not None:
                    # a held name is a live acquire result, never None:
                    # only the matching branch is feasible on this path
                    (then_states if not_none else else_states).append(st)
                    continue
            then_states.append(st)
            else_states.append(st)
        out: list[_State] = []
        if then_states:
            out.extend(self._exec_block(stmt.body, then_states, raise_sink))
        if stmt.orelse:
            if else_states:
                out.extend(self._exec_block(stmt.orelse, else_states,
                                            raise_sink))
        else:
            out.extend(else_states)
        return _dedupe(out)

    @staticmethod
    def _none_test(test: ast.AST):
        """Recognize ``X is None`` / ``X is not None`` over a local name."""
        if (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.left, ast.Name)
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None):
            if isinstance(test.ops[0], ast.Is):
                return test.left.id, False
            if isinstance(test.ops[0], ast.IsNot):
                return test.left.id, True
        return None

    def _exec_loop(self, stmt, states, raise_sink) -> list[_State]:
        if isinstance(stmt, ast.For) and _contains_call(stmt.iter):
            for st in states:
                raise_sink(st, stmt)
        if isinstance(stmt, ast.While) and _contains_call(stmt.test):
            for st in states:
                raise_sink(st, stmt)
        once = self._exec_block(stmt.body, states, raise_sink)
        out = _dedupe(list(states) + once)
        if stmt.orelse:
            out = self._exec_block(stmt.orelse, out, raise_sink)
        return out

    def _exec_try(self, stmt, states, raise_sink) -> list[_State]:
        body_raises: list[tuple[_State, ast.AST]] = []
        escaped: list[tuple[_State, ast.AST]] = []

        def body_sink(state: _State, node: ast.AST) -> None:
            body_raises.append((state, node))

        def escape_sink(state: _State, node: ast.AST) -> None:
            escaped.append((state, node))

        if stmt.finalbody:
            self._finally_stack.append(stmt.finalbody)
        try:
            body_out = self._exec_block(stmt.body, states, body_sink)
            if stmt.orelse:
                body_out = self._exec_block(stmt.orelse, body_out,
                                            escape_sink)
            after = list(body_out)
            if stmt.handlers:
                # optimistic: a handler may consume anything the body
                # raised — missed catches surface at runtime instead.
                # Entry states come only from actual raise events (every
                # raising statement reports its pre-state), so protected
                # prefixes (an inner try/finally) stay precise.
                entry = _dedupe([s for s, _ in body_raises])
                for handler in stmt.handlers:
                    after.extend(self._exec_block(handler.body, entry,
                                                  escape_sink))
            else:
                escaped.extend(body_raises)
        finally:
            if stmt.finalbody:
                self._finally_stack.pop()

        if stmt.finalbody:
            after = self._exec_block(stmt.finalbody, _dedupe(after),
                                     raise_sink)
            for state, node in escaped:
                for st in self._exec_block(stmt.finalbody, [state],
                                           lambda *_a: None):
                    raise_sink(st, node)
        else:
            for state, node in escaped:
                raise_sink(state, node)
        return _dedupe(after)

    def _exec_return(self, stmt: ast.Return, states) -> None:
        for held, released in states:
            value_names = self._returned_names(stmt.value, held)
            returned = frozenset(g for g in held if g & value_names)
            for group in returned:
                if not self.transfers:
                    self.events.escape(min(group & value_names),
                                       "return", stmt)
            st: list[_State] = [(held - returned, released)]
            for finalbody in reversed(self._finally_stack):
                st = self._exec_block(finalbody, st, lambda *_a: None)
            for fheld, _frel in st:
                for group in fheld:
                    name = min(group)
                    self.events.leak(
                        name, "return",
                        self.events.acquire_nodes.get(name, stmt))

    # -- effects -----------------------------------------------------------
    @staticmethod
    def _drop_name(groups: set, name: str) -> frozenset | None:
        """Remove ``name`` from its group; return the emptied group."""
        group = _group_of(frozenset(groups), name)
        if group is None:
            return None
        groups.discard(group)
        rest = group - {name}
        if rest:
            groups.add(rest)
            return None
        return group

    def _bind_acquire(self, groups: set, released: set, name: str,
                      stmt) -> None:
        if self._drop_name(groups, name) is not None:
            self.events.leak(name, "rebind", stmt)
        self.events.acquire_nodes[name] = stmt
        groups.add(frozenset({name}))
        released.discard(name)

    def _alias_sources(self, value: ast.AST | None,
                       held: frozenset) -> set[str]:
        """Held names whose buffer ``value`` evaluates to a view of.

        Recognized view shapes: a bare held name, an ``IfExp`` arm or
        subscript slice of one, a call with a held name as ``out=`` (the
        numpy ufunc convention returns out), view-returning methods on a
        held receiver (reshape/view/ravel), and calls to functions the
        call graph knows return one of their parameters in place.
        """
        names = _held_names(held)
        out: set[str] = set()
        if isinstance(value, ast.Name) and value.id in names:
            out.add(value.id)
        elif isinstance(value, ast.IfExp):
            out |= self._alias_sources(value.body, held)
            out |= self._alias_sources(value.orelse, held)
        elif isinstance(value, ast.Subscript):
            out |= self._alias_sources(value.value, held)
        elif isinstance(value, ast.Call):
            for kw in value.keywords:
                if (kw.arg == "out" and isinstance(kw.value, ast.Name)
                        and kw.value.id in names):
                    out.add(kw.value.id)
            func = value.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _VIEW_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in names):
                out.add(func.value.id)
            target = self.graph.resolve_call(self.info, value)
            if target is not None:
                idx = param_returners(self.graph).get(target)
                if idx is not None:
                    params = [a.arg for a in
                              self.graph.functions[target].node.args.args]
                    arg: ast.AST | None = None
                    if idx < len(value.args):
                        arg = value.args[idx]
                    else:
                        arg = next((kw.value for kw in value.keywords
                                    if kw.arg == params[idx]), None)
                    if isinstance(arg, ast.Name) and arg.id in names:
                        out.add(arg.id)
        return out

    def _returned_names(self, value: ast.AST | None,
                        held: frozenset) -> set[str]:
        """Held names whose buffer the return value actually exposes.

        Unlike a raw name walk, names used only as call *arguments*
        (``return f(buf)``) do not escape — the call's result does."""
        names = _held_names(held)
        out: set[str] = set()

        def walk(v: ast.AST | None) -> None:
            if v is None:
                return
            if isinstance(v, ast.Name):
                if v.id in names:
                    out.add(v.id)
            elif isinstance(v, (ast.Tuple, ast.List, ast.Set)):
                for elt in v.elts:
                    walk(elt)
            elif isinstance(v, ast.Dict):
                for elt in v.values:
                    walk(elt)
            elif isinstance(v, ast.Starred):
                walk(v.value)
            elif isinstance(v, ast.IfExp):
                walk(v.body)
                walk(v.orelse)
            elif isinstance(v, ast.Subscript):
                walk(v.value)
            elif isinstance(v, ast.Call):
                out.update(self._alias_sources(v, held))

        walk(value)
        return out

    def _apply_effects(self, stmt, state: _State) -> list[_State]:
        held, released = state
        rel_names = self._release_names(stmt)
        if rel_names is not None:
            groups, new_rel = set(held), set(released)
            for name in rel_names:
                group = _group_of(frozenset(groups), name)
                if group is not None:
                    groups.discard(group)
                    new_rel |= group
                elif name in new_rel:
                    self.events.double_release(name, stmt)
            return [(frozenset(groups), frozenset(new_rel))]

        targets: list[ast.AST] = []
        value: ast.AST | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not targets:
            return [state]

        groups, new_rel = set(held), set(released)
        acquires = self._value_acquires(value)
        aliases = self._alias_sources(value, held)
        value_names = _names_in(value)
        for target in targets:
            if isinstance(target, ast.Name):
                name = target.id
                if acquires:
                    self._bind_acquire(groups, new_rel, name, stmt)
                elif aliases:
                    # join the target into the viewed buffer's group
                    if name not in aliases:
                        self._drop_name(groups, name)
                        src_group = _group_of(frozenset(groups),
                                              next(iter(aliases)))
                        if src_group is not None:
                            groups.discard(src_group)
                            groups.add(src_group | {name})
                elif name not in value_names:
                    # held name rebound to unrelated value: handle lost
                    if self._drop_name(groups, name) is not None:
                        self.events.leak(name, "rebind", stmt)
            elif isinstance(target, ast.Attribute):
                for group in list(groups):
                    hit = group & value_names
                    if hit:
                        self.events.escape(min(hit), "attribute", target)
                        groups.discard(group)  # ownership moved on
            elif isinstance(target, (ast.Tuple, ast.List)) and acquires:
                # a, b = acquire(...), acquire(...)
                if isinstance(value, (ast.Tuple, ast.List)) \
                        and len(target.elts) == len(value.elts):
                    for telt, velt in zip(target.elts, value.elts):
                        if (isinstance(telt, ast.Name)
                                and self._value_acquires(velt)):
                            self._bind_acquire(groups, new_rel,
                                               telt.id, stmt)
        return [(frozenset(groups), frozenset(new_rel))]


def analyze_buffers(info: FunctionInfo, graph: CallGraph) -> BufferEvents:
    """Run the lifetime interpreter over one function."""
    return BufferInterp(info, graph).run()


# ---------------------------------------------------------------------------
# lock identity + whole-program lock-order graph
# ---------------------------------------------------------------------------

def _looks_like_lock(name: str) -> bool:
    return "lock" in name.split(".")[-1].lower()


def lock_id_for_expr(expr: ast.AST, info: FunctionInfo,
                     graph: CallGraph) -> str | None:
    """Stable identity for a lock expression, or None.

    ``self._lock`` identifies per class (all instances merge — the same
    approximation the runtime sanitizer documents); module-level locks
    identify per defining module, following import aliases.
    """
    name = dotted_name(expr)
    if not name or not _looks_like_lock(name):
        return None
    parts = name.split(".")
    module = info.module
    if parts[0] == "self" and len(parts) == 2:
        cls = info.cls or "<module>"
        return f"{module.rel}:{cls}.{parts[1]}"
    if len(parts) == 1:
        source = module.alias_source(parts[0])
        if source:
            head, _, lname = source.rpartition(".")
            target = graph.module_for_source(head) if head.strip(".") \
                else None
            if target is not None:
                return f"{target.rel}:{lname}"
        return f"{module.rel}:{parts[0]}"
    if len(parts) == 2:
        source = module.alias_source(parts[0])
        target = graph.module_for_source(source) if source else None
        if target is not None:
            return f"{target.rel}:{parts[1]}"
    return f"{module.rel}:{name}"


@dataclass
class LockEdge:
    """Observed static order: ``first`` held while ``second`` acquired."""

    first: str
    second: str
    module: SourceModule
    node: ast.AST  # the inner acquisition (or call) site
    via: str  # human-readable provenance


class LockOrderGraph:
    """Whole-program static lock-order graph with cycle detection."""

    def __init__(self) -> None:
        self.edges: list[LockEdge] = []
        self._adj: dict[str, set[str]] = {}

    def add(self, edge: LockEdge) -> None:
        if edge.first == edge.second:
            return
        self.edges.append(edge)
        self._adj.setdefault(edge.first, set()).add(edge.second)

    def _reach(self, start: str) -> set[str]:
        seen: set[str] = set()
        frontier = [start]
        while frontier:
            cur = frontier.pop()
            for nxt in self._adj.get(cur, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def cyclic_edges(self) -> list[LockEdge]:
        """Edges participating in at least one order cycle."""
        out = []
        for edge in self.edges:
            if edge.first in self._reach(edge.second):
                out.append(edge)
        return out


def _with_lock_regions(info: FunctionInfo, graph: CallGraph):
    """(lock id, with node, body) for each ``with <lock>:`` in the fn."""
    regions = []
    for node in ast.walk(info.node):
        if not isinstance(node, ast.With):
            continue
        for item in node.items:
            lock = lock_id_for_expr(item.context_expr, info, graph)
            if lock is not None:
                regions.append((lock, node, node.body))
    return regions


def locks_acquired_in(key: str, graph: CallGraph,
                      depth: int = 3) -> set[str]:
    """Lock ids acquired by ``key`` or its transitive callees."""
    locks: set[str] = set()
    for k in {key} | graph.transitive_callees(key, depth=depth):
        info = graph.functions.get(k)
        if info is None:
            continue
        for lock, _node, _body in _with_lock_regions(info, graph):
            locks.add(lock)
    return locks


def build_lock_graph(index: ProjectIndex) -> LockOrderGraph:
    """Build (and cache) the whole-program static lock-order graph."""
    cached = getattr(index, "_lock_graph", None)
    if cached is not None:
        return cached
    graph = CallGraph.for_index(index)
    order = LockOrderGraph()
    for key, info in graph.functions.items():
        for lock, node, body in _with_lock_regions(info, graph):
            for sub in body:
                for inner in ast.walk(sub):
                    # direct nesting: with A: ... with B:
                    if isinstance(inner, ast.With):
                        for item in inner.items:
                            blk = lock_id_for_expr(item.context_expr,
                                                   info, graph)
                            if blk is not None:
                                order.add(LockEdge(
                                    lock, blk, info.module, inner,
                                    via=f"nested in {info.qualname}"))
                    # indirect: a call made while A is held reaches B
                    elif isinstance(inner, ast.Call):
                        target = graph.resolve_call(info, inner)
                        if target is None:
                            continue
                        for blk in locks_acquired_in(target, graph):
                            order.add(LockEdge(
                                lock, blk, info.module, inner,
                                via=(f"{info.qualname} -> "
                                     f"{graph.functions[target].qualname}"
                                     if target in graph.functions
                                     else info.qualname)))
    index._lock_graph = order  # type: ignore[attr-defined]
    return order
