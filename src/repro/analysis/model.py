"""Findings and severities — the analyzer's result vocabulary."""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Ordered severity levels; higher is worse.

    The CLI's ``--fail-level`` compares against this ordering, and the
    SARIF exporter maps ``ERROR -> "error"``, ``WARNING -> "warning"``,
    ``INFO -> "note"``.
    """

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r}; known: info, warning, error"
            ) from None

    @property
    def sarif_level(self) -> str:
        return {Severity.INFO: "note",
                Severity.WARNING: "warning",
                Severity.ERROR: "error"}[self]


@dataclass
class Finding:
    """One rule violation at one source location.

    ``path`` is stored relative to the analysis root so findings (and
    baseline fingerprints) are stable across checkouts.
    """

    rule_id: str
    severity: Severity
    message: str
    path: str
    line: int
    col: int = 0
    snippet: str = ""
    extra: dict = field(default_factory=dict)

    def fingerprint(self) -> str:
        """Content-addressed identity used by baseline suppression.

        Deliberately excludes the line *number* so unrelated edits above
        a finding do not invalidate a baseline entry: the identity is
        the rule, the file, and the normalized source line text.
        """
        basis = "\x1f".join(
            (self.rule_id, self.path.replace("\\", "/"),
             " ".join(self.snippet.split()))
        )
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:20]

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "severity": self.severity.name.lower(),
            "message": self.message,
            "path": self.path.replace("\\", "/"),
            "line": self.line,
            "col": self.col,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"
