"""``pressio top`` — a live terminal dashboard for compression activity.

Like ``top(1)`` for a pressio process: a refreshing table of
per-compressor throughput, operation rates, last compression ratio,
and error counts, plus the buffer-pool and pipeline gauges and the
flight-recorder status.  Two data sources, one rendering path:

* **in-process** (default) — the ambient :mod:`repro.obs` registry,
  normalized by rendering to Prometheus text and re-parsing it, so
  local and remote frames are computed from the identical shape;
* **remote** (``--url http://host:9100/metrics``) — any ``/metrics``
  endpoint served by :mod:`repro.obs.server`, scraped with
  :func:`repro.obs.prometheus.fetch`.

Rendering is curses-free: plain ANSI escapes (home + clear-to-end per
frame, no alternate screen), degrading to frame-per-block plain text
with ``--no-ansi`` for dumb terminals and CI logs.  Rates are deltas
between consecutive polls divided by the actual elapsed time, so an
irregular poll cadence still reports true per-second numbers.

Examples::

    pressio top --demo                      # self-contained live demo
    pressio top --url http://127.0.0.1:9100/metrics
    pressio top --iterations 3 --no-ansi    # three frames, plain text
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..obs import prometheus as _prom
from ..obs import runtime as _obs_runtime
from ..obs.prometheus import ParsedExposition

__all__ = ["build_top_parser", "run_top", "compute_frame", "render_frame",
           "TopFrame", "CompressorRow"]

_ANSI_HOME = "\x1b[H"
_ANSI_CLEAR_BELOW = "\x1b[J"
_ANSI_HIDE_CURSOR = "\x1b[?25l"
_ANSI_SHOW_CURSOR = "\x1b[?25h"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_RED = "\x1b[31m"
_GREEN = "\x1b[32m"
_CYAN = "\x1b[36m"
_RESET = "\x1b[0m"


# ---------------------------------------------------------------------------
# sampling
# ---------------------------------------------------------------------------

def sample_local() -> ParsedExposition | None:
    """Scrape the in-process registry (None when collection is off).

    Mirrors what the HTTP endpoint serves: refresh the trace and
    runtime bridges first, then render and re-parse, so a local frame
    is byte-equivalent to scraping this process over the wire.
    """
    registry = _obs_runtime.ACTIVE
    if registry is None:
        return None
    from ..obs import bridge
    from ..trace import runtime as trace_runtime

    ctx = trace_runtime.active_tracer()
    if ctx is not None:
        bridge.ingest_trace(ctx, registry)
    bridge.ingest_runtime(registry)
    return _prom.parse(_prom.render(registry))


def sample_remote(url: str) -> ParsedExposition:
    return _prom.fetch(url)


def _active_span_count() -> int | None:
    """Open spans in the in-process tracer; None when no tracer is on."""
    from ..trace import runtime as trace_runtime

    ctx = trace_runtime.active_tracer()
    if ctx is None:
        return None
    return sum(1 for sp in ctx.spans() if sp.end_ns is None)


def _flight_status() -> str:
    from ..obs import flight as _flight

    rec = _flight.ACTIVE
    if rec is None:
        return "off"
    return (f"on ({min(rec._seq, rec.capacity)}/{rec.capacity} events, "
            f"{len(rec.dumps)} dumps)")


# ---------------------------------------------------------------------------
# frame computation
# ---------------------------------------------------------------------------

def _series_sum(doc: ParsedExposition, name: str,
                **match: str) -> dict[str, float]:
    """Sum a family's samples grouped by the ``plugin`` label.

    ``match`` entries must equal the sample's label exactly; labels not
    mentioned are aggregated over (operation, dtype, direction, ...).
    """
    out: dict[str, float] = {}
    for sample in doc.series(name):
        if any(sample.labels.get(k) != v for k, v in match.items()):
            continue
        plugin = sample.labels.get("plugin", sample.labels.get(
            "compressor", ""))
        out[plugin] = out.get(plugin, 0.0) + sample.value
    return out


def _scalar(doc: ParsedExposition, name: str) -> float | None:
    series = doc.series(name)
    if not series:
        return None
    return sum(s.value for s in series)


@dataclass
class CompressorRow:
    plugin: str
    ops_total: float = 0.0
    ops_per_s: float = 0.0
    bytes_per_s: float = 0.0
    last_ratio: float | None = None
    errors_total: float = 0.0
    errors_per_s: float = 0.0


@dataclass
class TopFrame:
    """Everything one refresh displays, already rate-converted."""

    source: str
    at: float
    rows: list[CompressorRow] = field(default_factory=list)
    pool: dict[str, float] = field(default_factory=dict)
    pipeline: dict[str, float] = field(default_factory=dict)
    active_spans: int | None = None
    flight: str = "n/a"
    quality_count: float | None = None
    total_ops: float = 0.0
    total_errors: float = 0.0


def compute_frame(doc: ParsedExposition,
                  prev: ParsedExposition | None,
                  elapsed: float, source: str) -> TopFrame:
    """Turn a scrape (plus the previous one) into display rows.

    Counters become per-second rates over ``elapsed``; gauges pass
    through.  A counter that *decreased* (process restarted between
    polls) clamps to zero rather than reporting a negative rate.
    """
    frame = TopFrame(source=source, at=time.time())

    ops = _series_sum(doc, "pressio_operations_total")
    in_bytes = _series_sum(doc, "pressio_processed_bytes_total",
                           direction="in")
    errors = _series_sum(doc, "pressio_errors_total")
    ratios = _series_sum(doc, "pressio_last_compression_ratio")

    prev_ops = _series_sum(prev, "pressio_operations_total") if prev else {}
    prev_bytes = (_series_sum(prev, "pressio_processed_bytes_total",
                              direction="in") if prev else {})
    prev_errors = _series_sum(prev, "pressio_errors_total") if prev else {}

    def rate(cur: float, before: float) -> float:
        if elapsed <= 0:
            return 0.0
        return max(0.0, cur - before) / elapsed

    for plugin in sorted(set(ops) | set(errors)):
        frame.rows.append(CompressorRow(
            plugin=plugin or "(unlabelled)",
            ops_total=ops.get(plugin, 0.0),
            ops_per_s=rate(ops.get(plugin, 0.0), prev_ops.get(plugin, 0.0)),
            bytes_per_s=rate(in_bytes.get(plugin, 0.0),
                             prev_bytes.get(plugin, 0.0)),
            last_ratio=ratios.get(plugin),
            errors_total=errors.get(plugin, 0.0),
            errors_per_s=rate(errors.get(plugin, 0.0),
                              prev_errors.get(plugin, 0.0)),
        ))
    frame.rows.sort(key=lambda r: (-r.ops_per_s, -r.ops_total, r.plugin))
    frame.total_ops = sum(r.ops_total for r in frame.rows)
    frame.total_errors = sum(r.errors_total for r in frame.rows)

    for gauge, key in (("pressio_pool_bytes", "bytes"),
                       ("pressio_pool_hits_total", "hits"),
                       ("pressio_pool_misses_total", "misses")):
        value = _scalar(doc, gauge)
        if value is not None:
            frame.pool[key] = value
    for gauge, key in (("pressio_pipeline_inflight", "inflight"),
                       ("pressio_pipeline_inflight_peak", "peak"),
                       ("pressio_pipeline_chunks_total", "chunks")):
        value = _scalar(doc, gauge)
        if value is not None:
            frame.pipeline[key] = value
    frame.quality_count = _scalar(doc, "pressio_quality_ratio_count")
    return frame


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return (f"{value:.0f}{unit}" if unit == "B"
                    else f"{value:.1f}{unit}")
        value /= 1024.0
    return f"{value:.1f}TiB"


def _fmt_num(value: float | None, digits: int = 1) -> str:
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def render_frame(frame: TopFrame, ansi: bool = True) -> str:
    """One frame of the dashboard as a string (no cursor control)."""
    def style(code: str, text: str) -> str:
        return f"{code}{text}{_RESET}" if ansi else text

    clock = time.strftime("%H:%M:%S", time.localtime(frame.at))
    lines = [
        style(_BOLD, f"pressio top - {clock}  source: {frame.source}"),
        (f"ops: {frame.total_ops:.0f} total   "
         f"errors: "
         + (style(_RED, f"{frame.total_errors:.0f}")
            if frame.total_errors else "0")
         + f"   spans active: "
         + ("-" if frame.active_spans is None else str(frame.active_spans))
         + f"   flight: {frame.flight}"),
    ]
    extras = []
    if frame.pool:
        extras.append(
            "pool: " + _fmt_bytes(frame.pool.get("bytes", 0.0))
            + f" held, {frame.pool.get('hits', 0):.0f} hits"
            + f"/{frame.pool.get('misses', 0):.0f} misses")
    if frame.pipeline:
        extras.append(
            f"pipeline: {frame.pipeline.get('inflight', 0):.0f} inflight"
            f" (peak {frame.pipeline.get('peak', 0):.0f}),"
            f" {frame.pipeline.get('chunks', 0):.0f} chunks")
    if frame.quality_count is not None:
        extras.append(f"quality samples: {frame.quality_count:.0f}")
    if extras:
        lines.append("   ".join(extras))
    lines.append("")

    header = (f"{'COMPRESSOR':<16} {'OPS':>8} {'OPS/S':>8} "
              f"{'THROUGHPUT':>12} {'RATIO':>8} {'ERRS':>6} {'ERR/S':>7}")
    lines.append(style(_CYAN, header))
    if not frame.rows:
        lines.append(style(_DIM, "  (no operations recorded yet)"))
    for row in frame.rows:
        errs = f"{row.errors_total:>6.0f}"
        if row.errors_total and ansi:
            errs = style(_RED, errs)
        lines.append(
            f"{row.plugin:<16} {row.ops_total:>8.0f} "
            f"{row.ops_per_s:>8.1f} {_fmt_bytes(row.bytes_per_s) + '/s':>12} "
            f"{_fmt_num(row.last_ratio):>8} {errs} "
            f"{row.errors_per_s:>7.1f}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# demo workload
# ---------------------------------------------------------------------------

def _start_demo(interval: float) -> threading.Event:
    """Round-trip synthetic data on a daemon thread until told to stop."""
    from ..core.data import PressioData
    from ..core.library import Pressio
    from ..datasets import nyx

    stop = threading.Event()

    def work() -> None:
        library = Pressio()
        compressor = library.get_compressor("sz")
        compressor.set_options({"pressio:abs": 1e-4})
        data = PressioData.from_numpy(nyx((24, 24, 24)), copy=False)
        template = PressioData.empty(data.dtype, data.dims)
        while not stop.is_set():
            compressed = compressor.compress(data)
            compressor.decompress(compressed, template)
            stop.wait(interval)

    threading.Thread(target=work, name="pressio-top-demo",
                     daemon=True).start()
    return stop


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def build_top_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pressio top",
        description="live per-compressor activity dashboard "
                    "(in-process registry or a remote /metrics endpoint)",
    )
    parser.add_argument("--url", default=None,
                        help="scrape this /metrics URL instead of the "
                             "in-process registry")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between refreshes (default 1.0)")
    parser.add_argument("--iterations", type=int, default=None,
                        help="render N frames then exit "
                             "(default: until interrupted)")
    parser.add_argument("--no-ansi", action="store_true",
                        help="plain text frames, no cursor control "
                             "(for CI logs and dumb terminals)")
    parser.add_argument("--demo", action="store_true",
                        help="enable metrics and run a synthetic "
                             "round-trip workload in this process")
    return parser


def run_top(argv: list[str]) -> int:
    """The ``pressio top`` subcommand."""
    args = build_top_parser().parse_args(argv)
    ansi = not args.no_ansi and sys.stdout.isatty()
    demo_stop: threading.Event | None = None
    if args.demo:
        if args.url:
            print("error: --demo drives the in-process registry; "
                  "drop --url", file=sys.stderr)
            return 2
        if _obs_runtime.ACTIVE is None:
            _obs_runtime.enable_metrics()
        demo_stop = _start_demo(max(0.05, args.interval / 4))

    prev: ParsedExposition | None = None
    prev_at: float | None = None
    frames = 0
    out = sys.stdout
    try:
        if ansi:
            out.write(_ANSI_HIDE_CURSOR)
        while args.iterations is None or frames < args.iterations:
            if frames:
                time.sleep(args.interval)
            try:
                doc = (sample_remote(args.url) if args.url
                       else sample_local())
            except (OSError, ValueError) as e:
                print(f"error: scraping {args.url}: {e}", file=sys.stderr)
                return 1
            now = time.monotonic()
            if doc is None:
                print("metrics collection is disabled in this process; "
                      "call repro.obs.enable_metrics(), pass --demo, or "
                      "point --url at a serve-metrics endpoint",
                      file=sys.stderr)
                return 1
            elapsed = (now - prev_at) if prev_at is not None else 0.0
            frame = compute_frame(doc, prev, elapsed,
                                  source=args.url or "in-process")
            if not args.url:
                frame.active_spans = _active_span_count()
                frame.flight = _flight_status()
            body = render_frame(frame, ansi=ansi)
            if ansi:
                out.write(_ANSI_HOME + _ANSI_CLEAR_BELOW + body + "\n")
            else:
                out.write(body + "\n\n")
            out.flush()
            prev, prev_at = doc, now
            frames += 1
    except KeyboardInterrupt:
        pass
    finally:
        if ansi:
            out.write(_ANSI_SHOW_CURSOR)
            out.flush()
        if demo_stop is not None:
            demo_stop.set()
    return 0
