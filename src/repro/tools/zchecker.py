"""``pressio-zchecker``: compression-quality assessment harness.

The Z-Checker analog: sweep compressors x error bounds over a dataset
and tabulate quality metrics (ratio, PSNR, max error, Pearson r, KS
p-value, autocorrelation of error).  Because the uniform interface
provides every compressor and every metric, the whole assessment loop is
a few dozen lines (the 405-line row of Table II, against 3052 lines of
per-compressor native code).
"""

from __future__ import annotations

import argparse
import dataclasses

import numpy as np

from ..core.data import PressioData
from ..core.library import Pressio

__all__ = ["AssessmentRow", "assess", "format_report", "main"]

DEFAULT_METRICS = ("size", "time", "error_stat", "pearson", "ks_test",
                   "autocorr")


@dataclasses.dataclass
class AssessmentRow:
    """One (compressor, bound) cell of the assessment matrix."""

    compressor_id: str
    bound_name: str
    bound_value: float
    compression_ratio: float
    bit_rate: float
    psnr: float | None
    max_error: float | None
    pearson_r: float | None
    ks_pvalue: float | None
    lag1_autocorr: float | None
    compress_ms: float | None
    decompress_ms: float | None


def assess(data: np.ndarray, compressor_ids: list[str], bounds: list[float],
           bound_name: str = "pressio:abs",
           metric_ids: tuple[str, ...] = DEFAULT_METRICS,
           extra_options: dict | None = None) -> list[AssessmentRow]:
    """Run the full compressor x bound sweep and collect metric rows."""
    library = Pressio()
    input_data = PressioData.from_numpy(np.asarray(data), copy=False)
    rows: list[AssessmentRow] = []
    for cid in compressor_ids:
        for bound in bounds:
            compressor = library.get_compressor(cid)
            if compressor is None:
                raise ValueError(f"unknown compressor {cid!r}: "
                                 f"{library.error_msg()}")
            metrics = library.get_metric(list(metric_ids))
            compressor.set_metrics(metrics)
            options = {bound_name: bound}
            if extra_options:
                options.update(extra_options)
            if compressor.set_options(options) != 0:
                raise ValueError(
                    f"{cid} rejected {options}: {compressor.error_msg()}"
                )
            compressed = compressor.compress(input_data)
            template = PressioData.empty(input_data.dtype, input_data.dims)
            compressor.decompress(compressed, template)
            results = compressor.get_metrics_results()

            def g(key: str):
                value = results.get(key)
                return float(value) if value is not None else None

            rows.append(AssessmentRow(
                compressor_id=cid,
                bound_name=bound_name,
                bound_value=bound,
                compression_ratio=g("size:compression_ratio") or 0.0,
                bit_rate=g("size:bit_rate") or 0.0,
                psnr=g("error_stat:psnr"),
                max_error=g("error_stat:max_error"),
                pearson_r=g("pearson:r"),
                ks_pvalue=g("ks_test:pvalue"),
                lag1_autocorr=g("autocorr:lag1"),
                compress_ms=g("time:compress"),
                decompress_ms=g("time:decompress"),
            ))
    return rows


def format_report(rows: list[AssessmentRow]) -> str:
    """Render rows as the fixed-width table the CLI prints."""
    header = (f"{'compressor':<16}{'bound':>10}{'ratio':>9}{'bitrate':>9}"
              f"{'psnr':>8}{'max_err':>11}{'pearson':>9}{'ks_p':>7}"
              f"{'lag1':>7}{'c_ms':>8}{'d_ms':>8}")
    lines = [header, "-" * len(header)]

    def f(value, width, prec=3):
        if value is None:
            return " " * (width - 3) + "n/a"
        return f"{value:>{width}.{prec}g}"

    for r in rows:
        lines.append(
            f"{r.compressor_id:<16}{r.bound_value:>10.1e}"
            f"{r.compression_ratio:>9.2f}{r.bit_rate:>9.3f}"
            f"{f(r.psnr, 8)}{f(r.max_error, 11)}{f(r.pearson_r, 9, 5)}"
            f"{f(r.ks_pvalue, 7, 2)}{f(r.lag1_autocorr, 7, 2)}"
            f"{f(r.compress_ms, 8)}{f(r.decompress_ms, 8)}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="pressio-zchecker",
                                     description=__doc__)
    parser.add_argument("--input", "-i", default=None,
                        help="flat float64 binary input path")
    parser.add_argument("--dims", "-d", default=None,
                        help="comma separated dims for --input")
    parser.add_argument("--synthetic", default="nyx",
                        help="synthetic dataset when no --input is given")
    parser.add_argument("--compressors", "-z", default="sz,zfp,mgard",
                        help="comma separated compressor ids")
    parser.add_argument("--bounds", "-b", default="1e-5,1e-4,1e-3,1e-2",
                        help="comma separated bound values")
    parser.add_argument("--bound-option", default="pressio:abs",
                        help="which option the bounds set")
    args = parser.parse_args(argv)

    if args.input:
        if not args.dims:
            parser.error("--dims is required with --input")
        dims = tuple(int(d) for d in args.dims.split(","))
        data = np.fromfile(args.input, dtype=np.float64).reshape(dims)
    else:
        from ..datasets import DATASET_GENERATORS

        data = DATASET_GENERATORS[args.synthetic]()
    rows = assess(
        data,
        [c for c in args.compressors.split(",") if c],
        [float(b) for b in args.bounds.split(",") if b],
        bound_name=args.bound_option,
    )
    print(format_report(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
