"""The ``pressio`` command line tool (LibPressio-Tools analog).

One CLI serves *every* registered compressor, IO format, and metric —
the compressor-agnostic tooling claim from the paper's introduction.
Unlike the single-compressor CLIs it replaces (sz/zfp/mgard each ship
their own), this one can also read/write container formats (hdf5mini)
and print introspection data.

Examples::

    pressio --list
    pressio --compressor sz --synthetic nyx --dims 48,48,48 \
            --option sz:error_bound_mode_str=abs \
            --option sz:abs_err_bound=1e-4 \
            --metrics size,time,error_stat --print-metrics
    pressio --compressor zfp --input data.npy --input-format numpy \
            --option zfp:accuracy=1e-3 --save-compressed out.zfp

The ``trace`` subcommand round-trips a dataset with span tracing on and
prints the span tree plus a per-plugin aggregate report; ``--jsonl`` and
``--chrome-trace`` export the raw events (the latter opens in
``chrome://tracing`` / Perfetto)::

    pressio trace --compressor chunking \
            --option chunking:compressor=sz_threadsafe \
            --option pressio:abs=1e-4 \
            --synthetic nyx --dims 32,32,32 \
            --jsonl trace.jsonl --chrome-trace chrome.json

The ``serve-metrics`` subcommand exposes the process on ``/metrics``
(Prometheus text format) and ``/healthz``; ``bench`` runs the
compressor x dataset x bound grid, writes a timestamped
``BENCH_<date>.json``, and prints a regression verdict against the
previous artifact (``--profile`` captures a stage profile per
configuration so a firing gate names the guilty stage)::

    pressio serve-metrics --port 9100 --demo
    pressio bench --quick --output-dir bench-results

The ``profile`` subcommand attributes a round trip to pipeline stages
(exclusive/inclusive time, bandwidth, allocations), writes flamegraph
input, and diffs two profile artifacts by stage path::

    pressio profile --compressor sz --synthetic nyx --dims 32,32,32 \
            --option pressio:abs=1e-4 --flamegraph prof.folded
    pressio profile --diff before.json after.json

The ``conformance`` subcommand verifies every registered compressor
(and representative meta-compressor stacks) against its advertised
contract: error-bound oracles, differential stack checks, stream-shape
contracts, seeded API sequences, and golden-stream byte stability::

    pressio conformance --all
    pressio conformance --smoke --json verdicts.json
    pressio conformance --self-test
    pressio conformance --regen-golden
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from ..core.data import PressioData
from ..core.dtype import dtype_from_numpy
from ..core.library import Pressio
from ..core.options import PressioOptions

__all__ = ["main", "build_parser", "build_trace_parser",
           "build_serve_metrics_parser", "run", "run_trace",
           "run_serve_metrics"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pressio",
        description="generic lossy/lossless compression for dense tensors",
    )
    parser.add_argument("--list", action="store_true",
                        help="list available compressors, metrics, and io")
    parser.add_argument("--compressor", "-z", default=None,
                        help="compressor plugin id")
    parser.add_argument("--input", "-i", default=None, help="input path")
    parser.add_argument("--input-format", "-I", default="posix",
                        help="io plugin for reading (posix, numpy, csv, ...)")
    parser.add_argument("--synthetic", default=None,
                        help="use a synthetic dataset instead of --input "
                             "(hurricane_cloud, nyx, hacc, scale_letkf)")
    parser.add_argument("--dtype", "-t", default="float64",
                        help="element type for typeless formats")
    parser.add_argument("--dims", "-d", default=None,
                        help="comma-separated dims for typeless formats")
    parser.add_argument("--option", "-o", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="set a compressor option (repeatable)")
    parser.add_argument("--metrics", "-m", default="size,time",
                        help="comma-separated metric plugin ids")
    parser.add_argument("--print-metrics", "-M", action="store_true",
                        help="print metric results after the round trip")
    parser.add_argument("--print-options", action="store_true",
                        help="print the compressor's options and exit")
    parser.add_argument("--print-config", action="store_true",
                        help="print the compressor's configuration and exit")
    parser.add_argument("--print-docs", action="store_true",
                        help="print the compressor's documentation and exit")
    parser.add_argument("--save-compressed", "-c", default=None,
                        help="write the compressed stream to this path")
    parser.add_argument("--save-decompressed", "-w", default=None,
                        help="write the decompressed data to this path")
    parser.add_argument("--output-format", "-W", default="posix",
                        help="io plugin for --save-decompressed")
    parser.add_argument("--no-decompress", action="store_true",
                        help="skip the decompression phase")
    return parser


def _parse_option_value(raw: str):
    """Infer int/float/string from a KEY=VALUE right-hand side."""
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


def _load_input(args, library: Pressio) -> PressioData:
    if args.synthetic:
        from ..datasets import DATASET_GENERATORS

        gen = DATASET_GENERATORS.get(args.synthetic)
        if gen is None:
            raise SystemExit(
                f"unknown synthetic dataset {args.synthetic!r}; "
                f"known: {sorted(DATASET_GENERATORS)}"
            )
        if args.dims and args.synthetic != "hacc":
            dims = tuple(int(d) for d in args.dims.split(","))
            arr = gen(dims)
        else:
            arr = gen()
        return PressioData.from_numpy(np.asarray(arr), copy=False)
    if not args.input:
        raise SystemExit("one of --input or --synthetic is required")
    io = library.get_io(args.input_format)
    if io is None:
        raise SystemExit(f"unknown io plugin: {library.error_msg()}")
    io.set_options({"io:path": args.input})
    template = None
    if args.dims:
        dims = tuple(int(d) for d in args.dims.split(","))
        template = PressioData.empty(
            dtype_from_numpy(np.dtype(args.dtype)), dims)
    return io.read(template)


def _print_options(title: str, options: PressioOptions) -> None:
    print(f"{title}:")
    for key in sorted(options.keys()):
        opt = options.get_option(key)
        value = opt.get() if opt.has_value() else "<unset>"
        print(f"  {key} = {value!r} ({opt.type.name})")


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pressio trace",
        description="round-trip a dataset with span tracing and report "
                    "where the time went",
    )
    parser.add_argument("--compressor", "-z", required=True,
                        help="compressor plugin id")
    parser.add_argument("--input", "-i", default=None, help="input path")
    parser.add_argument("--input-format", "-I", default="posix",
                        help="io plugin for reading (posix, numpy, csv, ...)")
    parser.add_argument("--synthetic", default=None,
                        help="use a synthetic dataset instead of --input")
    parser.add_argument("--dtype", "-t", default="float64",
                        help="element type for typeless formats")
    parser.add_argument("--dims", "-d", default=None,
                        help="comma-separated dims for typeless formats")
    parser.add_argument("--option", "-o", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="set a compressor option (repeatable)")
    parser.add_argument("--no-decompress", action="store_true",
                        help="trace the compression phase only")
    parser.add_argument("--jsonl", default=None,
                        help="write the span/counter event log to this path")
    parser.add_argument("--chrome-trace", default=None,
                        help="write chrome://tracing JSON to this path")
    parser.add_argument("--no-tree", action="store_true",
                        help="skip printing the span tree")
    parser.add_argument("--no-report", action="store_true",
                        help="skip printing the aggregate report")
    return parser


def run_trace(argv: list[str]) -> int:
    """The ``pressio trace`` subcommand."""
    from ..trace import (format_report, render_tree, tracing,
                         write_chrome_trace, write_jsonl)

    args = build_trace_parser().parse_args(argv)
    library = Pressio()
    compressor = library.get_compressor(args.compressor)
    if compressor is None:
        print(f"error: {library.error_msg()}", file=sys.stderr)
        return 2

    options = PressioOptions()
    for entry in args.option:
        if "=" not in entry:
            print(f"error: bad --option {entry!r}, expected KEY=VALUE",
                  file=sys.stderr)
            return 2
        key, _, raw = entry.partition("=")
        options.set(key, _parse_option_value(raw))
    if len(options) and compressor.set_options(options) != 0:
        print(f"error: {compressor.error_msg()}", file=sys.stderr)
        return 2

    input_data = _load_input(args, library)
    with tracing() as trace:
        compressed = compressor.compress(input_data)
        if not args.no_decompress:
            template = PressioData.empty(input_data.dtype, input_data.dims)
            compressor.decompress(compressed, template)

    if not args.no_tree:
        print("span tree:")
        print(render_tree(trace))
    if not args.no_report:
        if not args.no_tree:
            print()
        print(format_report(trace))
    if args.jsonl:
        lines = write_jsonl(trace, args.jsonl)
        print(f"wrote {lines} events to {args.jsonl}")
    if args.chrome_trace:
        events = write_chrome_trace(trace, args.chrome_trace)
        print(f"wrote {events} chrome trace events to {args.chrome_trace}")
    return 0


def build_serve_metrics_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pressio serve-metrics",
        description="serve /metrics (Prometheus text format) and "
                    "/healthz for this process",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=9100,
                        help="bind port; 0 picks a free one (default 9100)")
    parser.add_argument("--duration", type=float, default=None,
                        help="serve for N seconds then exit "
                             "(default: until interrupted)")
    parser.add_argument("--demo", action="store_true",
                        help="run a synthetic round-trip workload so the "
                             "endpoint has live data")
    parser.add_argument("--demo-interval", type=float, default=2.0,
                        help="seconds between demo round trips")
    parser.add_argument("--json-logs", action="store_true",
                        help="emit structured JSON logs on stderr")
    parser.add_argument("--auto-port", action="store_true",
                        help="if the requested port is taken, fall back "
                             "to an OS-assigned one and print it")
    return parser


def run_serve_metrics(argv: list[str]) -> int:
    """The ``pressio serve-metrics`` subcommand."""
    import time as _time

    from .. import obs

    args = build_serve_metrics_parser().parse_args(argv)
    if args.json_logs:
        obs.configure_logging()
    try:
        # the port-0 fallback lives inside bind_with_fallback, the same
        # path `pressio serve` binds through — neither CLI rolls its own
        server = obs.start_server(port=args.port, host=args.host,
                                  auto_port=args.auto_port)
    except obs.PortInUseError as e:
        print(f"error: {e} (retry with --auto-port to pick a "
              f"free one)", file=sys.stderr)
        return 1
    if args.auto_port and args.port not in (0, server.port):
        print(f"port {args.port} in use; bound port {server.port} instead")
    print(f"serving metrics on {server.url}/metrics "
          f"(health: {server.url}/healthz)")
    deadline = (_time.monotonic() + args.duration
                if args.duration is not None else None)
    try:
        if args.demo:
            library = Pressio()
            compressor = library.get_compressor("sz")
            compressor.set_options({"pressio:abs": 1e-4})
            from ..datasets import nyx

            data = PressioData.from_numpy(nyx((24, 24, 24)), copy=False)
            template = PressioData.empty(data.dtype, data.dims)
            while deadline is None or _time.monotonic() < deadline:
                compressed = compressor.compress(data)
                compressor.decompress(compressed, template)
                _time.sleep(args.demo_interval)
        elif deadline is not None:
            _time.sleep(max(0.0, deadline - _time.monotonic()))
        else:
            while True:
                _time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def run(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return run_trace(argv[1:])
    if argv and argv[0] == "serve-metrics":
        return run_serve_metrics(argv[1:])
    if argv and argv[0] == "serve":
        from ..serve.cli import run_serve

        return run_serve(argv[1:])
    if argv and argv[0] == "client":
        from ..serve.cli import run_client

        return run_client(argv[1:])
    if argv and argv[0] == "top":
        from .top import run_top

        return run_top(argv[1:])
    if argv and argv[0] == "bench":
        from ..obs.bench import run_bench

        return run_bench(argv[1:])
    if argv and argv[0] == "profile":
        from ..profile.cli import run_profile

        return run_profile(argv[1:])
    if argv and argv[0] == "lint":
        from ..analysis.cli import run_lint

        return run_lint(argv[1:])
    if argv and argv[0] == "conformance":
        from ..conformance.cli import run_conformance

        return run_conformance(argv[1:])
    if argv and argv[0] == "sanitize":
        from ..sanitize.cli import run_sanitize

        return run_sanitize(argv[1:])
    args = build_parser().parse_args(argv)
    library = Pressio()

    if args.list:
        print("compressors:", ", ".join(library.supported_compressors()))
        print("metrics:    ", ", ".join(library.supported_metrics()))
        print("io:         ", ", ".join(library.supported_io()))
        return 0

    if not args.compressor:
        print("error: --compressor is required (or use --list)",
              file=sys.stderr)
        return 2
    compressor = library.get_compressor(args.compressor)
    if compressor is None:
        print(f"error: {library.error_msg()}", file=sys.stderr)
        return 2

    if args.print_docs:
        _print_options("documentation", compressor.get_documentation())
        return 0
    if args.print_config:
        _print_options("configuration", compressor.get_configuration())
        return 0

    options = PressioOptions()
    for entry in args.option:
        if "=" not in entry:
            print(f"error: bad --option {entry!r}, expected KEY=VALUE",
                  file=sys.stderr)
            return 2
        key, _, raw = entry.partition("=")
        options.set(key, _parse_option_value(raw))
    if len(options):
        if compressor.check_options(options) != 0:
            print(f"error: {compressor.error_msg()}", file=sys.stderr)
            return 2
        if compressor.set_options(options) != 0:
            print(f"error: {compressor.error_msg()}", file=sys.stderr)
            return 2

    if args.print_options:
        _print_options("options", compressor.get_options())
        return 0

    metric_ids = [m for m in args.metrics.split(",") if m]
    if metric_ids:
        metrics = library.get_metric(metric_ids)
        compressor.set_metrics(metrics)

    input_data = _load_input(args, library)
    compressed = compressor.compress(input_data)
    if args.save_compressed:
        with open(args.save_compressed, "wb") as fh:
            fh.write(compressed.to_bytes())

    if not args.no_decompress:
        template = PressioData.empty(input_data.dtype, input_data.dims)
        decompressed = compressor.decompress(compressed, template)
        if args.save_decompressed:
            out_io = library.get_io(args.output_format)
            out_io.set_options({"io:path": args.save_decompressed})
            out_io.write(decompressed)

    if args.print_metrics:
        _print_options("metrics", compressor.get_metrics_results())
    return 0


def main() -> None:
    raise SystemExit(run())


if __name__ == "__main__":
    main()
