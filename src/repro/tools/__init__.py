"""Command-line tools built on the uniform interface.

* :mod:`repro.tools.cli` — the ``pressio`` command (compress/decompress/
  analyze any registered compressor against any registered IO format);
* :mod:`repro.tools.fuzzer` — random-input robustness fuzzer;
* :mod:`repro.tools.zchecker` — compression-quality assessment harness;
* :mod:`repro.tools.loc` — the normalized line-of-code counter used by
  the Table II benchmark;
* :mod:`repro.tools.external_worker` — subprocess entry point for the
  ``external`` compressor.
"""
