"""Worker process for the ``external`` compressor.

Runs in a fresh interpreter: the wall-clock cost of importing this
module, NumPy, and the plugin registry is precisely the "loading an
interpreter" overhead the paper's Section V quantifies.

When the parent hands down a ``pressio-spanwire/1`` context via
``PRESSIO_TRACE_CONTEXT`` (see :mod:`repro.trace.propagate`), the
worker traces its own execution — init, I/O, and the inner plugin's
stage spans — under a root ``worker`` span and dumps the fragments to
the parent's sink file on exit, success or failure, so the parent can
stitch them into one cross-process tree.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from ..core.data import PressioData
from ..core.dtype import dtype_from_numpy
from ..core.library import Pressio
from ..trace import propagate as _propagate
from ..trace import runtime as _trace


def _parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--action", choices=("compress", "decompress"),
                        required=True)
    parser.add_argument("--compressor", required=True)
    parser.add_argument("--config", default="{}")
    parser.add_argument("--input", required=True)
    parser.add_argument("--output", required=True)
    parser.add_argument("--dtype", required=True)
    parser.add_argument("--dims", required=True)
    parser.add_argument("--init-cost-ms", type=float, default=0.0)
    return parser.parse_args(argv)


def _run(args: argparse.Namespace) -> int:
    if args.init_cost_ms > 0:
        # simulate expensive initialization (e.g. MPI_Init) with a sleep
        with _trace.stage("worker:init", init_cost_ms=args.init_cost_ms):
            time.sleep(args.init_cost_ms / 1000.0)

    dims = tuple(int(d) for d in args.dims.split(",") if d)
    np_dtype = np.dtype(args.dtype)
    library = Pressio()
    compressor = library.get_compressor(args.compressor)
    if compressor is None:
        print(f"unknown compressor {args.compressor}", file=sys.stderr)
        return 2
    config = json.loads(args.config)
    if config and compressor.set_options(config) != 0:
        print(f"bad options: {compressor.error_msg()}", file=sys.stderr)
        return 3

    if args.action == "compress":
        with _trace.stage("worker:read_input", path=args.input):
            arr = np.fromfile(args.input, dtype=np_dtype).reshape(dims)
        compressed = compressor.compress(PressioData.from_numpy(arr, copy=False))
        with _trace.stage("worker:write_output", path=args.output):
            with open(args.output, "wb") as fh:
                fh.write(compressed.to_bytes())
    else:
        with _trace.stage("worker:read_input", path=args.input):
            with open(args.input, "rb") as fh:
                stream = fh.read()
        template = PressioData.empty(dtype_from_numpy(np_dtype), dims)
        out = compressor.decompress(PressioData.from_bytes(stream), template)
        with _trace.stage("worker:write_output", path=args.output):
            np.ascontiguousarray(out.to_numpy()).tofile(args.output)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(argv)
    remote = _propagate.extract()
    ctx = _propagate.begin_child(remote, name="external-worker")
    try:
        if ctx is None:
            return _run(args)
        with ctx.span("worker", pid=os.getpid(), action=args.action,
                      compressor=args.compressor):
            return _run(args)
    finally:
        _propagate.end_child(ctx, remote)


if __name__ == "__main__":
    raise SystemExit(main())
