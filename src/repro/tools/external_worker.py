"""Worker process for the ``external`` compressor.

Runs in a fresh interpreter: the wall-clock cost of importing this
module, NumPy, and the plugin registry is precisely the "loading an
interpreter" overhead the paper's Section V quantifies.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from ..core.data import PressioData
from ..core.dtype import dtype_from_numpy
from ..core.library import Pressio


def _parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--action", choices=("compress", "decompress"),
                        required=True)
    parser.add_argument("--compressor", required=True)
    parser.add_argument("--config", default="{}")
    parser.add_argument("--input", required=True)
    parser.add_argument("--output", required=True)
    parser.add_argument("--dtype", required=True)
    parser.add_argument("--dims", required=True)
    parser.add_argument("--init-cost-ms", type=float, default=0.0)
    return parser.parse_args(argv)


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(argv)
    if args.init_cost_ms > 0:
        # simulate expensive initialization (e.g. MPI_Init) with a sleep
        time.sleep(args.init_cost_ms / 1000.0)

    dims = tuple(int(d) for d in args.dims.split(",") if d)
    np_dtype = np.dtype(args.dtype)
    library = Pressio()
    compressor = library.get_compressor(args.compressor)
    if compressor is None:
        print(f"unknown compressor {args.compressor}", file=sys.stderr)
        return 2
    config = json.loads(args.config)
    if config and compressor.set_options(config) != 0:
        print(f"bad options: {compressor.error_msg()}", file=sys.stderr)
        return 3

    if args.action == "compress":
        arr = np.fromfile(args.input, dtype=np_dtype).reshape(dims)
        compressed = compressor.compress(PressioData.from_numpy(arr, copy=False))
        with open(args.output, "wb") as fh:
            fh.write(compressed.to_bytes())
    else:
        with open(args.input, "rb") as fh:
            stream = fh.read()
        template = PressioData.empty(dtype_from_numpy(np_dtype), dims)
        out = compressor.decompress(PressioData.from_bytes(stream), template)
        np.ascontiguousarray(out.to_numpy()).tofile(args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
