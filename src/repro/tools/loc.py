"""Normalized lines-of-code counting (the paper's cloc methodology).

Table II counts *normalized client code*: files are formatted uniformly
(the paper runs clang-format; we normalize whitespace), then blank lines
and comments are excluded.  Supports the languages appearing in the
Table II tasks: Python, C/C++, Julia, R, and Rust.
"""

from __future__ import annotations

import os
import re
from typing import Iterable

__all__ = ["count_lines", "count_file", "count_tree", "LANGUAGES"]

LANGUAGES = {
    ".py": "python",
    ".c": "c",
    ".h": "c",
    ".cc": "cpp",
    ".cpp": "cpp",
    ".hpp": "cpp",
    ".jl": "julia",
    ".r": "r",
    ".R": "r",
    ".rs": "rust",
}

_LINE_COMMENT = {
    "python": "#",
    "julia": "#",
    "r": "#",
    "c": "//",
    "cpp": "//",
    "rust": "//",
}

_BLOCK_COMMENT = {
    "c": ("/*", "*/"),
    "cpp": ("/*", "*/"),
    "rust": ("/*", "*/"),
    "julia": ("#=", "=#"),
}

_PY_DOCSTRING = re.compile(r'^\s*[ru]*("""|\'\'\')')


def count_lines(source: str, language: str = "python") -> int:
    """Count non-blank, non-comment lines of ``source``.

    Python docstrings count as comments (documentation), matching how
    cloc treats them and keeping the comparison conservative for us:
    our heavily-documented client code is not rewarded.
    """
    marker = _LINE_COMMENT.get(language, "#")
    block = _BLOCK_COMMENT.get(language)
    count = 0
    in_block = False
    in_docstring: str | None = None
    for raw in source.splitlines():
        line = raw.strip()
        if not line:
            continue
        if language == "python":
            if in_docstring is not None:
                if in_docstring in line:
                    in_docstring = None
                continue
            m = _PY_DOCSTRING.match(line)
            if m:
                quote = m.group(1)
                rest = line[m.end():]
                if quote not in rest:
                    in_docstring = quote
                continue
        if block is not None:
            if in_block:
                if block[1] in line:
                    in_block = False
                    tail = line.split(block[1], 1)[1].strip()
                    if tail and not tail.startswith(marker):
                        count += 1
                continue
            if line.startswith(block[0]):
                if block[1] not in line:
                    in_block = True
                continue
        if line.startswith(marker):
            continue
        count += 1
    return count


def count_file(path: str | os.PathLike) -> int:
    """Count one file, inferring the language from the extension."""
    ext = os.path.splitext(str(path))[1]
    language = LANGUAGES.get(ext)
    if language is None:
        raise ValueError(f"unsupported extension {ext!r} for {path}")
    with open(path, encoding="utf-8") as fh:
        return count_lines(fh.read(), language)


def count_tree(root: str | os.PathLike,
               extensions: Iterable[str] | None = None) -> dict[str, int]:
    """Count every supported file under ``root``; returns path -> lines."""
    wanted = set(extensions) if extensions else set(LANGUAGES)
    results: dict[str, int] = {}
    for dirpath, _dirs, files in os.walk(root):
        for name in sorted(files):
            ext = os.path.splitext(name)[1]
            if ext in wanted and ext in LANGUAGES:
                full = os.path.join(dirpath, name)
                results[full] = count_file(full)
    return results
