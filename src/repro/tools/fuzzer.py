"""``pressio-fuzz``: random-input robustness testing for compressors.

The LibPressio-Fuzz analog: throws randomized inputs (shapes, dtypes,
value distributions, degenerate sizes) and randomly corrupted streams at
a compressor, checking three invariants:

1. compression either succeeds or fails with a *typed* PressioError —
   never an unhandled crash;
2. successful round trips honor the configured absolute error bound;
3. decompressing corrupted streams never returns silently wrong shapes —
   it either raises PressioError or produces a buffer of the right
   dtype/dims (value corruption is expected; memory-unsafety analogs are
   not).

Because every compressor shares one interface, this single fuzzer covers
the entire plugin ecosystem — the paper's 24-line fuzzer (Table II).
"""

from __future__ import annotations

import argparse
import dataclasses

import numpy as np

from ..core.data import PressioData
from ..core.library import Pressio
from ..core.status import PressioError
from ..obs import runtime as _obs

__all__ = ["FuzzReport", "fuzz_compressor", "main"]


@dataclasses.dataclass
class FuzzReport:
    """Outcome counts of one fuzzing campaign."""

    compressor_id: str
    iterations: int = 0
    ok: int = 0
    clean_rejections: int = 0
    corrupt_detected: int = 0
    corrupt_survived: int = 0
    bound_violations: list[str] = dataclasses.field(default_factory=list)
    crashes: list[str] = dataclasses.field(default_factory=list)

    @property
    def failed(self) -> bool:
        return bool(self.bound_violations or self.crashes)

    def summary(self) -> str:
        return (
            f"{self.compressor_id}: {self.iterations} iterations, "
            f"{self.ok} ok, {self.clean_rejections} clean rejections, "
            f"{self.corrupt_detected} corruptions detected, "
            f"{self.corrupt_survived} corruptions tolerated, "
            f"{len(self.bound_violations)} bound violations, "
            f"{len(self.crashes)} crashes"
        )


def _random_input(rng: np.random.Generator) -> tuple[np.ndarray, float]:
    """A random array and a value scale for bound selection."""
    ndim = int(rng.integers(1, 4))
    dims = tuple(int(rng.integers(1, 20)) for _ in range(ndim))
    kind = rng.integers(0, 4)
    scale = float(10.0 ** rng.integers(-3, 4))
    if kind == 0:
        arr = rng.standard_normal(dims) * scale
    elif kind == 1:
        arr = np.zeros(dims)
    elif kind == 2:
        arr = rng.uniform(-scale, scale, size=dims)
    else:
        arr = np.full(dims, scale)
    dtype = np.float32 if rng.integers(0, 2) else np.float64
    return arr.astype(dtype), scale


def fuzz_compressor(compressor_id: str, iterations: int = 100,
                    seed: int = 0, corrupt_every: int = 5) -> FuzzReport:
    """Run a fuzzing campaign against one compressor plugin."""
    library = Pressio()
    report = FuzzReport(compressor_id)
    rng = np.random.default_rng(seed)
    for i in range(iterations):
        report.iterations += 1
        compressor = library.get_compressor(compressor_id)
        arr, scale = _random_input(rng)
        bound = scale * float(10.0 ** rng.integers(-6, -1))
        compressor.set_options({"pressio:abs": bound})
        # only check the abs bound against plugins that advertise it —
        # compressors with other bound families (relative-L2 tthresh,
        # relative bit_grooming, ...) ignore pressio:abs by design
        checks_abs_bound = "pressio:abs" in compressor.get_options()
        data = PressioData.from_numpy(arr)
        try:
            compressed = compressor.compress(data)
        except PressioError:
            report.clean_rejections += 1
            continue
        except Exception as e:  # noqa: BLE001 - this is the fuzz target
            _obs.record_error("fuzz_compress", compressor_id, e)
            report.crashes.append(
                f"iter {i}: compress raised {type(e).__name__}: {e} "
                f"(shape={arr.shape}, dtype={arr.dtype})"
            )
            continue

        corrupt = corrupt_every and (i % corrupt_every == corrupt_every - 1)
        stream = bytearray(compressed.to_bytes())
        if corrupt and len(stream) > 0:
            n_flips = int(rng.integers(1, 8))
            for _ in range(n_flips):
                pos = int(rng.integers(0, len(stream)))
                stream[pos] ^= 1 << int(rng.integers(0, 8))
        template = PressioData.empty(data.dtype, data.dims)
        try:
            out = compressor.decompress(
                PressioData.from_bytes(bytes(stream)), template)
        except PressioError:
            if corrupt:
                report.corrupt_detected += 1
            else:
                report.crashes.append(
                    f"iter {i}: pristine stream rejected "
                    f"(shape={arr.shape}, bound={bound})"
                )
            continue
        except Exception as e:  # noqa: BLE001
            _obs.record_error("fuzz_decompress", compressor_id, e)
            report.crashes.append(
                f"iter {i}: decompress raised {type(e).__name__}: {e} "
                f"(corrupt={corrupt})"
            )
            continue

        if corrupt:
            # surviving corruption is acceptable iff the shape contract held
            if out.dims == data.dims:
                report.corrupt_survived += 1
            else:
                report.crashes.append(
                    f"iter {i}: corrupted stream produced wrong dims "
                    f"{out.dims} != {data.dims}"
                )
            continue

        recon = np.asarray(out.to_numpy(), dtype=np.float64)
        err = float(np.abs(recon - arr.astype(np.float64)).max()) \
            if arr.size else 0.0
        lossy = bool(compressor.get_configuration().get("pressio:lossy", True))
        # float32 data quantized against a float64 bound can pick up one
        # extra half-ulp at the magnitude of the values
        slack = 1.0 + 1e-6
        magnitude = float(np.abs(arr).max()) if arr.size else 0.0
        extra = 2.0 * float(np.finfo(arr.dtype).eps) * magnitude
        if lossy and checks_abs_bound and err > bound * slack + extra:
            report.bound_violations.append(
                f"iter {i}: err {err:.3g} > bound {bound:.3g} "
                f"(shape={arr.shape}, dtype={arr.dtype})"
            )
        else:
            report.ok += 1
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="pressio-fuzz", description=__doc__)
    parser.add_argument("--compressor", "-z", required=True)
    parser.add_argument("--iterations", "-n", type=int, default=100)
    parser.add_argument("--seed", "-s", type=int, default=0)
    parser.add_argument("--corrupt-every", type=int, default=5,
                        help="corrupt every k-th stream (0 = never)")
    args = parser.parse_args(argv)
    report = fuzz_compressor(args.compressor, args.iterations, args.seed,
                             args.corrupt_every)
    print(report.summary())
    for line in report.bound_violations + report.crashes:
        print(" !", line)
    return 1 if report.failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
