"""MGARD's one-shot C++-flavoured API surface.

Real MGARD exposes templated free functions
(``mgard::compress(const TensorMeshHierarchy&, ...)`` in later versions;
``mgard_compress(int itype_flag, ...)`` in 0.1.0).  We mirror the 0.1.0
flavour: a single call carrying data, dimensions, and the tolerance, with
dimension arguments ``(nrow, ncol, nfib)`` and a hard failure when a
dimension has fewer than 3 samples.
"""

from __future__ import annotations

import numpy as np

from . import core

__all__ = ["mgard_compress", "mgard_decompress", "compress", "decompress",
           "MIN_DIM", "max_levels"]

MIN_DIM = core.MIN_DIM
max_levels = core.max_levels
compress = core.compress
decompress = core.decompress


def mgard_compress(itype_flag: int, data: np.ndarray, nrow: int, ncol: int,
                   nfib: int, tol: float, s: float = 0.0) -> bytes:
    """0.1.0-style entry point: ``itype_flag`` 0=float, 1=double.

    ``(nrow, ncol, nfib)`` follow MGARD's convention: unused trailing
    dims are 1 — note that *1 is an invalid size* for a used dimension,
    so ``(nrow, ncol, 1)`` means a 2-D ``nrow x ncol`` problem.
    """
    np_dtype = np.float32 if itype_flag == 0 else np.float64
    dims = [d for d in (nrow, ncol, nfib) if d > 1]
    if not dims:
        dims = [nrow]
    arr = np.asarray(data, dtype=np_dtype).reshape(dims)
    return core.compress(arr, tol, s)


def mgard_decompress(itype_flag: int, stream: bytes, nrow: int, ncol: int,
                     nfib: int) -> np.ndarray:
    """Decompress; dimensions revalidated against the stream header."""
    dims = tuple(d for d in (nrow, ncol, nfib) if d > 1) or (nrow,)
    out = core.decompress(stream, expected_dims=dims)
    np_dtype = np.float32 if itype_flag == 0 else np.float64
    return out.astype(np_dtype, copy=False)
