"""MGARD-style multigrid error-bounded compressor (from scratch)."""

from .api import (
    MIN_DIM,
    compress,
    decompress,
    max_levels,
    mgard_compress,
    mgard_decompress,
)
from .core import compress_stage1, compress_stage2

__all__ = [
    "compress",
    "compress_stage1",
    "compress_stage2",
    "decompress",
    "mgard_compress",
    "mgard_decompress",
    "MIN_DIM",
    "max_levels",
]
