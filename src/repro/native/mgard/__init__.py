"""MGARD-style multigrid error-bounded compressor (from scratch)."""

from .api import (
    MIN_DIM,
    compress,
    decompress,
    max_levels,
    mgard_compress,
    mgard_decompress,
)

__all__ = [
    "compress",
    "decompress",
    "mgard_compress",
    "mgard_decompress",
    "MIN_DIM",
    "max_levels",
]
