"""The MGARD-family multilevel compression pipeline.

MGARD compresses by representing data on a hierarchy of grids: each
level keeps the even-indexed samples as the coarse approximation and
stores, for every odd-indexed sample, the *detail* left over after
predicting it by linear interpolation of its coarse neighbors — a
multigrid decomposition.  Details and the coarsest grid are then
quantized and entropy coded.

Error control: reconstruction applies ``odd = detail + interp(even)``
level by level.  Linear interpolation does not amplify error, so the
final L-infinity error is at most the sum of the per-level quantizer
errors; with ``L`` detail levels each level gets an equal share
``tol / (L + 1)`` (the coarse grid takes the last share), guaranteeing
the requested absolute bound for ``s = 0``.

Like real MGARD 0.1.0 (paper Section V), every dimension must have at
least 3 samples — the decomposition needs interior points — otherwise
:class:`InvalidDimensionsError` is raised rather than compressing.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from ...core.dtype import dtype_from_numpy, dtype_to_numpy
from ...trace import runtime as _trace
from ...core.status import CorruptStreamError, InvalidDimensionsError
from ...encoders.headers import read_header, write_header
from ...encoders.predictors import lorenzo_decode, lorenzo_encode
from ...encoders.quantize import dequantize_uniform, quantize_uniform
from ...encoders.residual import decode_residuals, encode_residuals
from .. import pool as _pool

__all__ = ["compress", "compress_stage1", "compress_stage2", "decompress",
           "MIN_DIM", "max_levels"]

_MAGIC = b"MGD1"
MIN_DIM = 3
_MAX_LEVELS = 12


def max_levels(dims: tuple[int, ...]) -> int:
    """Number of decomposition levels usable for ``dims``.

    A level halves each axis (keeping evens); we stop before any axis
    would drop below :data:`MIN_DIM` samples.
    """
    levels = 0
    cur = list(dims)
    while levels < _MAX_LEVELS:
        nxt = [(n + 1) // 2 for n in cur]
        if any(n < MIN_DIM for n in nxt):
            break
        cur = nxt
        levels += 1
    return levels


# ----------------------------------------------------------------------
# one level of the transform, one axis at a time
# ----------------------------------------------------------------------
def _interp_even(even: np.ndarray, axis: int, n_odd: int) -> np.ndarray:
    """Predict the odd samples from even neighbors by linear interpolation.

    The k-th odd sample sits between even neighbors k and k+1.  When the
    original axis length is even, the last odd sample has no right even
    neighbor and is predicted from its left neighbor alone.
    """

    def take(arr: np.ndarray, start: int, stop: int) -> np.ndarray:
        sl = [slice(None)] * arr.ndim
        sl[axis] = slice(start, stop)
        return arr[tuple(sl)]

    n_even = even.shape[axis]
    # number of odd samples with both neighbors present
    both = n_odd if n_even > n_odd else n_odd - 1
    lo = take(even, 0, n_odd)
    pred = lo.astype(np.float64, copy=True)
    if both > 0:
        hi = take(even, 1, both + 1)
        interior = [slice(None)] * pred.ndim
        interior[axis] = slice(0, both)
        iview = pred[tuple(interior)]
        np.add(take(lo, 0, both), hi, out=iview)
        iview *= 0.5
    return pred


def _split_axis(arr: np.ndarray, axis: int) -> tuple[np.ndarray, np.ndarray]:
    """One lifting step along ``axis``: (even part, detail coefficients)."""
    sl_even = [slice(None)] * arr.ndim
    sl_odd = [slice(None)] * arr.ndim
    sl_even[axis] = slice(0, None, 2)
    sl_odd[axis] = slice(1, None, 2)
    even = arr[tuple(sl_even)]
    odd = arr[tuple(sl_odd)]
    # the detail reuses the prediction buffer (fresh in _interp_even)
    detail = _interp_even(even, axis, odd.shape[axis])
    np.subtract(odd, detail, out=detail)
    return even, detail


def _merge_axis(even: np.ndarray, detail: np.ndarray, axis: int,
                full_len: int) -> np.ndarray:
    """Inverse of :func:`_split_axis`."""
    odd = _interp_even(even, axis, detail.shape[axis])
    np.add(detail, odd, out=odd)
    shape = list(even.shape)
    shape[axis] = full_len
    out = np.empty(shape, dtype=np.float64)
    sl_even = [slice(None)] * out.ndim
    sl_odd = [slice(None)] * out.ndim
    sl_even[axis] = slice(0, None, 2)
    sl_odd[axis] = slice(1, None, 2)
    out[tuple(sl_even)] = even
    out[tuple(sl_odd)] = odd
    return out


def _decompose(arr: np.ndarray, levels: int
               ) -> tuple[np.ndarray, list[list[np.ndarray]], list[tuple[int, ...]]]:
    """Full multilevel decomposition.

    Returns (coarse, details, shapes) where ``details[l]`` holds one
    detail array per axis produced at level ``l`` and ``shapes[l]`` is
    the grid shape entering level ``l`` (needed for reconstruction).
    """
    current = arr.astype(np.float64, copy=False)
    details: list[list[np.ndarray]] = []
    shapes: list[tuple[int, ...]] = []
    for _ in range(levels):
        shapes.append(current.shape)
        level_details: list[np.ndarray] = []
        for axis in range(current.ndim):
            current, detail = _split_axis(current, axis)
            level_details.append(detail)
        details.append(level_details)
    return current, details, shapes


def _reconstruct(coarse: np.ndarray, details: list[list[np.ndarray]],
                 shapes: list[tuple[int, ...]]) -> np.ndarray:
    current = coarse
    for level in range(len(details) - 1, -1, -1):
        entry_shape = shapes[level]
        for axis in range(current.ndim - 1, -1, -1):
            # axis lengths as they were mid-level: axes < axis already
            # split at this level, axes >= axis still full
            full_len = entry_shape[axis]
            current = _merge_axis(current, details[level][axis], axis, full_len)
    return current


# ----------------------------------------------------------------------
# public pipeline
# ----------------------------------------------------------------------
def _level_bounds(tol: float, levels: int, s: float, ndim: int) -> list[float]:
    """Per-level quantizer budget; uniform for s=0, geometric otherwise.

    Each level performs one split per axis and each split's detail error
    enters the reconstruction additively, so a level's share is divided
    by ``ndim``; the coarse grid takes the final undivided share.  The
    shares sum to ``tol``, guaranteeing the L-infinity bound for s=0.
    """
    n_shares = levels + 1
    if s == 0.0:
        weights = np.full(n_shares, tol / n_shares)
    else:
        weights = np.array([2.0 ** (s * l) for l in range(n_shares)])
        weights = tol * weights / weights.sum()
    bounds = list(weights[:-1] / ndim) + [float(weights[-1])]
    return [float(b) for b in bounds]


def compress_stage1(data: np.ndarray, tol: float, s: float = 0.0,
                    backend: str = "zlib", level: int = 1) -> dict:
    """Numpy-heavy first half: decompose + quantize straight into one
    preallocated (pooled) code buffer, no per-piece concatenation.

    Returns an opaque state for :func:`compress_stage2`; the state may
    alias pooled buffers, so it must be passed to stage 2 exactly once.
    """
    arr = np.asarray(data)
    if tol <= 0:
        raise ValueError("tol must be positive")
    if arr.ndim < 1 or arr.ndim > 3:
        raise InvalidDimensionsError(
            f"mgard supports 1-3 dimensions, got {arr.ndim}"
        )
    if any(d < MIN_DIM for d in arr.shape):
        raise InvalidDimensionsError(
            f"mgard requires at least {MIN_DIM} samples per dimension, "
            f"got {arr.shape}"
        )
    if arr.dtype.kind not in "fiu":
        raise TypeError(f"mgard cannot compress dtype {arr.dtype}")
    dtype = dtype_from_numpy(arr.dtype)
    levels = max_levels(arr.shape)
    bounds = _level_bounds(float(tol), levels, float(s), arr.ndim)
    if _trace.ACTIVE is not None:
        span = _trace.stage("mgard:decompose", levels=levels)
    else:
        span = nullcontext()
    with span:
        coarse, details, _shapes = _decompose(
            arr.astype(np.float64, copy=False), levels)
    if _trace.ACTIVE is not None:
        span = _trace.stage("mgard:quantize")
    else:
        span = nullcontext()
    with span:
        # one flat code buffer sized for every piece, quantized into in
        # place of the old build-pieces-then-concatenate sequence
        total = int(sum(d.size for lvl in details for d in lvl)
                    + coarse.size)
        allcodes = _pool.acquire((total,), np.int64)
        try:
            offset = 0
            # finest level gets the first share, coarse grid the last
            for lvl, level_details in enumerate(details):
                eb = bounds[lvl]
                for detail in level_details:
                    n = detail.size
                    scratch = _pool.acquire(detail.shape, np.float64)
                    try:
                        quantize_uniform(
                            detail, eb,
                            out=allcodes[offset:offset + n].reshape(
                                detail.shape),
                            scratch=scratch)
                    finally:
                        _pool.release(scratch)
                    offset += n
            coarse_codes = lorenzo_encode(
                quantize_uniform(coarse, bounds[-1]))
            allcodes[offset:] = coarse_codes.reshape(-1)
        except BaseException:
            _pool.release(allcodes)
            raise
    return {"allcodes": allcodes, "tol": tol, "s": s, "levels": levels,
            "dtype": dtype, "shape": arr.shape, "backend": backend,
            "level": level}


def compress_stage2(state: dict) -> bytes:
    """Entropy-code and frame the output of :func:`compress_stage1`."""
    allcodes = state["allcodes"]
    if _trace.ACTIVE is not None:
        span = _trace.stage("mgard:entropy", backend=state["backend"])
    else:
        span = nullcontext()
    with span:
        try:
            payload = encode_residuals(allcodes, backend=state["backend"],
                                       level=state["level"])
        finally:
            _pool.release(allcodes)
    header = write_header(_MAGIC, state["dtype"], state["shape"],
                          doubles=(float(state["tol"]), float(state["s"])),
                          ints=(state["levels"],))
    return header + payload


def compress(data: np.ndarray, tol: float, s: float = 0.0,
             backend: str = "zlib", level: int = 1) -> bytes:
    """Compress with an absolute L-infinity tolerance ``tol``.

    ``s`` is the smoothness-norm parameter: 0 targets the infinity norm
    (the only mode with a hard guarantee here); nonzero values skew the
    per-level budgets geometrically, as MGARD's s-norms do.
    """
    return compress_stage2(compress_stage1(data, tol, s=s, backend=backend,
                                           level=level))


def decompress(stream: bytes | memoryview,
               expected_dims: tuple[int, ...] | None = None) -> np.ndarray:
    """Decompress an MGARD stream back to an ndarray."""
    dtype, dims, doubles, ints, pos = read_header(stream, _MAGIC)
    if expected_dims is not None and tuple(expected_dims) != dims:
        raise CorruptStreamError(
            f"stream dims {dims} do not match expected {tuple(expected_dims)}"
        )
    tol, s = doubles
    levels = ints[0]
    if not (0 <= levels <= _MAX_LEVELS):
        raise CorruptStreamError(
            f"stream declares {levels} decomposition levels "
            f"(limit {_MAX_LEVELS})")
    if not (tol > 0) or not np.isfinite(tol):
        raise CorruptStreamError(f"stream declares invalid tolerance {tol}")
    bounds = _level_bounds(tol, levels, s, len(dims))
    if _trace.ACTIVE is not None:
        span = _trace.stage("mgard:entropy")
    else:
        span = nullcontext()
    with span:
        allcodes = decode_residuals(bytes(memoryview(stream)[pos:]))
    # replay the decomposition shape computation to slice the code buffer
    details_shapes: list[list[tuple[int, ...]]] = []
    cur = list(dims)
    ndim = len(dims)
    for _ in range(levels):
        level_shapes: list[tuple[int, ...]] = []
        shape = list(cur)
        for axis in range(ndim):
            n = shape[axis]
            odd_shape = list(shape)
            odd_shape[axis] = n // 2
            level_shapes.append(tuple(odd_shape))
            shape[axis] = (n + 1) // 2
        details_shapes.append(level_shapes)
        cur = shape
    coarse_shape = tuple(cur)

    offset = 0
    details: list[list[np.ndarray]] = []
    shapes: list[tuple[int, ...]] = []
    run = list(dims)
    if _trace.ACTIVE is not None:
        span = _trace.stage("mgard:dequantize")
    else:
        span = nullcontext()
    with span:
        for lvl in range(levels):
            shapes.append(tuple(run))
            level_details: list[np.ndarray] = []
            for axis in range(ndim):
                dshape = details_shapes[lvl][axis]
                n = int(np.prod(dshape, dtype=np.int64))
                codes = allcodes[offset:offset + n].reshape(dshape)
                offset += n
                level_details.append(dequantize_uniform(codes, bounds[lvl]))
            details.append(level_details)
            run = [(x + 1) // 2 for x in run]
    n_coarse = int(np.prod(coarse_shape, dtype=np.int64))
    if offset + n_coarse != allcodes.size:
        raise CorruptStreamError(
            f"payload holds {allcodes.size} codes, expected {offset + n_coarse}"
        )
    coarse_codes = lorenzo_decode(
        allcodes[offset:offset + n_coarse].reshape(coarse_shape)
    )
    coarse = dequantize_uniform(coarse_codes, bounds[-1])
    if _trace.ACTIVE is not None:
        span = _trace.stage("mgard:reconstruct")
    else:
        span = nullcontext()
    with span:
        out = _reconstruct(coarse, details, shapes)
    np_dtype = dtype_to_numpy(dtype)
    if np_dtype.kind in "iu":
        return np.rint(out).astype(np_dtype)
    return out.astype(np_dtype)
