"""SZ 2.x's block regression predictor (and adaptive selection).

Real SZ 2 (the paper's reference [25] improves on it) predicts each
6^d block either with the Lorenzo predictor or with a per-block linear
regression ``a0 + a1*i + a2*j + a3*k``, choosing per block whichever
predicts better — the ``withRegression`` knob in ``sz_params``.

This module implements that scheme fully vectorized:

* blocks are gathered exactly like the zfp blocker but with side 6 and
  edge padding;
* one least-squares solve serves *all* blocks simultaneously: the
  design matrix ``X`` (block-local normalized coordinates) is shared,
  so coefficients are ``pinv(X) @ values`` — a single matmul;
* coefficients are quantized **first**, and residuals are computed
  against the *quantized* prediction, so the reconstruction error is
  bounded purely by the residual quantizer regardless of coefficient
  coarseness;
* adaptive mode scores each block by the total magnitude of its
  quantized residual codes under both predictors and keeps the winner
  (a per-block selector bitmap travels in the stream).

Determinism note: predictions are recomputed at decode time with the
same matmul, which is bit-reproducible on a given platform; streams are
not guaranteed portable across BLAS implementations (real SZ's
regression streams carry the same caveat for FMA differences).
"""

from __future__ import annotations

import numpy as np

from ...encoders.quantize import quantize_uniform
from ...encoders.residual import decode_residuals, encode_residuals

__all__ = ["compress_regression", "decompress_regression", "BLOCK_SIDE"]

BLOCK_SIDE = 6

PRED_LORENZO = 0
PRED_REGRESSION = 1


# ----------------------------------------------------------------------
# blocking (side-6 analog of the zfp blocker)
# ----------------------------------------------------------------------
def _pad(arr: np.ndarray) -> np.ndarray:
    padding = [(0, (-s) % BLOCK_SIDE) for s in arr.shape]
    if any(p[1] for p in padding):
        return np.pad(arr, padding, mode="edge")
    return arr


def _to_blocks(arr: np.ndarray) -> np.ndarray:
    d = arr.ndim
    padded = _pad(arr)
    inter: list[int] = []
    for s in padded.shape:
        inter += [s // BLOCK_SIDE, BLOCK_SIDE]
    view = padded.reshape(inter)
    order = list(range(0, 2 * d, 2)) + list(range(1, 2 * d, 2))
    return np.ascontiguousarray(view.transpose(order)).reshape(
        -1, BLOCK_SIDE**d)


def _from_blocks(blocks: np.ndarray, dims: tuple[int, ...]) -> np.ndarray:
    d = len(dims)
    padded_dims = tuple(s + ((-s) % BLOCK_SIDE) for s in dims)
    grid = tuple(s // BLOCK_SIDE for s in padded_dims)
    inter = blocks.reshape(grid + (BLOCK_SIDE,) * d)
    order: list[int] = []
    for i in range(d):
        order += [i, d + i]
    padded = inter.transpose(order).reshape(padded_dims)
    return padded[tuple(slice(0, s) for s in dims)]


def _design_matrix(ndim: int) -> np.ndarray:
    """The shared (6^d, ndim+1) design matrix of normalized coords."""
    coords = np.linspace(-1.0, 1.0, BLOCK_SIDE)
    grids = np.meshgrid(*([coords] * ndim), indexing="ij")
    columns = [np.ones(BLOCK_SIDE**ndim)]
    columns += [g.reshape(-1) for g in grids]
    return np.stack(columns, axis=1)


# ----------------------------------------------------------------------
# the two per-block predictors, vectorized over all blocks
# ----------------------------------------------------------------------
def _block_lorenzo_codes(blocks: np.ndarray, eb: float,
                         ndim: int) -> np.ndarray:
    """Quantize, then n-D Lorenzo-difference *within* each block.

    Differencing runs only along the in-block axes (1..ndim), so every
    block stays independent — the block-local 3-D Lorenzo real SZ 2
    uses alongside regression.
    """
    n = blocks.shape[0]
    q = quantize_uniform(blocks, eb).reshape((n,) + (BLOCK_SIDE,) * ndim)
    q = q.view(np.uint64)
    for axis in range(1, ndim + 1):
        lo = [slice(None)] * (ndim + 1)
        hi = [slice(None)] * (ndim + 1)
        hi[axis] = slice(1, None)
        lo[axis] = slice(None, -1)
        out = q.copy()
        out[tuple(hi)] = q[tuple(hi)] - q[tuple(lo)]
        q = out
    return q.view(np.int64).reshape(n, -1)


def _block_lorenzo_decode(codes: np.ndarray, eb: float,
                          ndim: int) -> np.ndarray:
    n = codes.shape[0]
    q = np.ascontiguousarray(
        codes.reshape((n,) + (BLOCK_SIDE,) * ndim)).view(np.uint64)
    for axis in range(ndim, 0, -1):
        q = np.cumsum(q, axis=axis, dtype=np.uint64)
    return q.view(np.int64).astype(np.float64).reshape(n, -1) * (2.0 * eb)


def _regression_fit(blocks: np.ndarray, pinv: np.ndarray, eb: float
                    ) -> tuple[np.ndarray, np.ndarray]:
    """(coef codes, residual codes) for every block at once."""
    coefs = blocks @ pinv.T  # (nblocks, ncoef)
    coef_codes = quantize_uniform(coefs, eb)
    coefs_q = coef_codes.astype(np.float64) * (2.0 * eb)
    return coef_codes, coefs_q


def compress_regression(work: np.ndarray, eb: float, adaptive: bool,
                        backend: str, level: int) -> bytes:
    """Compress with the regression predictor (optionally adaptive)."""
    blocks = _to_blocks(work)
    nblocks = blocks.shape[0]
    design = _design_matrix(work.ndim)
    pinv = np.linalg.pinv(design)

    coef_codes, coefs_q = _regression_fit(blocks, pinv, eb)
    predictions = coefs_q @ design.T
    reg_resid = quantize_uniform(blocks - predictions, eb)

    if adaptive:
        lor_codes = _block_lorenzo_codes(blocks, eb, work.ndim)
        reg_cost = np.abs(reg_resid).sum(axis=1)
        lor_cost = np.abs(lor_codes).sum(axis=1)
        use_reg = reg_cost < lor_cost
    else:
        lor_codes = None
        use_reg = np.ones(nblocks, dtype=bool)

    selector = np.packbits(use_reg).tobytes()
    # stream: residuals of regression blocks, codes of lorenzo blocks,
    # coefficients of regression blocks — one concatenated code array
    pieces = [reg_resid[use_reg].reshape(-1)]
    if lor_codes is not None:
        pieces.append(lor_codes[~use_reg].reshape(-1))
    pieces.append(coef_codes[use_reg].reshape(-1))
    payload = encode_residuals(
        np.concatenate(pieces) if pieces else np.zeros(0, dtype=np.int64),
        backend=backend, level=level)
    import struct

    head = struct.pack("<QQ", nblocks, int(use_reg.sum()))
    return head + selector + payload


def decompress_regression(payload: bytes, dims: tuple[int, ...],
                          eb: float) -> np.ndarray:
    """Inverse of :func:`compress_regression`."""
    import struct

    nblocks, n_reg = struct.unpack_from("<QQ", payload, 0)
    sel_len = (nblocks + 7) // 8
    use_reg = np.unpackbits(
        np.frombuffer(payload, dtype=np.uint8, offset=16, count=sel_len),
        count=nblocks).astype(bool)
    codes = decode_residuals(payload[16 + sel_len:])

    ndim = len(dims)
    block_elems = BLOCK_SIDE**ndim
    ncoef = ndim + 1
    n_lor = int(nblocks - n_reg)
    expected = n_reg * block_elems + n_lor * block_elems + n_reg * ncoef
    if codes.size != expected:
        from ...core.status import CorruptStreamError

        raise CorruptStreamError(
            f"regression payload holds {codes.size} codes, expected "
            f"{expected}")

    pos = 0
    reg_resid = codes[pos:pos + n_reg * block_elems].reshape(
        n_reg, block_elems)
    pos += n_reg * block_elems
    lor_codes = codes[pos:pos + n_lor * block_elems].reshape(
        n_lor, block_elems)
    pos += n_lor * block_elems
    coef_codes = codes[pos:].reshape(n_reg, ncoef)

    design = _design_matrix(ndim)
    blocks = np.empty((nblocks, block_elems), dtype=np.float64)
    if n_reg:
        coefs_q = coef_codes.astype(np.float64) * (2.0 * eb)
        predictions = coefs_q @ design.T
        blocks[use_reg] = predictions + reg_resid.astype(np.float64) \
            * (2.0 * eb)
    if n_lor:
        blocks[~use_reg] = _block_lorenzo_decode(lor_codes, eb, ndim)
    return _from_blocks(blocks, dims)
