"""SZ's C-style API: global configuration store, init/finalize lifecycle.

This module mimics the ergonomics of SZ 2.1's ``sz.h``:

* ``SZ_Init(params)`` installs a process-global configuration; calling
  compression entry points before init (or after finalize) fails;
* ``SZ_compress_args(type, data, r5, r4, r3, r2, r1, ...)`` takes the
  dimensions as five reversed arguments with ``r1`` the fastest-varying —
  the C-order/reversed-argument convention the paper highlights as a
  usability hazard;
* the library is **not thread safe**: one global parameter store.

The LibPressio ``sz`` plugin wraps this and hides every one of those
hazards behind the uniform interface.
"""

from __future__ import annotations

import threading

import numpy as np

from . import core
from .params import (
    SZ_DOUBLE,
    SZ_FLOAT,
    SZ_INT8,
    SZ_INT16,
    SZ_INT32,
    SZ_INT64,
    SZ_UINT8,
    SZ_UINT16,
    SZ_UINT32,
    SZ_UINT64,
    sz_params,
)

__all__ = [
    "SZ_Init",
    "SZ_Init_Params",
    "SZ_Finalize",
    "SZ_compress",
    "SZ_compress_args",
    "SZ_decompress",
    "SZ_is_initialized",
    "sz_datatype_to_numpy",
    "SZNotInitializedError",
]

_TYPE_MAP = {
    SZ_FLOAT: np.dtype(np.float32),
    SZ_DOUBLE: np.dtype(np.float64),
    SZ_UINT8: np.dtype(np.uint8),
    SZ_INT8: np.dtype(np.int8),
    SZ_UINT16: np.dtype(np.uint16),
    SZ_INT16: np.dtype(np.int16),
    SZ_UINT32: np.dtype(np.uint32),
    SZ_INT32: np.dtype(np.int32),
    SZ_UINT64: np.dtype(np.uint64),
    SZ_INT64: np.dtype(np.int64),
}

# deliberately global, deliberately unguarded between threads: this models
# SZ's shared configuration store (paper Section IV-B)
_global_params: sz_params | None = None
_init_lock = threading.Lock()


class SZNotInitializedError(RuntimeError):
    """Raised when a compression entry point runs outside init/finalize."""


def SZ_Init(params: sz_params | None = None) -> int:
    """Install the global configuration.  Returns 0 on success."""
    global _global_params
    with _init_lock:
        p = params if params is not None else sz_params()
        p.validate()
        _global_params = p
    return 0


def SZ_Init_Params(params: sz_params) -> int:
    """Alias matching SZ's second init entry point."""
    return SZ_Init(params)


def SZ_Finalize() -> int:
    """Tear down the global configuration.

    As the paper notes, a thread may only call this when it is confident
    no other thread is still using SZ — nothing here enforces that.
    """
    global _global_params
    with _init_lock:
        _global_params = None
    return 0


def SZ_is_initialized() -> bool:
    return _global_params is not None


def _require_params() -> sz_params:
    p = _global_params
    if p is None:
        raise SZNotInitializedError(
            "SZ_Init must be called before compression entry points"
        )
    return p


def sz_datatype_to_numpy(sz_type: int) -> np.dtype:
    """Map an SZ type constant to the NumPy dtype."""
    try:
        return _TYPE_MAP[sz_type]
    except KeyError:
        raise ValueError(f"unknown SZ data type constant {sz_type}") from None


def _resolve_dims(r5: int, r4: int, r3: int, r2: int, r1: int) -> tuple[int, ...]:
    """Convert SZ's reversed five-argument dims to a C-order shape tuple.

    ``r1`` is the fastest-varying dimension; zeros mean "unused".  The
    C-order shape therefore lists the *used* arguments from slowest to
    fastest: ``(r5, r4, r3, r2, r1)`` with leading zeros dropped.
    """
    dims = [d for d in (r5, r4, r3, r2, r1) if d]
    if not dims:
        raise ValueError("at least one dimension must be non-zero")
    if any(d < 0 for d in (r5, r4, r3, r2, r1)):
        raise ValueError("dimensions must be non-negative")
    return tuple(dims)


def SZ_compress(sz_type: int, data: np.ndarray,
                r5: int = 0, r4: int = 0, r3: int = 0, r2: int = 0, r1: int = 0
                ) -> bytes:
    """Compress with the bounds currently stored in the global params."""
    params = _require_params()
    dims = _resolve_dims(r5, r4, r3, r2, r1)
    np_dtype = sz_datatype_to_numpy(sz_type)
    arr = np.asarray(data, dtype=np_dtype).reshape(dims)
    return core.compress(arr, params)


def SZ_compress_args(sz_type: int, data: np.ndarray,
                     r5: int = 0, r4: int = 0, r3: int = 0, r2: int = 0,
                     r1: int = 0, *, errBoundMode: int | None = None,
                     absErrBound: float | None = None,
                     relBoundRatio: float | None = None,
                     pwrBoundRatio: float | None = None,
                     psnr: float | None = None) -> bytes:
    """Compress, overriding selected bound fields for this call.

    Mirrors ``SZ_compress_args``: the overrides mutate a copy of the
    global store for the duration of the call (real SZ writes into the
    global ``confparams_cpr``; we keep that observable by updating the
    global afterwards, matching its surprising-but-real semantics).
    """
    params = _require_params()
    import dataclasses

    call_params = dataclasses.replace(params)
    if errBoundMode is not None:
        call_params.errorBoundMode = errBoundMode
    if absErrBound is not None:
        call_params.absErrBound = absErrBound
    if relBoundRatio is not None:
        call_params.relBoundRatio = relBoundRatio
    if pwrBoundRatio is not None:
        call_params.pw_relBoundRatio = pwrBoundRatio
    if psnr is not None:
        call_params.psnr = psnr
    dims = _resolve_dims(r5, r4, r3, r2, r1)
    np_dtype = sz_datatype_to_numpy(sz_type)
    arr = np.asarray(data, dtype=np_dtype).reshape(dims)
    stream = core.compress(arr, call_params)
    # real SZ_compress_args leaves the overridden bounds in the global
    # config — reproduce that sharp edge
    global _global_params
    _global_params = call_params
    return stream


def SZ_decompress(sz_type: int, stream: bytes,
                  r5: int = 0, r4: int = 0, r3: int = 0, r2: int = 0,
                  r1: int = 0) -> np.ndarray:
    """Decompress; dims are revalidated against the stream header."""
    _require_params()
    dims = _resolve_dims(r5, r4, r3, r2, r1)
    out = core.decompress(stream, expected_dims=dims)
    np_dtype = sz_datatype_to_numpy(sz_type)
    return out.astype(np_dtype, copy=False)
