"""The SZ-family compression pipeline.

Algorithm (the dual-quantization factorization of SZ's
predict-then-quantize loop; see :mod:`repro.encoders.predictors`):

1. resolve the effective absolute error bound from the configured mode
   (value-range-relative bounds scale by ``max - min``, PSNR bounds by
   the uniform-quantizer MSE model, PW_REL goes through a log transform);
2. quantize values onto a ``2*eb`` grid (int64 codes);
3. Lorenzo-predict the integer codes (exact, vectorized);
4. entropy-code the residuals (two-stream codec + zlib family, or
   canonical Huffman);
5. prepend a self-describing header.

Pointwise-relative mode compresses ``log(|x|)`` with the absolute bound
``log(1 + pw_rel)/ (1+margin)`` and carries the sign/zero pattern in a
packed side channel, the same mathematical reduction SZ uses.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from ...core.dtype import DType, dtype_from_numpy, dtype_to_numpy
from ...trace import runtime as _trace
from ...core.status import CorruptStreamError
from ...encoders.headers import read_header, write_header
from ...encoders.huffman import huffman_decode, huffman_encode
from ...encoders.predictors import lorenzo_decode, lorenzo_encode
from ...encoders.quantize import dequantize_uniform, quantize_uniform
from ...encoders.residual import decode_residuals, encode_residuals
from .. import pool as _pool
from .regression import compress_regression, decompress_regression
from .params import (
    ABS,
    ABS_AND_REL,
    ABS_OR_REL,
    NORM,
    PSNR,
    PW_REL,
    REL,
    sz_params,
)

__all__ = ["compress", "compress_stage1", "compress_stage2",
           "decompress", "effective_abs_bound"]

_MAGIC = b"SZ02"

_ENTROPY_FAST = 0
_ENTROPY_HUFFMAN = 1

_MODE_PLAIN = 0
_MODE_LOG = 1  # PW_REL log-transform path

# prediction kinds carried in the stream header
_PRED_IDS = {"none": 0, "lorenzo": 1, "regression": 2, "adaptive": 3}
_PRED_NAMES = {v: k for k, v in _PRED_IDS.items()}


def effective_abs_bound(data: np.ndarray, params: sz_params) -> float:
    """Absolute error bound implied by the configured mode for ``data``."""
    mode = params.errorBoundMode
    if mode == ABS:
        return float(params.absErrBound)
    value_range = float(data.max() - data.min()) if data.size else 0.0
    if value_range == 0.0:
        value_range = float(abs(data.flat[0])) if data.size else 1.0
        if value_range == 0.0:
            value_range = 1.0
    if mode == REL:
        return params.relBoundRatio * value_range
    if mode == ABS_AND_REL:
        return min(params.absErrBound, params.relBoundRatio * value_range)
    if mode == ABS_OR_REL:
        return max(params.absErrBound, params.relBoundRatio * value_range)
    if mode == PSNR:
        # uniform quantizer: mse = eb^2 / 3; psnr = 20 log10(range) - 10 log10(mse)
        return value_range * (10.0 ** (-params.psnr / 20.0)) * np.sqrt(3.0)
    if mode == NORM:
        # L2-norm bound treated as rms target: eb = norm_bound * sqrt(3/n)
        n = max(int(data.size), 1)
        return float(params.normErrBound) * np.sqrt(3.0 / n)
    raise ValueError(f"error bound mode {mode} is not an absolute-style mode")


def _entropy_encode(residuals: np.ndarray,
                    params: sz_params) -> tuple[int, bytes]:
    """Entropy-code flat residuals (the zlib-heavy stage-2 half)."""
    if _trace.ACTIVE is not None:
        span = _trace.stage("sz:entropy", coder=params.entropyCoder)
    else:
        span = nullcontext()
    with span:
        if params.entropyCoder == "huffman":
            from ...encoders.zigzag import zigzag_encode

            zz = zigzag_encode(residuals)
            if zz.size and int(zz.max()) < 2**20:
                return _ENTROPY_HUFFMAN, huffman_encode(zz)
        return _ENTROPY_FAST, encode_residuals(
            residuals, backend=params.losslessCompressor,
            level=params.zlib_level()
        )


def _encode_codes(codes: np.ndarray, params: sz_params) -> tuple[int, bytes]:
    if _trace.ACTIVE is not None:
        span = _trace.stage("sz:predict")
    else:
        span = nullcontext()
    with span:
        residuals = (
            lorenzo_encode(codes) if params.predictionMode == "lorenzo"
            else codes
        ).reshape(-1)
    return _entropy_encode(residuals, params)


def _decode_codes(entropy_kind: int, payload: bytes, dims: tuple[int, ...],
                  prediction: str) -> np.ndarray:
    if _trace.ACTIVE is not None:
        span = _trace.stage("sz:entropy")
    else:
        span = nullcontext()
    with span:
        if entropy_kind == _ENTROPY_HUFFMAN:
            from ...encoders.zigzag import zigzag_decode

            residuals = zigzag_decode(huffman_decode(payload))
        elif entropy_kind == _ENTROPY_FAST:
            residuals = decode_residuals(payload)
        else:
            raise CorruptStreamError(
                f"unknown entropy coder id {entropy_kind}")
    expected = int(np.prod(dims, dtype=np.int64))
    if residuals.size != expected:
        raise CorruptStreamError(
            f"decoded {residuals.size} values, dims imply {expected}"
        )
    residuals = residuals.reshape(dims)
    if prediction == "lorenzo":
        if _trace.ACTIVE is not None:
            span = _trace.stage("sz:predict")
        else:
            span = nullcontext()
        with span:
            # the residual buffer came straight off the entropy decoder,
            # so it is ours to overwrite
            return lorenzo_decode(residuals, clobber=True)
    return residuals


def compress_stage1(data: np.ndarray, params: sz_params) -> dict:
    """Numpy-heavy first half of compression: bound, quantize, predict.

    Returns an opaque state dict for :func:`compress_stage2`.  The split
    exists for the pipelined executor (:mod:`repro.meta.pipeline`):
    stage 1 is pure array math that must run under the GIL, stage 2 is
    dominated by zlib/bz2/lzma which release it — so stage 2 of block
    ``i`` can overlap stage 1 of block ``i+1`` on a worker thread.

    Residuals may alias buffers from :mod:`repro.native.pool`; stage 2
    releases them, so every stage-1 state must be passed to stage 2
    exactly once.
    """
    params.validate()
    arr = np.asarray(data)
    if arr.dtype.kind not in "fiu":
        raise TypeError(f"SZ cannot compress dtype {arr.dtype}")
    dtype = dtype_from_numpy(arr.dtype)
    if params.errorBoundMode == PW_REL:
        return {"kind": "pw_rel", "arr": arr, "dtype": dtype,
                "params": params}

    eb = effective_abs_bound(arr, params)
    work = arr.astype(np.float64, copy=False)
    clobberable = (params.clobberInput and work is arr
                   and arr.dtype == np.float64 and arr.flags.writeable)
    skipped_centering = (params.predictionMode == "lorenzo"
                         and not clobberable)
    if skipped_centering:
        # Lorenzo residuals are first differences, so a constant offset
        # only ever survives in the very first residual: centering the
        # data buys nothing downstream.  Skipping it drops two full
        # passes (mean + subtract) from the hot path.  (With
        # clobberInput set the in-place subtraction is observable API
        # behaviour, so that path keeps centering; and if the
        # uncentered magnitudes overflow the code range, the quantize
        # step below falls back to centering.)
        offset = 0.0
    else:
        offset = float(work.mean()) if work.size else 0.0
        if clobberable:
            # API fidelity: some versions of real SZ treat the input as
            # scratch (paper Section IV-B).  Opt-in here; the LibPressio
            # plugin always hands the native a read-only view, so user
            # buffers are never clobbered through the uniform interface.
            work -= offset
        else:
            work = work - offset
    if params.predictionMode in ("regression", "adaptive"):
        return {"kind": "regression", "work": work, "eb": eb,
                "offset": offset, "dtype": dtype, "shape": arr.shape,
                "params": params}
    if _trace.ACTIVE is not None:
        span = _trace.stage("sz:quantize", bound=eb)
    else:
        span = nullcontext()
    with span:
        codes = _pool.acquire(work.shape, np.int64)
        scratch = _pool.acquire(work.shape, np.float64)
        try:
            try:
                quantize_uniform(work, eb, out=codes, scratch=scratch)
            except ValueError:
                if not (skipped_centering and work.size
                        and np.all(np.isfinite(work))):
                    raise
                # overflow on the uncentered fast path: a large DC
                # component can put |value/2eb| out of code range even
                # though the centered data quantizes fine — re-center
                # and retry
                offset = float(work.mean())
                work = work - offset
                quantize_uniform(work, eb, out=codes, scratch=scratch)
        except BaseException:
            _pool.release(codes, scratch)
            raise
    if _trace.ACTIVE is not None:
        span = _trace.stage("sz:predict")
    else:
        span = nullcontext()
    with span:
        try:
            if params.predictionMode == "lorenzo":
                residuals = lorenzo_encode(
                    codes, scratch=scratch, clobber=True).reshape(-1)
            else:
                residuals = codes.reshape(-1)
        except BaseException:
            _pool.release(codes, scratch)
            raise
    return {"kind": "plain", "residuals": residuals,
            "pooled": (codes, scratch), "eb": eb, "offset": offset,
            "dtype": dtype, "shape": arr.shape, "params": params}


def compress_stage2(state: dict) -> bytes:
    """Entropy-code and frame the output of :func:`compress_stage1`."""
    params = state["params"]
    kind = state["kind"]
    if kind == "pw_rel":
        return _compress_pw_rel(state["arr"], state["dtype"], params)
    if kind == "regression":
        if _trace.ACTIVE is not None:
            span = _trace.stage("sz:regression")
        else:
            span = nullcontext()
        with span:
            payload = compress_regression(
                state["work"], state["eb"],
                params.predictionMode == "adaptive",
                params.losslessCompressor, params.zlib_level())
        header = write_header(
            _MAGIC, state["dtype"], state["shape"],
            doubles=(state["eb"], state["offset"]),
            ints=(_MODE_PLAIN, _ENTROPY_FAST,
                  _PRED_IDS[params.predictionMode]),
        )
        return header + payload
    try:
        entropy_kind, payload = _entropy_encode(state["residuals"], params)
    finally:
        _pool.release(*state["pooled"])
    header = write_header(
        _MAGIC, state["dtype"], state["shape"],
        doubles=(state["eb"], state["offset"]),
        ints=(_MODE_PLAIN, entropy_kind,
              _PRED_IDS[params.predictionMode]),
    )
    return header + payload


def compress(data: np.ndarray, params: sz_params) -> bytes:
    """Compress an n-d float array under ``params``; returns the stream.

    When ``params.clobberInput`` is set, the input may be used as scratch
    space (the surprising behaviour of some real SZ versions the paper
    calls out); the LibPressio plugin protects callers by passing a
    read-only view.
    """
    return compress_stage2(compress_stage1(data, params))


def decompress(stream: bytes | memoryview, expected_dims: tuple[int, ...] | None = None
               ) -> np.ndarray:
    """Decompress an SZ stream back to an ndarray."""
    dtype, dims, doubles, ints, offset_pos = read_header(stream, _MAGIC)
    payload = bytes(memoryview(stream)[offset_pos:])
    mode = ints[0]
    if expected_dims is not None and tuple(expected_dims) != dims:
        raise CorruptStreamError(
            f"stream dims {dims} do not match expected {tuple(expected_dims)}"
        )
    if mode == _MODE_LOG:
        return _decompress_pw_rel(dtype, dims, doubles, ints, payload)
    eb, offset = doubles
    entropy_kind = ints[1]
    prediction = _PRED_NAMES.get(ints[2], "lorenzo")
    if prediction in ("regression", "adaptive"):
        if _trace.ACTIVE is not None:
            span = _trace.stage("sz:regression")
        else:
            span = nullcontext()
        with span:
            out = decompress_regression(payload, dims, eb) + offset
        np_dtype = dtype_to_numpy(dtype)
        if np_dtype.kind in "iu":
            return np.rint(out).astype(np_dtype)
        return out.astype(np_dtype)
    codes = _decode_codes(entropy_kind, payload, dims, prediction)
    if _trace.ACTIVE is not None:
        span = _trace.stage("sz:dequantize")
    else:
        span = nullcontext()
    with span:
        out = dequantize_uniform(
            codes, eb, dtype=np.dtype(np.float64)) + offset
    np_dtype = dtype_to_numpy(dtype)
    if np_dtype.kind in "iu":
        return np.rint(out).astype(np_dtype)
    return out.astype(np_dtype)


# ----------------------------------------------------------------------
# pointwise-relative mode
# ----------------------------------------------------------------------
def _compress_pw_rel(arr: np.ndarray, dtype: DType, params: sz_params) -> bytes:
    pw = float(params.pw_relBoundRatio)
    values = arr.astype(np.float64, copy=False)
    flat = values.reshape(-1)
    zero_mask = flat == 0.0
    neg_mask = flat < 0.0
    # compress log|x| with abs bound log(1+pw); reconstruction error is then
    # |x' - x| <= |x| * (e^{log(1+pw)} - 1) = pw * |x|
    log_bound = float(np.log1p(pw)) * 0.999999
    logs = np.zeros_like(flat)
    nz = ~zero_mask
    logs[nz] = np.log(np.abs(flat[nz]))
    if np.any(nz):
        fill = float(logs[nz].min())
    else:
        fill = 0.0
    logs[zero_mask] = fill  # placeholder; masked out on reconstruction
    codes = quantize_uniform(logs.reshape(arr.shape), log_bound)
    entropy_kind, payload = _encode_codes(codes, params)
    sign_bits = np.packbits(neg_mask.astype(np.uint8)).tobytes()
    zero_bits = np.packbits(zero_mask.astype(np.uint8)).tobytes()
    import zlib

    side = zlib.compress(sign_bits + zero_bits, 1)
    header = write_header(
        _MAGIC, dtype, arr.shape,
        doubles=(log_bound, 0.0),
        ints=(_MODE_LOG, entropy_kind,
              1 if params.predictionMode == "lorenzo" else 0, len(side)),
    )
    return header + np.uint64(len(payload)).tobytes() + payload + side


def _decompress_pw_rel(dtype: DType, dims: tuple[int, ...],
                       doubles: tuple[float, ...], ints: tuple[int, ...],
                       payload: bytes) -> np.ndarray:
    import zlib

    log_bound = doubles[0]
    entropy_kind = ints[1]
    prediction = "lorenzo" if ints[2] else "none"
    n_payload = int(np.frombuffer(payload[:8], dtype=np.uint64)[0])
    body = payload[8:8 + n_payload]
    side = zlib.decompress(payload[8 + n_payload:])
    n = int(np.prod(dims, dtype=np.int64))
    nbytes_bits = (n + 7) // 8
    sign_bits = np.unpackbits(
        np.frombuffer(side[:nbytes_bits], dtype=np.uint8), count=n
    ).astype(bool)
    zero_bits = np.unpackbits(
        np.frombuffer(side[nbytes_bits:], dtype=np.uint8), count=n
    ).astype(bool)
    codes = _decode_codes(entropy_kind, body, dims, prediction)
    logs = dequantize_uniform(codes, log_bound).reshape(-1)
    out = np.exp(logs)
    out[sign_bits] = -out[sign_bits]
    out[zero_bits] = 0.0
    return out.reshape(dims).astype(dtype_to_numpy(dtype))
