"""SZ-style prediction-based error-bounded lossy compressor (from scratch).

See :mod:`repro.native.sz.core` for the algorithm and
:mod:`repro.native.sz.api` for the C-flavoured global-state API surface.
"""

from .api import (
    SZ_compress,
    SZ_compress_args,
    SZ_decompress,
    SZ_Finalize,
    SZ_Init,
    SZ_Init_Params,
    SZ_is_initialized,
    SZNotInitializedError,
    sz_datatype_to_numpy,
)
from .core import (
    compress,
    compress_stage1,
    compress_stage2,
    decompress,
    effective_abs_bound,
)
from .params import (
    ABS,
    ABS_AND_REL,
    ABS_OR_REL,
    ERROR_BOUND_MODES,
    NORM,
    PSNR,
    PW_REL,
    REL,
    SZ_BEST_COMPRESSION,
    SZ_BEST_SPEED,
    SZ_DEFAULT_COMPRESSION,
    SZ_DOUBLE,
    SZ_FLOAT,
    SZ_INT8,
    SZ_INT16,
    SZ_INT32,
    SZ_INT64,
    SZ_UINT8,
    SZ_UINT16,
    SZ_UINT32,
    SZ_UINT64,
    sz_params,
)

__all__ = [
    "compress", "compress_stage1", "compress_stage2", "decompress",
    "effective_abs_bound",
    "SZ_Init", "SZ_Init_Params", "SZ_Finalize", "SZ_compress",
    "SZ_compress_args", "SZ_decompress", "SZ_is_initialized",
    "SZNotInitializedError", "sz_datatype_to_numpy", "sz_params",
    "ABS", "REL", "ABS_AND_REL", "ABS_OR_REL", "PSNR", "PW_REL", "NORM",
    "ERROR_BOUND_MODES",
    "SZ_BEST_SPEED", "SZ_DEFAULT_COMPRESSION", "SZ_BEST_COMPRESSION",
    "SZ_FLOAT", "SZ_DOUBLE", "SZ_INT8", "SZ_INT16", "SZ_INT32", "SZ_INT64",
    "SZ_UINT8", "SZ_UINT16", "SZ_UINT32", "SZ_UINT64",
]
