"""The ``sz_params`` configuration struct.

Real SZ is configured through a single struct with dozens of fields (the
paper counts 27+ configuration parameters); the fields below mirror the
names in SZ 2.1's ``sz.h``.  Only a subset changes the behaviour of this
reproduction (documented per field); the rest are accepted, stored, and
round-tripped so that client code exercising the full surface — like the
Table II comparisons — is realistic.
"""

from __future__ import annotations

import dataclasses

__all__ = [
    "sz_params",
    "ABS", "REL", "ABS_AND_REL", "ABS_OR_REL", "PSNR", "PW_REL", "NORM",
    "SZ_BEST_SPEED", "SZ_BEST_COMPRESSION", "SZ_DEFAULT_COMPRESSION",
    "SZ_FLOAT", "SZ_DOUBLE", "SZ_INT8", "SZ_INT16", "SZ_INT32", "SZ_INT64",
    "SZ_UINT8", "SZ_UINT16", "SZ_UINT32", "SZ_UINT64",
    "ERROR_BOUND_MODES",
]

# error bound mode constants (values match SZ 2.1's defines)
ABS = 0
REL = 1
ABS_AND_REL = 2
ABS_OR_REL = 3
PSNR = 4
ABS_AND_PW_REL = 5
ABS_OR_PW_REL = 6
PW_REL = 10
NORM = 12

ERROR_BOUND_MODES = {
    "abs": ABS,
    "rel": REL,
    "vr_rel": REL,
    "abs_and_rel": ABS_AND_REL,
    "abs_or_rel": ABS_OR_REL,
    "psnr": PSNR,
    "pw_rel": PW_REL,
    "norm": NORM,
}

# szMode
SZ_BEST_SPEED = 0
SZ_DEFAULT_COMPRESSION = 1
SZ_BEST_COMPRESSION = 2

# data types (values match SZ 2.1's defines)
SZ_FLOAT = 0
SZ_DOUBLE = 1
SZ_UINT8 = 2
SZ_INT8 = 3
SZ_UINT16 = 4
SZ_INT16 = 5
SZ_UINT32 = 6
SZ_INT32 = 7
SZ_UINT64 = 8
SZ_INT64 = 9


@dataclasses.dataclass
class sz_params:  # noqa: N801 - mimics the C struct name
    """Global configuration store, set via ``SZ_Init``.

    Behaviour-affecting fields in this reproduction:

    * ``errorBoundMode`` — ABS / REL / ABS_AND_REL / ABS_OR_REL / PSNR /
      PW_REL / NORM;
    * ``absErrBound``, ``relBoundRatio``, ``pw_relBoundRatio``, ``psnr``,
      ``normErrBound`` — the bound for the matching mode;
    * ``szMode`` — maps to the lossless backend effort (BEST_SPEED uses
      zlib level 1, DEFAULT level 6, BEST_COMPRESSION level 9);
    * ``losslessCompressor`` — "zlib" | "bz2" | "lzma" | "none";
    * ``entropyCoder`` — "fast" (two-stream residual codec) or "huffman";
    * ``predictionMode`` — "lorenzo" (default), "none" (quantize only),
      "regression" (SZ 2.x per-block linear regression), or "adaptive"
      (per-block choice between lorenzo and regression — the behaviour
      ``withRegression`` enables in real SZ).

    The remaining fields exist for API fidelity with sz.h.
    """

    # bound selection
    errorBoundMode: int = ABS
    absErrBound: float = 1e-4
    relBoundRatio: float = 1e-4
    pw_relBoundRatio: float = 1e-3
    psnr: float = 90.0
    normErrBound: float = 1e-4

    # pipeline behaviour
    szMode: int = SZ_BEST_SPEED
    losslessCompressor: str = "zlib"
    entropyCoder: str = "fast"
    predictionMode: str = "lorenzo"

    # when truthy, compression may use the caller's float64 buffer as
    # scratch space (the input-clobbering behaviour of some SZ versions)
    clobberInput: int = 0

    # API-fidelity fields (stored, validated, not otherwise used)
    quantization_intervals: int = 0
    max_quant_intervals: int = 65536
    sol_ID: int = 101  # SZ
    sampleDistance: int = 100
    predThreshold: float = 0.99
    gzipMode: int = 1
    pwr_type: int = 0
    segment_size: int = 36
    snapshotCmprStep: int = 5
    withRegression: int = 1
    protectValueRange: int = 0
    accelerate_pw_rel_compression: int = 1
    plus_bits: int = 3
    randomAccess: int = 0
    dataEndianType: int = 0
    sysEndianType: int = 0

    def validate(self) -> None:
        """Raise ValueError on out-of-domain settings."""
        valid_modes = {ABS, REL, ABS_AND_REL, ABS_OR_REL, PSNR, PW_REL, NORM}
        if self.errorBoundMode not in valid_modes:
            raise ValueError(f"invalid errorBoundMode {self.errorBoundMode}")
        if self.errorBoundMode == ABS and self.absErrBound <= 0:
            raise ValueError("absErrBound must be positive")
        if self.errorBoundMode == REL and self.relBoundRatio <= 0:
            raise ValueError("relBoundRatio must be positive")
        if self.errorBoundMode == PW_REL and not (0 < self.pw_relBoundRatio < 1):
            raise ValueError("pw_relBoundRatio must be in (0, 1)")
        if self.errorBoundMode == PSNR and self.psnr <= 0:
            raise ValueError("psnr must be positive")
        if self.errorBoundMode == NORM and self.normErrBound <= 0:
            raise ValueError("normErrBound must be positive")
        if self.szMode not in (SZ_BEST_SPEED, SZ_DEFAULT_COMPRESSION,
                               SZ_BEST_COMPRESSION):
            raise ValueError(f"invalid szMode {self.szMode}")
        if self.losslessCompressor not in ("zlib", "bz2", "lzma", "none"):
            raise ValueError(
                f"invalid losslessCompressor {self.losslessCompressor!r}"
            )
        if self.entropyCoder not in ("fast", "huffman"):
            raise ValueError(f"invalid entropyCoder {self.entropyCoder!r}")
        if self.predictionMode not in ("lorenzo", "none", "regression",
                                       "adaptive"):
            raise ValueError(f"invalid predictionMode {self.predictionMode!r}")

    def zlib_level(self) -> int:
        """Effort level implied by ``szMode``."""
        return {SZ_BEST_SPEED: 1, SZ_DEFAULT_COMPRESSION: 6,
                SZ_BEST_COMPRESSION: 9}[self.szMode]
