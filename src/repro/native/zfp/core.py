"""The ZFP-family transform compression pipeline.

Like real zfp, data is processed in 4^d blocks (d = 1..4), each block is
decorrelated with an exactly-invertible integer lifting transform, and
precision is controlled by discarding low-order bits of the transform
coefficients.  Differences from the C library are documented in
DESIGN.md; the behaviourally load-bearing properties are preserved:

* 4^d blocking with edge-replication padding of partial blocks (the
  padding inefficiency for dims < 4 the paper calls out);
* an integer decorrelating transform (two-level Haar lifting here vs
  zfp's non-orthogonal lift; both are exact on integers);
* fixed-accuracy / fixed-precision / fixed-rate / reversible modes with
  the same error semantics (absolute bound, per-block relative planes,
  approximate bits-per-value, bit-exact respectively).

All block math is vectorized across every block simultaneously
(``blocks`` has shape ``(nblocks, 4, ..., 4)``).
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from ...core.dtype import dtype_from_numpy, dtype_to_numpy
from ...trace import runtime as _trace
from ...core.status import CorruptStreamError, InvalidDimensionsError
from ...encoders.headers import read_header, write_header
from ...encoders.predictors import lorenzo_decode, lorenzo_encode
from ...encoders.residual import decode_residuals, encode_residuals
from ...encoders.quantize import quantize_uniform
from .. import pool as _pool

__all__ = ["compress", "compress_stage1", "compress_stage2", "decompress",
           "MODE_ACCURACY", "MODE_PRECISION", "MODE_RATE",
           "MODE_REVERSIBLE", "BLOCK_SIDE"]

_MAGIC = b"ZFP1"
BLOCK_SIDE = 4

MODE_ACCURACY = 0
MODE_PRECISION = 1
MODE_RATE = 2
MODE_REVERSIBLE = 3

# integer headroom: |codes| <= 2**_Q before the transform, whose lifting
# steps grow magnitudes by at most 2 per level (4 per dimension)
_Q = 48


# ----------------------------------------------------------------------
# blocking
# ----------------------------------------------------------------------
def _pad_to_blocks(arr: np.ndarray) -> np.ndarray:
    pad = [(0, (-s) % BLOCK_SIDE) for s in arr.shape]
    if any(p[1] for p in pad):
        return np.pad(arr, pad, mode="edge")
    return arr


def _to_blocks(arr: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """(d1..dk) array -> (nblocks, 4, ..., 4) block array (copy).

    ``out`` (int64, ``(nblocks,) + (4,)*d``) receives the gathered blocks
    without allocating; pass a pooled buffer on the hot path.
    """
    d = arr.ndim
    padded = _pad_to_blocks(arr)
    inter = []
    for s in padded.shape:
        inter += [s // BLOCK_SIDE, BLOCK_SIDE]
    view = padded.reshape(inter)
    order = list(range(0, 2 * d, 2)) + list(range(1, 2 * d, 2))
    gathered = view.transpose(order)
    if out is None:
        return np.ascontiguousarray(gathered).reshape(
            (-1,) + (BLOCK_SIDE,) * d
        )
    np.copyto(out.reshape(gathered.shape), gathered)
    return out


def _from_blocks(blocks: np.ndarray, dims: tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`_to_blocks`, cropping the padding."""
    d = len(dims)
    padded_dims = tuple(s + ((-s) % BLOCK_SIDE) for s in dims)
    grid = tuple(s // BLOCK_SIDE for s in padded_dims)
    inter = blocks.reshape(grid + (BLOCK_SIDE,) * d)
    # interleave block-grid and in-block axes back
    order = []
    for i in range(d):
        order += [i, d + i]
    padded = inter.transpose(order).reshape(padded_dims)
    crop = tuple(slice(0, s) for s in dims)
    return padded[crop]


# ----------------------------------------------------------------------
# the lifting transform (exactly invertible on int64)
# ----------------------------------------------------------------------
# Every lifting intermediate is written into one of five reusable slice-
# shaped temporaries via ufunc out=, so a whole transform allocates
# nothing: the four coefficient slots are only assigned after all four
# input slices have been consumed, which is what made the old per-slice
# .copy() calls unnecessary in the first place.  (A pair-sliced variant
# with fewer ufunc calls was measured ~2x slower: ufunc out= into
# step-2 strided views costs more than the calls it saves.)

def _lift_temps(blocks: np.ndarray) -> list[np.ndarray]:
    shape = (blocks.shape[0],) + (BLOCK_SIDE,) * (blocks.ndim - 2)
    return [_pool.acquire(shape, np.int64) for _ in range(5)]


def _fwd_lift_axis(blocks: np.ndarray, axis: int,
                   temps: list[np.ndarray]) -> None:
    """Two-level Haar lifting along a length-4 axis, in place."""
    ix = [slice(None)] * blocks.ndim

    def pick(i: int) -> tuple:
        ix[axis] = i
        return tuple(ix)

    t1, t2, t3, t4, t5 = temps
    a = blocks[pick(0)]
    b = blocks[pick(1)]
    c = blocks[pick(2)]
    d = blocks[pick(3)]
    np.subtract(b, a, out=t1)          # d1
    np.right_shift(t1, 1, out=t2)
    np.add(a, t2, out=t2)              # s1
    np.subtract(d, c, out=t3)          # d2
    np.right_shift(t3, 1, out=t4)
    np.add(c, t4, out=t4)              # s2
    np.subtract(t4, t2, out=t4)        # dd
    np.right_shift(t4, 1, out=t5)
    np.add(t2, t5, out=t5)             # ss
    blocks[pick(0)] = t5   # smooth
    blocks[pick(1)] = t4   # level-2 detail
    blocks[pick(2)] = t1   # level-1 details
    blocks[pick(3)] = t3


def _inv_lift_axis(blocks: np.ndarray, axis: int,
                   temps: list[np.ndarray]) -> None:
    """Exact inverse of :func:`_fwd_lift_axis`, in place."""
    ix = [slice(None)] * blocks.ndim

    def pick(i: int) -> tuple:
        ix[axis] = i
        return tuple(ix)

    t1, t2, t3, t4, t5 = temps
    ss = blocks[pick(0)]
    dd = blocks[pick(1)]
    d1 = blocks[pick(2)]
    d2 = blocks[pick(3)]
    np.right_shift(dd, 1, out=t1)
    np.subtract(ss, t1, out=t1)        # s1
    np.add(t1, dd, out=t2)             # s2
    np.right_shift(d1, 1, out=t3)
    np.subtract(t1, t3, out=t3)        # a
    np.add(t3, d1, out=t4)             # b
    np.right_shift(d2, 1, out=t5)
    np.subtract(t2, t5, out=t5)        # c
    np.add(t5, d2, out=t2)             # d
    blocks[pick(0)] = t3
    blocks[pick(1)] = t4
    blocks[pick(2)] = t5
    blocks[pick(3)] = t2


def _fwd_transform(blocks: np.ndarray) -> None:
    temps = _lift_temps(blocks)
    try:
        for axis in range(1, blocks.ndim):
            _fwd_lift_axis(blocks, axis, temps)
    finally:
        _pool.release(*temps)


def _inv_transform(blocks: np.ndarray) -> None:
    temps = _lift_temps(blocks)
    try:
        for axis in range(blocks.ndim - 1, 0, -1):
            _inv_lift_axis(blocks, axis, temps)
    finally:
        _pool.release(*temps)


# ----------------------------------------------------------------------
# per-block bit management
# ----------------------------------------------------------------------
def _block_maxbits(blocks: np.ndarray) -> np.ndarray:
    """Bit length of the largest |coefficient| in each block."""
    flat = blocks.reshape(blocks.shape[0], -1)
    mags = np.abs(flat).max(axis=1)
    out = np.zeros(blocks.shape[0], dtype=np.int64)
    nz = mags > 0
    out[nz] = np.floor(np.log2(mags[nz].astype(np.float64))).astype(np.int64) + 1
    return out


def _rounding_rshift(blocks: np.ndarray, shifts: np.ndarray) -> np.ndarray:
    """Per-block arithmetic right shift with round-half-up, in place."""
    s = shifts.reshape((-1,) + (1,) * (blocks.ndim - 1)).astype(np.int64)
    half = np.where(s > 0, np.int64(1) << np.maximum(s - 1, 0), np.int64(0))
    np.add(blocks, half, out=blocks)
    np.right_shift(blocks, s, out=blocks)
    return blocks


def _lshift(blocks: np.ndarray, shifts: np.ndarray) -> np.ndarray:
    """Per-block left shift, in place."""
    s = shifts.reshape((-1,) + (1,) * (blocks.ndim - 1)).astype(np.int64)
    np.left_shift(blocks, s, out=blocks)
    return blocks


# ----------------------------------------------------------------------
# public pipeline
# ----------------------------------------------------------------------
def compress_stage1(data: np.ndarray, mode: int, parameter: float,
                    backend: str = "zlib", level: int = 1,
                    transform: bool = True) -> dict:
    """Numpy-heavy first half: quantize, block, transform, bitplane.

    Returns an opaque state for :func:`compress_stage2`; see the SZ core
    for why the split exists.  The state may alias pooled buffers, so it
    must be passed to stage 2 exactly once.
    """
    arr = np.asarray(data)
    if arr.ndim < 1 or arr.ndim > 4:
        raise InvalidDimensionsError(
            f"zfp supports 1-4 dimensions, got {arr.ndim}"
        )
    if arr.dtype.kind not in "fiu":
        raise TypeError(f"zfp cannot compress dtype {arr.dtype}")
    dtype = dtype_from_numpy(arr.dtype)
    if mode == MODE_REVERSIBLE:
        if arr.dtype.kind == "f":
            codes = _float_to_ordered_int(arr).reshape(arr.shape)
        else:
            codes = arr.astype(np.int64)
        residuals = lorenzo_encode(codes)
        return {"kind": "reversible", "residuals": residuals,
                "dtype": dtype, "shape": arr.shape,
                "backend": backend, "level": level}

    values = arr.astype(np.float64, copy=False)
    d = arr.ndim
    nblocks = int(np.prod(
        [(s + BLOCK_SIDE - 1) // BLOCK_SIDE for s in arr.shape],
        dtype=np.int64))
    if _trace.ACTIVE is not None:
        span = _trace.stage("zfp:quantize", mode=mode)
    else:
        span = nullcontext()
    with span:
        codes = _pool.acquire(values.shape, np.int64)
        scratch = _pool.acquire(values.shape, np.float64)
        try:
            if mode == MODE_ACCURACY:
                if parameter <= 0:
                    raise ValueError("accuracy tolerance must be positive")
                step = float(parameter)
                quantize_uniform(values, step, out=codes, scratch=scratch)
            elif mode in (MODE_PRECISION, MODE_RATE):
                vmax = float(np.abs(values).max()) if values.size else 0.0
                if vmax == 0.0:
                    step = 1.0
                    codes[...] = 0
                else:
                    # scale so |codes| <= 2**_Q; quantize_uniform uses
                    # bin 2*eb
                    step = vmax / float(2**_Q)
                    quantize_uniform(values, step, out=codes,
                                     scratch=scratch)
            else:
                raise ValueError(f"unknown zfp mode {mode}")
        except BaseException:
            _pool.release(codes, scratch)
            raise
        _pool.release(scratch)

    if _trace.ACTIVE is not None:
        span = _trace.stage("zfp:transform")
    else:
        span = nullcontext()
    with span:
        blockbuf = _pool.acquire((nblocks,) + (BLOCK_SIDE,) * d, np.int64)
        try:
            try:
                blocks = _to_blocks(codes, out=blockbuf)
            finally:
                _pool.release(codes)
            if transform:
                _fwd_transform(blocks)
        except BaseException:
            _pool.release(blockbuf)
            raise

    if _trace.ACTIVE is not None:
        span = _trace.stage("zfp:bitplane")
    else:
        span = nullcontext()
    with span:
        try:
            if mode == MODE_ACCURACY:
                # nothing is discarded: skip the whole shift/round pass
                shifts = np.zeros(blocks.shape[0], dtype=np.int64)
                kept = blocks
            else:
                if mode == MODE_PRECISION:
                    planes = int(parameter)
                    if planes < 1:
                        raise ValueError(
                            "precision must be at least 1 bit plane")
                    shifts = np.maximum(_block_maxbits(blocks) - planes, 0)
                else:  # MODE_RATE
                    width = int(round(parameter))
                    if width < 1:
                        raise ValueError(
                            "rate must be at least 1 bit per value")
                    shifts = np.maximum(_block_maxbits(blocks) - width, 0)
                kept = _rounding_rshift(blocks, shifts)
        except BaseException:
            _pool.release(blockbuf)
            raise
    return {"kind": "lossy", "kept": kept, "shifts": shifts,
            "step": step, "parameter": parameter, "mode": mode,
            "transform": transform, "dtype": dtype, "shape": arr.shape,
            "backend": backend, "level": level}


def compress_stage2(state: dict) -> bytes:
    """Entropy-code and frame the output of :func:`compress_stage1`."""
    backend = state["backend"]
    level = state["level"]
    if state["kind"] == "reversible":
        payload = encode_residuals(state["residuals"].reshape(-1),
                                   backend=backend, level=level)
        return write_header(_MAGIC, state["dtype"], state["shape"],
                            doubles=(0.0, 0.0),
                            ints=(MODE_REVERSIBLE,)) + payload
    import zlib as _zlib

    if _trace.ACTIVE is not None:
        span = _trace.stage("zfp:entropy", backend=backend)
    else:
        span = nullcontext()
    with span:
        kept = state["kept"]
        try:
            shift_blob = _zlib.compress(
                state["shifts"].astype(np.uint8).tobytes(), 1)
            payload = encode_residuals(kept.reshape(-1), backend=backend,
                                       level=level)
        finally:
            _pool.release(kept)
    header = write_header(
        _MAGIC, state["dtype"], state["shape"],
        doubles=(state["step"], float(state["parameter"])),
        ints=(state["mode"], len(shift_blob),
              1 if state["transform"] else 0),
    )
    return header + shift_blob + payload


def compress(data: np.ndarray, mode: int, parameter: float,
             backend: str = "zlib", level: int = 1,
             transform: bool = True) -> bytes:
    """Compress ``data`` (C-order ndarray, 1-4 dims) under ``mode``.

    ``parameter`` is the tolerance (accuracy), bit planes (precision), or
    bits per value (rate); ignored for reversible.  ``transform=False``
    skips the decorrelating transform (quantize-only ablation).
    """
    return compress_stage2(compress_stage1(
        data, mode, parameter, backend=backend, level=level,
        transform=transform))


def decompress(stream: bytes | memoryview,
               expected_dims: tuple[int, ...] | None = None) -> np.ndarray:
    """Decompress a zfp stream back to an ndarray."""
    dtype, dims, doubles, ints, pos = read_header(stream, _MAGIC)
    if expected_dims is not None and tuple(expected_dims) != dims:
        raise CorruptStreamError(
            f"stream dims {dims} do not match expected {tuple(expected_dims)}"
        )
    view = memoryview(stream)
    mode = ints[0]
    np_dtype = dtype_to_numpy(dtype)
    if mode == MODE_REVERSIBLE:
        return _decompress_reversible(bytes(view[pos:]), dims, np_dtype)

    step = doubles[0]
    shift_len = ints[1]
    transform = bool(ints[2]) if len(ints) > 2 else True
    import zlib as _zlib

    nblocks = int(np.prod([(s + BLOCK_SIDE - 1) // BLOCK_SIDE for s in dims],
                          dtype=np.int64))
    if _trace.ACTIVE is not None:
        span = _trace.stage("zfp:entropy")
    else:
        span = nullcontext()
    with span:
        shifts = np.frombuffer(
            _zlib.decompress(bytes(view[pos:pos + shift_len])), dtype=np.uint8
        ).astype(np.int64)
        if shifts.size != nblocks:
            raise CorruptStreamError("shift table does not match block count")
        d = len(dims)
        kept = decode_residuals(bytes(view[pos + shift_len:]))
    expected = nblocks * BLOCK_SIDE**d
    if kept.size != expected:
        raise CorruptStreamError(
            f"coefficient payload holds {kept.size}, expected {expected}"
        )
    if _trace.ACTIVE is not None:
        span = _trace.stage("zfp:transform")
    else:
        span = nullcontext()
    with span:
        # the coefficient buffer came off the entropy decoder, so the
        # shift and inverse transform can run on it in place
        blocks = kept.reshape((nblocks,) + (BLOCK_SIDE,) * d)
        if np.any(shifts):
            blocks = _lshift(blocks, shifts)
        if transform:
            _inv_transform(blocks)
        codes = _from_blocks(blocks, dims)
    if _trace.ACTIVE is not None:
        span = _trace.stage("zfp:dequantize")
    else:
        span = nullcontext()
    with span:
        out = codes.astype(np.float64) * (2.0 * step)
    if np_dtype.kind in "iu":
        return np.rint(out).astype(np_dtype)
    return out.astype(np_dtype)


# ----------------------------------------------------------------------
# reversible mode: bit-exact round trip via integerized floats + Lorenzo
# ----------------------------------------------------------------------
def _float_to_ordered_int(arr: np.ndarray) -> np.ndarray:
    """Bit-cast floats to sign-magnitude-ordered int64 (monotonic map)."""
    if arr.dtype == np.float32:
        u = np.ascontiguousarray(arr).view(np.uint32).astype(np.uint64)
        sign = (u >> np.uint64(31)) != 0
        flipped = np.where(sign, np.uint64(0xFFFFFFFF) - u, u | np.uint64(0x80000000))
        return flipped.view(np.int64) - np.int64(2**31)
    u = np.ascontiguousarray(arr.astype(np.float64)).view(np.uint64)
    sign = (u >> np.uint64(63)) != 0
    flipped = np.where(sign, ~u, u | np.uint64(1) << np.uint64(63))
    return flipped.view(np.int64)


def _ordered_int_to_float(codes: np.ndarray, np_dtype: np.dtype) -> np.ndarray:
    if np_dtype == np.float32:
        u = (codes + np.int64(2**31)).view(np.uint64)
        sign = (u & np.uint64(0x80000000)) == 0
        back = np.where(sign, np.uint64(0xFFFFFFFF) - u, u & np.uint64(0x7FFFFFFF))
        return back.astype(np.uint32).view(np.float32)
    u = codes.view(np.uint64)
    sign = (u >> np.uint64(63)) == 0
    back = np.where(sign, ~u, u & ~(np.uint64(1) << np.uint64(63)))
    return back.view(np.float64).astype(np_dtype)


def _decompress_reversible(payload: bytes, dims: tuple[int, ...],
                           np_dtype: np.dtype) -> np.ndarray:
    residuals = decode_residuals(payload).reshape(dims)
    codes = lorenzo_decode(residuals, clobber=True)
    if np_dtype.kind == "f":
        return _ordered_int_to_float(codes.reshape(-1), np_dtype).reshape(dims)
    return codes.astype(np_dtype)
