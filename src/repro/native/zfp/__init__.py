"""ZFP-style transform-based error-bounded compressor (from scratch)."""

from .api import (
    zfp_compress,
    zfp_decompress,
    zfp_field,
    zfp_field_1d,
    zfp_field_2d,
    zfp_field_3d,
    zfp_field_4d,
    zfp_field_free,
    zfp_stream,
    zfp_stream_close,
    zfp_stream_maximum_size,
    zfp_stream_open,
    zfp_stream_set_accuracy,
    zfp_stream_set_precision,
    zfp_stream_set_rate,
    zfp_stream_set_reversible,
    zfp_type_double,
    zfp_type_float,
    zfp_type_int32,
    zfp_type_int64,
)
from .core import (
    BLOCK_SIDE,
    MODE_ACCURACY,
    MODE_PRECISION,
    MODE_RATE,
    MODE_REVERSIBLE,
    compress,
    compress_stage1,
    compress_stage2,
    decompress,
)

__all__ = [
    "compress", "compress_stage1", "compress_stage2", "decompress",
    "BLOCK_SIDE", "MODE_ACCURACY", "MODE_PRECISION", "MODE_RATE",
    "MODE_REVERSIBLE",
    "zfp_stream", "zfp_field", "zfp_stream_open", "zfp_stream_close",
    "zfp_stream_set_accuracy", "zfp_stream_set_precision",
    "zfp_stream_set_rate", "zfp_stream_set_reversible",
    "zfp_field_1d", "zfp_field_2d", "zfp_field_3d", "zfp_field_4d",
    "zfp_field_free",
    "zfp_compress", "zfp_decompress", "zfp_stream_maximum_size",
    "zfp_type_float", "zfp_type_double", "zfp_type_int32", "zfp_type_int64",
]
