"""zfp's C-style API: streams, fields, and Fortran dimension ordering.

Mimics the ergonomics of zfp 0.5.5's ``zfp.h``:

* ``zfp_stream`` objects carry the compression mode — multiple
  independent instances may exist (unlike SZ's global store), so this
  native is re-entrant;
* ``zfp_field_1d/2d/3d(data, type, nx[, ny[, nz]])`` describe buffers
  with **nx the fastest-varying dimension** (Fortran ordering) — the
  opposite convention from SZ, which is exactly the trap Section V of
  the paper measures;
* ``zfp_stream_set_accuracy`` / ``set_precision`` / ``set_rate`` /
  ``set_reversible`` select the mode.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from . import core

__all__ = [
    "zfp_type_float", "zfp_type_double", "zfp_type_int32", "zfp_type_int64",
    "zfp_stream", "zfp_field",
    "zfp_stream_open", "zfp_stream_close",
    "zfp_stream_set_accuracy", "zfp_stream_set_precision",
    "zfp_stream_set_rate", "zfp_stream_set_reversible",
    "zfp_field_1d", "zfp_field_2d", "zfp_field_3d", "zfp_field_4d",
    "zfp_field_free",
    "zfp_compress", "zfp_decompress", "zfp_stream_maximum_size",
]

zfp_type_int32 = 1
zfp_type_int64 = 2
zfp_type_float = 3
zfp_type_double = 4

_TYPE_MAP = {
    zfp_type_int32: np.dtype(np.int32),
    zfp_type_int64: np.dtype(np.int64),
    zfp_type_float: np.dtype(np.float32),
    zfp_type_double: np.dtype(np.float64),
}


@dataclasses.dataclass
class zfp_stream:  # noqa: N801 - mimics the C struct name
    """Per-instance compression configuration (re-entrant)."""

    mode: int = core.MODE_ACCURACY
    parameter: float = 1e-3
    backend: str = "zlib"
    level: int = 1
    transform: bool = True  # ablation hook: skip the block transform


@dataclasses.dataclass
class zfp_field:  # noqa: N801 - mimics the C struct name
    """A typed field description with Fortran-ordered dimensions."""

    data: np.ndarray | None
    zfp_type: int
    nx: int
    ny: int = 0
    nz: int = 0
    nw: int = 0

    def c_order_dims(self) -> tuple[int, ...]:
        """The C-order shape implied by (nx, ny, nz, nw)."""
        dims = [d for d in (self.nw, self.nz, self.ny, self.nx) if d]
        return tuple(dims)

    def numpy_dtype(self) -> np.dtype:
        try:
            return _TYPE_MAP[self.zfp_type]
        except KeyError:
            raise ValueError(f"unknown zfp type {self.zfp_type}") from None


def zfp_stream_open() -> zfp_stream:
    """Create a new stream with default (accuracy 1e-3) settings."""
    return zfp_stream()


def zfp_stream_close(stream: zfp_stream) -> None:
    """No-op resource release for API parity."""


def zfp_stream_set_accuracy(stream: zfp_stream, tolerance: float) -> float:
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    stream.mode = core.MODE_ACCURACY
    stream.parameter = float(tolerance)
    return stream.parameter


def zfp_stream_set_precision(stream: zfp_stream, precision: int) -> int:
    if precision < 1 or precision > 64:
        raise ValueError("precision must be in [1, 64]")
    stream.mode = core.MODE_PRECISION
    stream.parameter = int(precision)
    return precision


def zfp_stream_set_rate(stream: zfp_stream, rate: float, *_ignored) -> float:
    if rate < 1:
        raise ValueError("rate must be >= 1 bit per value")
    stream.mode = core.MODE_RATE
    stream.parameter = float(rate)
    return stream.parameter


def zfp_stream_set_reversible(stream: zfp_stream) -> None:
    stream.mode = core.MODE_REVERSIBLE
    stream.parameter = 0.0


def zfp_field_1d(data: np.ndarray | None, zfp_type: int, nx: int) -> zfp_field:
    return zfp_field(data, zfp_type, nx)


def zfp_field_2d(data: np.ndarray | None, zfp_type: int, nx: int, ny: int) -> zfp_field:
    """Note the argument order: nx (fastest) first, as in zfp."""
    return zfp_field(data, zfp_type, nx, ny)


def zfp_field_3d(data: np.ndarray | None, zfp_type: int,
                 nx: int, ny: int, nz: int) -> zfp_field:
    return zfp_field(data, zfp_type, nx, ny, nz)


def zfp_field_4d(data: np.ndarray | None, zfp_type: int,
                 nx: int, ny: int, nz: int, nw: int) -> zfp_field:
    return zfp_field(data, zfp_type, nx, ny, nz, nw)


def zfp_field_free(field: zfp_field) -> None:
    field.data = None


def zfp_stream_maximum_size(stream: zfp_stream, field: zfp_field) -> int:
    """Worst-case stream size bound (generous, as the C API's is)."""
    n = int(np.prod(field.c_order_dims(), dtype=np.int64))
    return 9 * n * field.numpy_dtype().itemsize + 1024


def zfp_compress(stream: zfp_stream, field: zfp_field) -> bytes:
    """Compress the field's buffer under the stream's mode."""
    if field.data is None:
        raise ValueError("field has no data attached")
    dims = field.c_order_dims()
    arr = np.asarray(field.data, dtype=field.numpy_dtype()).reshape(dims)
    return core.compress(arr, stream.mode, stream.parameter,
                         backend=stream.backend, level=stream.level,
                         transform=stream.transform)


def zfp_decompress(stream: zfp_stream, field: zfp_field,
                   buffer: bytes) -> np.ndarray:
    """Decompress into (and return) the field's buffer."""
    dims = field.c_order_dims()
    out = core.decompress(buffer, expected_dims=dims)
    out = out.astype(field.numpy_dtype(), copy=False)
    if field.data is not None:
        flat = np.asarray(field.data).reshape(-1)
        flat[:] = out.reshape(-1)
        return np.asarray(field.data).reshape(dims)
    field.data = out
    return out
