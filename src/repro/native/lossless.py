"""One-shot byte-stream lossless codecs.

The "boring" end of the compressor spectrum: type-oblivious codecs that
treat every input as a flat byte stream (the paper's Section V notes
these typically accept no type information at all — that *is* their
interface).  The stdlib-backed entries model linking against zlib/bzip2/
lzma; ``pressio-lz``, ``rle`` and ``huffman-bytes`` are implemented from
scratch in :mod:`repro.encoders`.

Every codec exposes the same two functions — ``encode(bytes) -> bytes``
and ``decode(bytes) -> bytes`` — via :func:`get_codec`.
"""

from __future__ import annotations

import bz2
import lzma
import zlib
from typing import Callable, NamedTuple

import numpy as np

from ..encoders.huffman import huffman_decode, huffman_encode
from ..encoders.lz77 import lz77_decode, lz77_encode
from ..encoders.rle import rle_decode, rle_encode

__all__ = ["Codec", "get_codec", "codec_ids"]


class Codec(NamedTuple):
    """A lossless byte codec: paired encode/decode callables."""

    name: str
    encode: Callable[[bytes], bytes]
    decode: Callable[[bytes], bytes]


def _huffman_bytes_encode(data: bytes) -> bytes:
    return huffman_encode(np.frombuffer(data, dtype=np.uint8).astype(np.uint64))


def _huffman_bytes_decode(stream: bytes) -> bytes:
    return huffman_decode(stream).astype(np.uint8).tobytes()


_CODECS: dict[str, Codec] = {
    "zlib": Codec("zlib", lambda b: zlib.compress(b, 6), zlib.decompress),
    "zlib-fast": Codec("zlib-fast", lambda b: zlib.compress(b, 1), zlib.decompress),
    "zlib-best": Codec("zlib-best", lambda b: zlib.compress(b, 9), zlib.decompress),
    "bz2": Codec("bz2", lambda b: bz2.compress(b, 9), bz2.decompress),
    "lzma": Codec("lzma", lambda b: lzma.compress(b, preset=1), lzma.decompress),
    "pressio-lz": Codec("pressio-lz", lz77_encode, lz77_decode),
    "rle": Codec("rle", rle_encode, rle_decode),
    "huffman-bytes": Codec("huffman-bytes", _huffman_bytes_encode,
                           _huffman_bytes_decode),
    "memcpy": Codec("memcpy", lambda b: bytes(b), lambda b: bytes(b)),
}


def get_codec(name: str) -> Codec:
    """Look up a codec by id; raises KeyError listing known ids."""
    try:
        return _CODECS[name]
    except KeyError:
        raise KeyError(
            f"unknown lossless codec {name!r}; known: {sorted(_CODECS)}"
        ) from None


def codec_ids() -> list[str]:
    """All registered codec ids."""
    return sorted(_CODECS)
