"""Size-class buffer pool for native-core scratch arrays.

The native pipelines allocate a handful of short-lived ndarrays per
operation (quantizer scratch, Lorenzo ping-pong buffers, byte-plane
staging).  At the block sizes the benchmarks use (~100 KiB) allocator
round trips and page faulting are a measurable slice of the per-call
budget, so the cores recycle scratch through this pool instead.

Design:

* buffers are keyed by power-of-two *size class* of their byte length,
  so any request within a class reuses the same backing allocation;
* free lists are **thread-local** — acquire/release never take a lock,
  and a buffer released on one thread is never handed to another, which
  keeps the pool safe under the meta-layer thread pools without
  synchronization on the hot path;
* :func:`acquire` returns a view (``dtype``/``shape``) over a pooled
  flat ``uint8`` allocation; :func:`release` walks ``.base`` back to
  that allocation, so callers can release the shaped view they were
  given;
* hit/miss/return counters are exported to the metrics registry via
  :func:`repro.obs.bridge.ingest_runtime` as ``pressio_pool_*`` gauges.

The pool trades memory for speed deliberately: at most
``_MAX_PER_CLASS`` buffers per class per thread are retained, and
requests above ``2**_MAX_CLASS`` bytes bypass pooling entirely.

Contents of an acquired buffer are **uninitialized** (like
``np.empty``); callers must fully overwrite what they read back.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["acquire", "release", "stats", "clear", "reset_stats"]

_MIN_CLASS = 6    # 64 B — below this, pooling costs more than malloc
_MAX_CLASS = 26   # 64 MiB — above this, hand back to the allocator
_MAX_PER_CLASS = 8


class _ThreadState(threading.local):
    def __init__(self) -> None:
        self.free: list[list[np.ndarray]] = [
            [] for _ in range(_MAX_CLASS + 1)
        ]


_state = _ThreadState()

# Counters are plain module ints: incremented under the GIL from
# whichever thread runs an operation.  A rare lost increment under
# free-threading is acceptable for a monitoring gauge; the hot path
# must not pay for a lock.
hits = 0
misses = 0
returned = 0


def _size_class(nbytes: int) -> int:
    if nbytes <= (1 << _MIN_CLASS):
        return _MIN_CLASS
    return int(nbytes - 1).bit_length()


def acquire(shape, dtype=np.float64) -> np.ndarray:
    """A writable ndarray of ``shape``/``dtype`` with undefined contents."""
    global hits, misses
    dt = np.dtype(dtype)
    if isinstance(shape, (int, np.integer)):
        shape = (int(shape),)
        nelems = shape[0]
    else:
        shape = tuple(int(s) for s in shape)
        nelems = 1
        for s in shape:
            nelems *= s
    nbytes = dt.itemsize * nelems
    cls = _size_class(nbytes)
    if cls > _MAX_CLASS:
        misses += 1
        return np.empty(shape, dt)
    free = _state.free[cls]
    if free:
        hits += 1
        raw = free.pop()
    else:
        misses += 1
        raw = np.empty(1 << cls, np.uint8)
    return raw[:nbytes].view(dt).reshape(shape)


def release(*arrays: np.ndarray) -> None:
    """Return arrays obtained from :func:`acquire` to this thread's pool.

    Arrays the pool did not hand out (wrong backing shape, externally
    allocated) are silently dropped, so callers may release buffers
    unconditionally on paths where pooling was bypassed.
    """
    global returned
    for arr in arrays:
        root = arr
        while root.base is not None:
            root = root.base
        if not isinstance(root, np.ndarray):
            continue
        if root.dtype != np.uint8 or root.ndim != 1:
            continue
        n = root.nbytes
        if n == 0 or n & (n - 1):  # pooled roots are exact powers of two
            continue
        cls = n.bit_length() - 1
        if cls < _MIN_CLASS or cls > _MAX_CLASS:
            continue
        free = _state.free[cls]
        if len(free) < _MAX_PER_CLASS:
            free.append(root)
            returned += 1


def stats() -> dict:
    """Pool counters plus this thread's pooled byte total."""
    pooled = sum(len(lst) << cls
                 for cls, lst in enumerate(_state.free) if lst)
    return {"hits": hits, "misses": misses, "returned": returned,
            "pooled_bytes": pooled}


def clear() -> None:
    """Drop this thread's free lists (buffers go back to the allocator)."""
    for lst in _state.free:
        lst.clear()


def reset_stats() -> None:
    global hits, misses, returned
    hits = misses = returned = 0
