"""fpzip-style specialized lossless floating-point compressor.

Like real fpzip (Lindstrom & Isenburg 2006), this native *only accepts
floating point inputs* — the property the paper uses as the canonical
example of a compressor whose interface needs data-type metadata.

Algorithm: floats are mapped to sign-magnitude-ordered integers (a
monotonic bijection), Lorenzo-predicted across all dimensions, and the
integer residuals entropy coded.  The round trip is bit exact.

API flavour: fpzip's header+context style —

    ctx = fpzip_write_ctx(type, prec, nx, ny, nz, nf)
    stream = fpzip_write(ctx, data)
    ctx = fpzip_read_ctx(stream)
    data = fpzip_read(ctx)
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ...core.status import CorruptStreamError, InvalidTypeError
from ...encoders.headers import read_header, write_header
from ...encoders.predictors import lorenzo_decode, lorenzo_encode
from ...encoders.residual import decode_residuals, encode_residuals
from ..zfp.core import _float_to_ordered_int, _ordered_int_to_float

__all__ = [
    "FPZIP_TYPE_FLOAT",
    "FPZIP_TYPE_DOUBLE",
    "fpzip_write_ctx",
    "fpzip_read_ctx",
    "fpzip_write",
    "fpzip_read",
    "compress",
    "decompress",
]

_MAGIC = b"FPZ1"

FPZIP_TYPE_FLOAT = 0
FPZIP_TYPE_DOUBLE = 1

from ...core.dtype import DType, dtype_from_numpy, dtype_to_numpy  # noqa: E402


def compress(data: np.ndarray, backend: str = "zlib", level: int = 1) -> bytes:
    """Losslessly compress a float32/float64 array."""
    arr = np.asarray(data)
    if arr.dtype not in (np.float32, np.float64):
        raise InvalidTypeError(
            f"fpzip only accepts floating point inputs, got {arr.dtype}"
        )
    dtype = dtype_from_numpy(arr.dtype)
    codes = _float_to_ordered_int(np.ascontiguousarray(arr).reshape(-1))
    residuals = lorenzo_encode(codes.reshape(arr.shape))
    payload = encode_residuals(residuals.reshape(-1), backend=backend,
                               level=level)
    return write_header(_MAGIC, dtype, arr.shape) + payload


def decompress(stream: bytes | memoryview,
               expected_dims: tuple[int, ...] | None = None) -> np.ndarray:
    """Bit-exact inverse of :func:`compress`."""
    dtype, dims, _doubles, _ints, pos = read_header(stream, _MAGIC)
    if expected_dims is not None and tuple(expected_dims) != dims:
        raise CorruptStreamError(
            f"stream dims {dims} do not match expected {tuple(expected_dims)}"
        )
    residuals = decode_residuals(bytes(memoryview(stream)[pos:]))
    codes = lorenzo_decode(residuals.reshape(dims))
    np_dtype = dtype_to_numpy(dtype)
    return _ordered_int_to_float(codes.reshape(-1), np_dtype).reshape(dims)


@dataclasses.dataclass
class _FpzipCtx:
    """Carrier for fpzip's context-style API."""

    type: int
    nx: int
    ny: int
    nz: int
    nf: int
    stream: bytes | None = None


def fpzip_write_ctx(type: int, nx: int, ny: int = 1, nz: int = 1,
                    nf: int = 1) -> _FpzipCtx:
    """Open a write context; dims follow fpzip's (nx fastest) order."""
    if type not in (FPZIP_TYPE_FLOAT, FPZIP_TYPE_DOUBLE):
        raise ValueError(f"unknown fpzip type {type}")
    return _FpzipCtx(type, nx, ny, nz, nf)


def fpzip_write(ctx: _FpzipCtx, data: np.ndarray) -> bytes:
    """Compress ``data`` described by the context."""
    np_dtype = np.float32 if ctx.type == FPZIP_TYPE_FLOAT else np.float64
    dims = tuple(d for d in (ctx.nf, ctx.nz, ctx.ny, ctx.nx) if d > 1) or (ctx.nx,)
    arr = np.asarray(data, dtype=np_dtype).reshape(dims)
    ctx.stream = compress(arr)
    return ctx.stream


def fpzip_read_ctx(stream: bytes) -> _FpzipCtx:
    """Open a read context by parsing the stream header."""
    dtype, dims, _d, _i, _pos = read_header(stream, _MAGIC)
    padded = (1,) * (4 - len(dims)) + dims
    nf, nz, ny, nx = padded
    t = FPZIP_TYPE_FLOAT if dtype == DType.FLOAT else FPZIP_TYPE_DOUBLE
    ctx = _FpzipCtx(t, nx, ny, nz, nf)
    ctx.stream = bytes(stream)
    return ctx


def fpzip_read(ctx: _FpzipCtx) -> np.ndarray:
    """Decompress the stream attached to a read context."""
    if ctx.stream is None:
        raise ValueError("context has no stream attached")
    return decompress(ctx.stream)
