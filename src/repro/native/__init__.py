"""From-scratch "native" compressor libraries with divergent APIs.

The premise of the paper is that every compressor exposes a different —
often mutually incompatible — interface, and LibPressio papers over the
differences.  To reproduce that faithfully, each subpackage here
implements a real compressor *and* mimics the API ergonomics of the
library it stands in for:

* :mod:`repro.native.sz` — ``SZ_Init``/``SZ_Finalize`` global config
  store, ``SZ_compress_args(type, data, r5..r1, ...)`` with reversed
  dimension arguments, single-threaded, clobbers its input;
* :mod:`repro.native.zfp` — ``zfp_stream`` / ``zfp_field`` objects,
  Fortran dimension ordering (``nx`` fastest), re-entrant;
* :mod:`repro.native.mgard` — one-shot ``compress(dataset, tol, s)``,
  raises on any dimension < 3;
* :mod:`repro.native.fpzip` — header+context API, floats only, lossless;
* :mod:`repro.native.lossless` — one-shot byte-stream codecs (zlib, bz2,
  lzma, pressio-lz, rle, huffman-bytes).

The benchmark in ``benchmarks/test_fig3_overhead.py`` calls these
directly (the "native" arm) and through the LibPressio plugins (the
"pressio" arm) in matched pairs, exactly as Section VI of the paper does.
"""
