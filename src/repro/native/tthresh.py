"""tthresh-style compressor: truncated higher-order SVD.

From the paper's plugin glossary: "a compressor that uses the principles
of singular value decomposition to compress data".  Like real tthresh
(Ballester-Ripoll et al.), data is treated as a tensor, decomposed with
a Tucker/HOSVD factorization, and compressed by truncating factor ranks
to meet a *relative L2* (not pointwise) error target, then quantizing
what remains.

Pipeline:

1. successive matricizations: SVD along each mode, keep the smallest
   rank whose discarded tail energy fits the per-mode share of the
   target;
2. the core tensor and factor matrices are quantized (uniform, step
   sized from the same budget) and entropy coded with the shared
   residual codec;
3. reconstruction multiplies the factors back.

Error semantics: ``tolerance`` bounds the relative Frobenius error
``||x - x'||_F / ||x||_F`` (the SVD-native norm), *not* the pointwise
maximum — matching real tthresh, and providing the library's example of
a compressor whose bound type differs from the abs/rel family.
"""

from __future__ import annotations

import numpy as np

from ..core.dtype import dtype_from_numpy, dtype_to_numpy
from ..core.status import CorruptStreamError, InvalidDimensionsError
from ..encoders.headers import read_header, write_header
from ..encoders.quantize import dequantize_uniform, quantize_uniform
from ..encoders.residual import decode_residuals, encode_residuals

__all__ = ["compress", "decompress"]

_MAGIC = b"TTH1"


def _mode_unfold(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Mode-n matricization: (I_n, prod of other dims)."""
    return np.moveaxis(tensor, mode, 0).reshape(tensor.shape[mode], -1)


def _mode_fold(matrix: np.ndarray, mode: int, shape: tuple[int, ...]
               ) -> np.ndarray:
    full = (shape[mode],) + tuple(s for i, s in enumerate(shape)
                                  if i != mode)
    return np.moveaxis(matrix.reshape(full), 0, mode)


def _hosvd_truncate(tensor: np.ndarray, tolerance: float
                    ) -> tuple[np.ndarray, list[np.ndarray]]:
    """Sequentially-truncated HOSVD with a shared tail-energy budget.

    Discarded energy per mode is at most ``(0.9*tolerance)^2 / ndim`` of
    the total, reserving the remaining squared budget for the
    quantization stage.
    """
    total_energy = float(np.sum(tensor * tensor))
    if total_energy == 0.0:
        return tensor.copy(), [np.eye(s) for s in tensor.shape]
    budget = (0.9 * tolerance) ** 2 * total_energy / tensor.ndim
    core = tensor.astype(np.float64, copy=True)
    factors: list[np.ndarray] = []
    for mode in range(tensor.ndim):
        unfolded = _mode_unfold(core, mode)
        u, s, _vt = np.linalg.svd(unfolded, full_matrices=False)
        # smallest rank whose discarded tail energy fits the mode budget
        tail = np.concatenate((np.cumsum((s * s)[::-1])[::-1][1:], [0.0]))
        keep = int(np.argmax(tail <= budget)) + 1
        factors.append(u[:, :keep])
        core = _mode_fold(
            u[:, :keep].T @ unfolded, mode,
            core.shape[:mode] + (keep,) + core.shape[mode + 1:])
    return core, factors


def _reconstruct(core: np.ndarray, factors: list[np.ndarray]) -> np.ndarray:
    out = core
    for mode, factor in enumerate(factors):
        unfolded = _mode_unfold(out, mode)
        folded_shape = (out.shape[:mode] + (factor.shape[0],)
                        + out.shape[mode + 1:])
        out = _mode_fold(factor @ unfolded, mode, folded_shape)
    return out


def compress(data: np.ndarray, tolerance: float,
             backend: str = "zlib", level: int = 1) -> bytes:
    """Compress with a relative-L2 (Frobenius) error target."""
    arr = np.asarray(data)
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    if arr.ndim < 1 or arr.ndim > 4:
        raise InvalidDimensionsError(
            f"tthresh supports 1-4 dimensions, got {arr.ndim}")
    if arr.dtype.kind not in "fiu":
        raise TypeError(f"tthresh cannot compress dtype {arr.dtype}")
    dtype = dtype_from_numpy(arr.dtype)
    work = arr.astype(np.float64, copy=False)
    core, factors = _hosvd_truncate(work, tolerance)

    # quantization: rank truncation consumes (0.9*tol)^2 of the budget;
    # quantize each piece finely enough (scale * tol / 256) that its
    # contribution stays well inside the remainder while the entropy
    # stage still profits from the reduced precision
    pieces = [core.reshape(-1)] + [f.reshape(-1) for f in factors]
    blobs = []
    steps = []
    for piece in pieces:
        scale = float(np.abs(piece).max()) if piece.size else 0.0
        eb = scale * tolerance / 256.0 if scale > 0.0 else 1.0
        codes = quantize_uniform(piece, eb)
        blobs.append(encode_residuals(codes, backend=backend, level=level))
        steps.append(eb)

    ranks = [f.shape[1] for f in factors]
    header = write_header(
        _MAGIC, dtype, arr.shape,
        doubles=(float(tolerance),) + tuple(steps),
        ints=tuple(ranks) + tuple(len(b) for b in blobs))
    return header + b"".join(blobs)


def decompress(stream: bytes | memoryview,
               expected_dims: tuple[int, ...] | None = None) -> np.ndarray:
    """Reconstruct from the truncated factorization."""
    dtype, dims, doubles, ints, pos = read_header(stream, _MAGIC)
    if expected_dims is not None and tuple(expected_dims) != dims:
        raise CorruptStreamError(
            f"stream dims {dims} do not match expected {tuple(expected_dims)}")
    ndim = len(dims)
    steps = doubles[1:]
    ranks = list(ints[:ndim])
    blob_lens = list(ints[ndim:])
    if len(blob_lens) != ndim + 1 or len(steps) != ndim + 1:
        raise CorruptStreamError("tthresh header is inconsistent")
    view = memoryview(stream)
    pieces = []
    for i, (length, eb) in enumerate(zip(blob_lens, steps)):
        codes = decode_residuals(bytes(view[pos:pos + length]))
        pieces.append(dequantize_uniform(codes, eb))
        pos += length
    core_shape = tuple(ranks)
    core = pieces[0].reshape(core_shape)
    factors = [pieces[1 + mode].reshape(dims[mode], ranks[mode])
               for mode in range(ndim)]
    out = _reconstruct(core, factors)
    np_dtype = dtype_to_numpy(dtype)
    if np_dtype.kind in "iu":
        return np.rint(out).astype(np_dtype)
    return out.astype(np_dtype)
