"""Distributional metrics: ``ks_test``, ``kl_divergence``, ``diff_pdf``.

* ``ks_test`` — two-sample Kolmogorov-Smirnov statistic/p-value between
  the original and decompressed samples (scipy implementation, per the
  glossary definition);
* ``kl_divergence`` — relative entropy D(P||Q) between histograms of the
  original and decompressed data;
* ``diff_pdf`` — an empirical probability density function of the
  pointwise differences (the "differences-probabilities pdf" module).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from ..core.data import PressioData
from ..core.options import OptionType, PressioOptions
from ..core.registry import metric_plugin
from ..core.status import InvalidOptionError
from .base import ComparisonMetrics

__all__ = ["KSTestMetrics", "KLDivergenceMetrics", "DiffPdfMetrics"]


@metric_plugin("ks_test")
class KSTestMetrics(ComparisonMetrics):
    """Two-sample KS test between original and decompressed samples."""

    def __init__(self) -> None:
        super().__init__()
        self._stat: float | None = None
        self._pvalue: float | None = None

    def _evaluate(self, original: np.ndarray, decompressed: np.ndarray) -> None:
        if original.size < 2:
            self._stat = self._pvalue = None
            return
        result = stats.ks_2samp(original, decompressed)
        self._stat = float(result.statistic)
        self._pvalue = float(result.pvalue)

    def get_metrics_results(self) -> PressioOptions:
        results = PressioOptions()
        if self._stat is not None:
            results.set("ks_test:d", self._stat)
            results.set("ks_test:pvalue", self._pvalue)
        return results

    def reset(self) -> None:
        super().reset()
        self._stat = self._pvalue = None


@metric_plugin("kl_divergence")
class KLDivergenceMetrics(ComparisonMetrics):
    """Histogram KL divergence D(original || decompressed)."""

    def __init__(self) -> None:
        super().__init__()
        self._bins = 128
        self._kl: float | None = None

    def _options(self) -> PressioOptions:
        opts = PressioOptions()
        opts.set("kl_divergence:bins", np.int32(self._bins))
        return opts

    def _set_options(self, options: PressioOptions) -> None:
        bins = int(self._take(options, "kl_divergence:bins", OptionType.INT32,
                              self._bins))
        if bins < 2:
            raise InvalidOptionError("kl_divergence:bins must be >= 2")
        self._bins = bins

    def _evaluate(self, original: np.ndarray, decompressed: np.ndarray) -> None:
        lo = min(float(original.min()), float(decompressed.min()))
        hi = max(float(original.max()), float(decompressed.max()))
        if hi <= lo:
            self._kl = 0.0
            return
        p, _ = np.histogram(original, bins=self._bins, range=(lo, hi))
        q, _ = np.histogram(decompressed, bins=self._bins, range=(lo, hi))
        # Laplace smoothing keeps the divergence finite for empty bins
        p = (p + 1.0) / (p.sum() + self._bins)
        q = (q + 1.0) / (q.sum() + self._bins)
        self._kl = float(np.sum(p * np.log(p / q)))

    def get_metrics_results(self) -> PressioOptions:
        results = PressioOptions()
        if self._kl is not None:
            results.set("kl_divergence:kl", self._kl)
        return results

    def reset(self) -> None:
        super().reset()
        self._kl = None


@metric_plugin("diff_pdf")
class DiffPdfMetrics(ComparisonMetrics):
    """Empirical pdf of the pointwise differences."""

    def __init__(self) -> None:
        super().__init__()
        self._bins = 64
        self._pdf: np.ndarray | None = None
        self._edges: np.ndarray | None = None

    def _options(self) -> PressioOptions:
        opts = PressioOptions()
        opts.set("diff_pdf:bins", np.int32(self._bins))
        return opts

    def _set_options(self, options: PressioOptions) -> None:
        bins = int(self._take(options, "diff_pdf:bins", OptionType.INT32,
                              self._bins))
        if bins < 2:
            raise InvalidOptionError("diff_pdf:bins must be >= 2")
        self._bins = bins

    def _evaluate(self, original: np.ndarray, decompressed: np.ndarray) -> None:
        diff = decompressed - original
        counts, edges = np.histogram(diff, bins=self._bins, density=True)
        self._pdf = counts
        self._edges = edges

    def get_metrics_results(self) -> PressioOptions:
        results = PressioOptions()
        if self._pdf is not None:
            results.set("diff_pdf:pdf", PressioData.from_numpy(self._pdf))
            results.set("diff_pdf:edges", PressioData.from_numpy(self._edges))
        return results

    def reset(self) -> None:
        super().reset()
        self._pdf = self._edges = None
