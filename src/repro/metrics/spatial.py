"""Pointwise/region metrics: ``spatial_error``, ``kth_error``,
``region_of_interest``, and ``mask``.

* ``spatial_error`` — percentage of elements whose absolute error
  exceeds a threshold (the glossary's "Spatial Error");
* ``kth_error`` — the k-th largest absolute error (the glossary's
  "k-th order error");
* ``region_of_interest`` — arithmetic mean of a rectangular sub-region
  of the decompressed data, compared against the original's;
* ``mask`` — removes specified points before forwarding to a child
  metric.
"""

from __future__ import annotations

import numpy as np

from ..core.data import PressioData
from ..core.metrics import PressioMetrics
from ..core.options import OptionType, PressioOptions
from ..core.registry import metric_plugin, metrics_registry
from ..core.status import InvalidOptionError
from .base import ComparisonMetrics

__all__ = ["SpatialErrorMetrics", "KthErrorMetrics",
           "RegionOfInterestMetrics", "MaskMetrics"]


@metric_plugin("spatial_error")
class SpatialErrorMetrics(ComparisonMetrics):
    """Percent of elements exceeding ``spatial_error:threshold``."""

    def __init__(self) -> None:
        super().__init__()
        self._threshold = 1e-4
        self._percent: float | None = None

    def _options(self) -> PressioOptions:
        opts = PressioOptions()
        opts.set("spatial_error:threshold", float(self._threshold))
        return opts

    def _set_options(self, options: PressioOptions) -> None:
        thr = float(self._take(options, "spatial_error:threshold",
                               OptionType.DOUBLE, self._threshold))
        if thr < 0:
            raise InvalidOptionError("spatial_error:threshold must be >= 0")
        self._threshold = thr

    def _evaluate(self, original: np.ndarray, decompressed: np.ndarray) -> None:
        if original.size == 0:
            self._percent = 0.0
            return
        exceed = np.abs(decompressed - original) > self._threshold
        self._percent = 100.0 * float(exceed.mean())

    def get_metrics_results(self) -> PressioOptions:
        results = PressioOptions()
        if self._percent is not None:
            results.set("spatial_error:percent", self._percent)
        return results

    def reset(self) -> None:
        super().reset()
        self._percent = None


@metric_plugin("kth_error")
class KthErrorMetrics(ComparisonMetrics):
    """The k-th largest absolute error (k = ``kth_error:k``, 1-based)."""

    def __init__(self) -> None:
        super().__init__()
        self._k = 1
        self._value: float | None = None

    def _options(self) -> PressioOptions:
        opts = PressioOptions()
        opts.set("kth_error:k", np.int64(self._k))
        return opts

    def _set_options(self, options: PressioOptions) -> None:
        k = int(self._take(options, "kth_error:k", OptionType.INT64, self._k))
        if k < 1:
            raise InvalidOptionError("kth_error:k must be >= 1")
        self._k = k

    def _evaluate(self, original: np.ndarray, decompressed: np.ndarray) -> None:
        abs_err = np.abs(decompressed - original)
        if abs_err.size == 0 or self._k > abs_err.size:
            self._value = None
            return
        # partition is O(n); full sort would be O(n log n)
        self._value = float(
            np.partition(abs_err, abs_err.size - self._k)[abs_err.size - self._k]
        )

    def get_metrics_results(self) -> PressioOptions:
        results = PressioOptions()
        if self._value is not None:
            results.set("kth_error:kth_error", self._value)
        return results

    def reset(self) -> None:
        super().reset()
        self._value = None


@metric_plugin("region_of_interest")
class RegionOfInterestMetrics(PressioMetrics):
    """Mean of a rectangular region, original vs decompressed.

    The region is given as flat ``start``/``stop`` string lists (one
    entry per dimension), showing off the STRING_LIST option type.
    """

    def __init__(self) -> None:
        super().__init__()
        self._start: list[str] = []
        self._stop: list[str] = []
        self._orig: np.ndarray | None = None
        self._orig_mean: float | None = None
        self._dec_mean: float | None = None

    def _options(self) -> PressioOptions:
        opts = PressioOptions()
        opts.set("region_of_interest:start", list(self._start))
        opts.set("region_of_interest:stop", list(self._stop))
        return opts

    def _set_options(self, options: PressioOptions) -> None:
        start = options.get("region_of_interest:start")
        stop = options.get("region_of_interest:stop")
        if start is not None:
            self._start = [str(s) for s in start]
        if stop is not None:
            self._stop = [str(s) for s in stop]

    def _region(self, arr: np.ndarray) -> np.ndarray:
        if not self._start or len(self._start) != arr.ndim:
            return arr
        slices = tuple(
            slice(int(a), int(b)) for a, b in zip(self._start, self._stop)
        )
        return arr[slices]

    def begin_compress(self, input: PressioData) -> None:
        arr = np.asarray(input.to_numpy(), dtype=np.float64)
        region = self._region(arr)
        self._orig_mean = float(region.mean()) if region.size else None

    def end_decompress(self, input: PressioData, output: PressioData) -> None:
        arr = np.asarray(output.to_numpy(), dtype=np.float64)
        region = self._region(arr)
        self._dec_mean = float(region.mean()) if region.size else None

    def get_metrics_results(self) -> PressioOptions:
        results = PressioOptions()
        if self._orig_mean is not None:
            results.set("region_of_interest:uncompressed_mean", self._orig_mean)
        if self._dec_mean is not None:
            results.set("region_of_interest:decompressed_mean", self._dec_mean)
        if self._orig_mean is not None and self._dec_mean is not None:
            results.set("region_of_interest:mean_error",
                        abs(self._orig_mean - self._dec_mean))
        return results

    def reset(self) -> None:
        self._orig_mean = self._dec_mean = None


@metric_plugin("mask")
class MaskMetrics(ComparisonMetrics):
    """Excludes masked points, then forwards to a child metric.

    ``mask:mask`` is a DATA option (a 0/1 buffer shaped like the input —
    1 means *exclude*), demonstrating the DATA option type from Section
    IV-C; ``mask:metric`` names the wrapped plugin.
    """

    def __init__(self) -> None:
        super().__init__()
        self._mask: PressioData | None = None
        self._child_id = "error_stat"
        self._child: PressioMetrics = metrics_registry.create("error_stat")

    def _options(self) -> PressioOptions:
        opts = PressioOptions()
        opts.set("mask:metric", self._child_id)
        if self._mask is not None:
            opts.set("mask:mask", self._mask)
        else:
            opts.set_type("mask:mask", OptionType.DATA)
        return opts

    def _set_options(self, options: PressioOptions) -> None:
        child_id = options.get("mask:metric")
        if child_id is not None and child_id != self._child_id:
            self._child_id = str(child_id)
            self._child = metrics_registry.create(self._child_id)
        mask = options.get("mask:mask")
        if mask is not None:
            if not isinstance(mask, PressioData):
                raise InvalidOptionError("mask:mask must be a PressioData")
            self._mask = mask

    def _evaluate(self, original: np.ndarray, decompressed: np.ndarray) -> None:
        if self._mask is not None:
            keep = np.asarray(self._mask.to_numpy()).reshape(-1) == 0
            original = original[keep]
            decompressed = decompressed[keep]
        dims = (original.size,)
        self._child.begin_compress(
            PressioData.from_numpy(original.reshape(dims), copy=False))
        self._child.end_decompress(
            PressioData.from_bytes(b""),
            PressioData.from_numpy(decompressed.reshape(dims), copy=False))

    def get_metrics_results(self) -> PressioOptions:
        inner = self._child.get_metrics_results()
        results = PressioOptions()
        for key, opt in inner.items():
            results.set(f"mask:{key}", opt)
        return results

    def reset(self) -> None:
        super().reset()
        self._child.reset()
