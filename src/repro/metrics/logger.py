"""The ``csv_logger`` metrics plugin: append results to a CSV file.

Experiment harnesses (the zchecker, the distributed experiment, batch
sweeps) want a durable record of every operation.  This plugin wraps a
set of child metrics and, after each round trip, appends one CSV row of
their results to ``csv_logger:path`` — the experiment-logging pattern
libpressio serves with its ``csv`` printer metric.

Columns are the union of the child metrics' result keys, fixed at the
first write (a header line is emitted); later rows leave missing
entries blank.

``csv_logger:mode`` selects when rows are appended:

* ``roundtrip`` (default) — one row per compress(+decompress) pair.  A
  compress with no following decompress (compress-only sweeps) is
  flushed when the next operation begins, when results are read, on an
  explicit :meth:`flush`, or — for scripts that compress and simply
  exit — by an ``atexit`` hook, so buffered rows are never lost;
* ``per_operation`` — one row after *every* operation, with an
  ``operation`` column distinguishing compress from decompress rows.
"""

from __future__ import annotations

import atexit
import csv
import os
import weakref

from ..core.data import PressioData
from ..core.metrics import PressioMetrics
from ..core.options import OptionType, PressioOptions
from ..core.registry import metric_plugin, metrics_registry
from ..core.status import InvalidOptionError
from ..obs import runtime as _obs

__all__ = ["CsvLoggerMetrics"]

#: Live logger instances, flushed at interpreter exit so a sweep that
#: compresses and simply exits (never reading results or decompressing)
#: still gets its final row.  A WeakSet so registration does not keep
#: finished loggers alive.
_LIVE_LOGGERS: "weakref.WeakSet[CsvLoggerMetrics]" = weakref.WeakSet()


@atexit.register
def _flush_live_loggers() -> None:
    for logger in list(_LIVE_LOGGERS):
        try:
            logger.flush()
        except Exception as e:  # noqa: BLE001 - never block interpreter exit
            _obs.record_error("atexit_flush", "csv_logger", e)


@metric_plugin("csv_logger")
class CsvLoggerMetrics(PressioMetrics):
    """Log child-metric results to a CSV file, one row per round trip."""

    def __init__(self) -> None:
        super().__init__()
        self._path = ""
        self._mode = "roundtrip"
        self._child_ids = ["size", "time", "error_stat"]
        self._children = [metrics_registry.create(mid)
                          for mid in self._child_ids]
        self._columns: list[str] | None = None
        self._row_count = 0
        self._pending = False  # a compress happened; its row is unwritten
        _LIVE_LOGGERS.add(self)

    # -- options ----------------------------------------------------------
    def _options(self) -> PressioOptions:
        opts = PressioOptions()
        opts.set("csv_logger:path", self._path)
        opts.set("csv_logger:mode", self._mode)
        opts.set("csv_logger:metrics", list(self._child_ids))
        return opts

    def _set_options(self, options: PressioOptions) -> None:
        self._path = str(self._take(options, "csv_logger:path",
                                    OptionType.STRING, self._path))
        mode = str(self._take(options, "csv_logger:mode",
                              OptionType.STRING, self._mode))
        if mode not in ("roundtrip", "per_operation"):
            raise InvalidOptionError(
                "csv_logger:mode must be roundtrip or per_operation")
        self._mode = mode
        ids = options.get("csv_logger:metrics")
        if ids is not None:
            ids = [str(i) for i in ids]
            if ids != self._child_ids:
                self._child_ids = ids
                self._children = [metrics_registry.create(mid)
                                  for mid in ids]
                self._columns = None

    def _check_options(self, options: PressioOptions) -> None:
        mode = options.get("csv_logger:mode")
        if mode is not None and str(mode) not in ("roundtrip",
                                                  "per_operation"):
            raise InvalidOptionError(
                "csv_logger:mode must be roundtrip or per_operation")
        ids = options.get("csv_logger:metrics")
        if ids is not None:
            for mid in ids:
                if str(mid) not in metrics_registry:
                    raise InvalidOptionError(
                        f"unknown child metric {mid!r}")

    # -- hook fan-out --------------------------------------------------------
    def begin_compress(self, input: PressioData) -> None:
        # a pending compress-only row means the previous compress never
        # saw a decompress: flush it before the children start over
        self.flush()
        for child in self._children:
            child.begin_compress(input)

    def end_compress(self, input: PressioData, output: PressioData) -> None:
        for child in self._children:
            child.end_compress(input, output)
        if self._mode == "per_operation":
            self._append_row(operation="compress")
        else:
            self._pending = True

    def begin_decompress(self, input: PressioData) -> None:
        for child in self._children:
            child.begin_decompress(input)

    def end_decompress(self, input: PressioData, output: PressioData) -> None:
        for child in self._children:
            child.end_decompress(input, output)
        if self._mode == "per_operation":
            self._append_row(operation="decompress")
        else:
            self._pending = False
            self._append_row()

    def flush(self) -> None:
        """Write any pending compress-only row (roundtrip mode)."""
        if self._pending:
            self._pending = False
            self._append_row()

    # -- logging ----------------------------------------------------------
    def _gather(self) -> dict:
        merged = PressioOptions()
        for child in self._children:
            merged = merged.merge(child.get_metrics_results())
        return {k: v for k, v in merged.to_dict().items()
                if isinstance(v, (int, float, str, bool))}

    def _append_row(self, operation: str | None = None) -> None:
        if not self._path:
            raise InvalidOptionError("csv_logger:path is not set")
        row = self._gather()
        if operation is not None:
            row["operation"] = operation
        new_file = not os.path.exists(self._path) or self._columns is None
        if self._columns is None:
            if os.path.exists(self._path):
                with open(self._path, newline="") as fh:
                    header = next(csv.reader(fh), None)
                self._columns = header or sorted(row)
                new_file = header is None
            else:
                self._columns = sorted(row)
        with open(self._path, "a", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=self._columns,
                                    extrasaction="ignore")
            if new_file:
                writer.writeheader()
            writer.writerow(row)
        self._row_count += 1

    def get_metrics_results(self) -> PressioOptions:
        if self._path:
            self.flush()  # make compress-only workflows durable
        results = PressioOptions()
        results.set("csv_logger:rows_written", self._row_count)
        results.set("csv_logger:path", self._path)
        merged = PressioOptions()
        for child in self._children:
            merged = merged.merge(child.get_metrics_results())
        return merged.merge(results)

    def reset(self) -> None:
        for child in self._children:
            child.reset()
        self._row_count = 0
        self._columns = None
        self._pending = False
