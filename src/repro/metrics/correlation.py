"""Correlation metrics: ``pearson`` and ``autocorr``.

* ``pearson`` — Pearson's r (and r^2) between the original and the
  decompressed values, the linear-fidelity score from the glossary;
* ``autocorr`` — autocorrelation of the *error* at lags 1..N, used to
  detect structured compression artifacts (white error is good; lag
  correlation indicates the compressor left spatial structure in the
  error).
"""

from __future__ import annotations

import numpy as np

from ..core.options import OptionType, PressioOptions
from ..core.registry import metric_plugin
from ..core.status import InvalidOptionError
from .base import ComparisonMetrics

__all__ = ["PearsonMetrics", "AutocorrMetrics"]


@metric_plugin("pearson")
class PearsonMetrics(ComparisonMetrics):
    """Pearson correlation between original and decompressed values."""

    def __init__(self) -> None:
        super().__init__()
        self._r: float | None = None

    def _evaluate(self, original: np.ndarray, decompressed: np.ndarray) -> None:
        if original.size < 2:
            self._r = None
            return
        so = float(original.std())
        sd = float(decompressed.std())
        if so == 0.0 or sd == 0.0:
            # degenerate: constant array(s); define r = 1 when identical
            self._r = 1.0 if np.allclose(original, decompressed) else 0.0
            return
        cov = float(np.mean((original - original.mean())
                            * (decompressed - decompressed.mean())))
        self._r = cov / (so * sd)

    def get_metrics_results(self) -> PressioOptions:
        results = PressioOptions()
        if self._r is not None:
            results.set("pearson:r", float(self._r))
            results.set("pearson:r2", float(self._r) ** 2)
        return results

    def reset(self) -> None:
        super().reset()
        self._r = None


@metric_plugin("autocorr")
class AutocorrMetrics(ComparisonMetrics):
    """Autocorrelation of the error signal at lags 1..autocorr:max_lag."""

    def __init__(self) -> None:
        super().__init__()
        self._max_lag = 16
        self._acf: np.ndarray | None = None

    def _options(self) -> PressioOptions:
        opts = PressioOptions()
        opts.set("autocorr:max_lag", np.int32(self._max_lag))
        return opts

    def _set_options(self, options: PressioOptions) -> None:
        lag = int(self._take(options, "autocorr:max_lag", OptionType.INT32,
                             self._max_lag))
        if lag < 1:
            raise InvalidOptionError("autocorr:max_lag must be >= 1")
        self._max_lag = lag

    def _evaluate(self, original: np.ndarray, decompressed: np.ndarray) -> None:
        err = decompressed - original
        n = err.size
        max_lag = min(self._max_lag, n - 1)
        if max_lag < 1:
            self._acf = None
            return
        err = err - err.mean()
        denom = float(np.dot(err, err))
        if denom == 0.0:
            self._acf = np.zeros(max_lag)
            return
        acf = np.empty(max_lag)
        for lag in range(1, max_lag + 1):
            acf[lag - 1] = float(np.dot(err[:-lag], err[lag:])) / denom
        self._acf = acf

    def get_metrics_results(self) -> PressioOptions:
        results = PressioOptions()
        if self._acf is not None:
            from ..core.data import PressioData

            results.set("autocorr:autocorr",
                        PressioData.from_numpy(self._acf))
            if self._acf.size:
                results.set("autocorr:lag1", float(self._acf[0]))
        return results

    def reset(self) -> None:
        super().reset()
        self._acf = None
