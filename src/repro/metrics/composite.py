"""``composite`` and ``history`` metrics.

``CompositeMetrics`` fans every hook out to a list of child plugins and
merges their results — this is what ``Pressio.get_metric([...])``
returns, matching ``pressio_new_metrics(library, names, n)`` from the
paper's Appendix A.

``HistoryMetrics`` appends every operation's sizes to a growing log,
useful for the time-series experiments the ``many_dependent``
meta-compressor drives.
"""

from __future__ import annotations

from ..core.data import PressioData
from ..core.metrics import PressioMetrics
from ..core.options import PressioOptions
from ..core.registry import metric_plugin, metrics_registry

__all__ = ["CompositeMetrics", "HistoryMetrics"]


class CompositeMetrics(PressioMetrics):
    """Forwards every hook to child metrics and merges their results."""

    plugin_id = "composite"

    def __init__(self, plugins: list[PressioMetrics] | None = None) -> None:
        super().__init__()
        self.plugins: list[PressioMetrics] = list(plugins or [])

    @classmethod
    def from_ids(cls, metric_ids: list[str]) -> "CompositeMetrics":
        return cls([metrics_registry.create(mid) for mid in metric_ids])

    def begin_compress(self, input: PressioData) -> None:
        for p in self.plugins:
            p.begin_compress(input)

    def end_compress(self, input: PressioData, output: PressioData) -> None:
        for p in self.plugins:
            p.end_compress(input, output)

    def begin_decompress(self, input: PressioData) -> None:
        for p in self.plugins:
            p.begin_decompress(input)

    def end_decompress(self, input: PressioData, output: PressioData) -> None:
        for p in self.plugins:
            p.end_decompress(input, output)

    def begin_get_options(self) -> None:
        for p in self.plugins:
            p.begin_get_options()

    def begin_set_options(self, options: PressioOptions) -> None:
        for p in self.plugins:
            p.begin_set_options(options)

    def get_options(self) -> PressioOptions:
        merged = PressioOptions()
        for p in self.plugins:
            merged = merged.merge(p.get_options())
        return merged

    def set_options(self, options) -> int:
        rc = 0
        for p in self.plugins:
            rc |= p.set_options(options)
        return rc

    def get_metrics_results(self) -> PressioOptions:
        merged = PressioOptions()
        for p in self.plugins:
            merged = merged.merge(p.get_metrics_results())
        return merged

    def reset(self) -> None:
        for p in self.plugins:
            p.reset()

    def clone(self) -> "CompositeMetrics":
        return CompositeMetrics([p.clone() for p in self.plugins])


@metric_plugin("history")
class HistoryMetrics(PressioMetrics):
    """Log of (uncompressed, compressed) sizes for every operation."""

    def __init__(self) -> None:
        super().__init__()
        self.records: list[dict[str, int]] = []

    def end_compress(self, input: PressioData, output: PressioData) -> None:
        self.records.append({
            "op": 0,  # compress
            "uncompressed": input.size_in_bytes,
            "compressed": output.size_in_bytes,
        })

    def end_decompress(self, input: PressioData, output: PressioData) -> None:
        self.records.append({
            "op": 1,  # decompress
            "compressed": input.size_in_bytes,
            "decompressed": output.size_in_bytes,
        })

    def get_metrics_results(self) -> PressioOptions:
        results = PressioOptions()
        results.set("history:count", len(self.records))
        compressions = [r for r in self.records if r["op"] == 0]
        if compressions:
            total_in = sum(r["uncompressed"] for r in compressions)
            total_out = sum(r["compressed"] for r in compressions)
            results.set("history:total_uncompressed", total_in)
            results.set("history:total_compressed", total_out)
            if total_out:
                results.set("history:aggregate_ratio", total_in / total_out)
        return results

    def reset(self) -> None:
        self.records.clear()
