"""The ``ftk`` metrics plugin: critical-point feature preservation.

The paper's glossary lists an FTK-backed module that "tracks features
such as maxima, minima, and saddle points in data".  This plugin
implements the core of that check for compression assessment: it
locates the local extrema of the original field and of the decompressed
field and reports how well the feature sets survive —

* ``ftk:n_maxima`` / ``ftk:n_minima`` before and after,
* ``ftk:preserved_fraction`` — the fraction of original extrema that
  still exist within ``ftk:match_radius`` grid cells in the output,
* ``ftk:spurious`` — extrema present after compression with no original
  counterpart (compression artifacts a feature-tracking analysis would
  mistake for physics).

Extrema are strict local extrema over the 3^d neighborhood, computed
with vectorized shifted comparisons (no Python per-cell loops).
"""

from __future__ import annotations

import itertools

import numpy as np

from ..core.data import PressioData
from ..core.options import OptionType, PressioOptions
from ..core.registry import metric_plugin
from ..core.status import InvalidOptionError
from .base import ComparisonMetrics

__all__ = ["FtkMetrics", "local_extrema"]


def local_extrema(field: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(maxima mask, minima mask) of strict local extrema.

    Boundary cells are excluded (their neighborhoods are incomplete),
    matching what feature trackers do by default.
    """
    arr = np.asarray(field, dtype=np.float64)
    if arr.ndim == 0 or any(s < 3 for s in arr.shape):
        empty = np.zeros(arr.shape, dtype=bool)
        return empty, empty
    interior = tuple(slice(1, -1) for _ in range(arr.ndim))
    center = arr[interior]
    is_max = np.ones(center.shape, dtype=bool)
    is_min = np.ones(center.shape, dtype=bool)
    for offsets in itertools.product((-1, 0, 1), repeat=arr.ndim):
        if all(o == 0 for o in offsets):
            continue
        neighbor = arr[tuple(slice(1 + o, arr.shape[d] - 1 + o)
                             for d, o in enumerate(offsets))]
        is_max &= center > neighbor
        is_min &= center < neighbor
    maxima = np.zeros(arr.shape, dtype=bool)
    minima = np.zeros(arr.shape, dtype=bool)
    maxima[interior] = is_max
    minima[interior] = is_min
    return maxima, minima


def _match_fraction(original: np.ndarray, recovered: np.ndarray,
                    radius: int) -> float:
    """Fraction of original feature cells with a recovered feature
    within ``radius`` cells (Chebyshev distance)."""
    n_original = int(original.sum())
    if n_original == 0:
        return 1.0
    if radius > 0:
        # dilate the recovered mask by the match radius
        dilated = recovered.copy()
        for axis in range(recovered.ndim):
            for shift in range(1, radius + 1):
                dilated |= np.roll(recovered, shift, axis=axis)
                dilated |= np.roll(recovered, -shift, axis=axis)
        recovered = dilated
    return float((original & recovered).sum()) / n_original


@metric_plugin("ftk")
class FtkMetrics(ComparisonMetrics):
    """Critical-point preservation between original and decompressed."""

    def __init__(self) -> None:
        super().__init__()
        self._match_radius = 1
        self._dims: tuple[int, ...] | None = None
        self._results = PressioOptions()

    def _options(self) -> PressioOptions:
        opts = PressioOptions()
        opts.set("ftk:match_radius", np.int32(self._match_radius))
        return opts

    def _set_options(self, options: PressioOptions) -> None:
        radius = int(self._take(options, "ftk:match_radius",
                                OptionType.INT32, self._match_radius))
        if radius < 0:
            raise InvalidOptionError("ftk:match_radius must be >= 0")
        self._match_radius = radius

    def begin_compress(self, input: PressioData) -> None:
        super().begin_compress(input)
        self._dims = input.dims

    def _evaluate(self, original: np.ndarray, decompressed: np.ndarray) -> None:
        dims = self._dims if self._dims else (original.size,)
        orig = original.reshape(dims)
        dec = decompressed.reshape(dims)
        omax, omin = local_extrema(orig)
        dmax, dmin = local_extrema(dec)
        preserved_max = _match_fraction(omax, dmax, self._match_radius)
        preserved_min = _match_fraction(omin, dmin, self._match_radius)
        spurious = (int(dmax.sum()) + int(dmin.sum())
                    - int((dmax & omax).sum()) - int((dmin & omin).sum()))
        r = PressioOptions()
        r.set("ftk:n_maxima", np.int64(int(omax.sum())))
        r.set("ftk:n_minima", np.int64(int(omin.sum())))
        r.set("ftk:n_maxima_decompressed", np.int64(int(dmax.sum())))
        r.set("ftk:n_minima_decompressed", np.int64(int(dmin.sum())))
        r.set("ftk:preserved_maxima_fraction", float(preserved_max))
        r.set("ftk:preserved_minima_fraction", float(preserved_min))
        r.set("ftk:preserved_fraction",
              float((preserved_max + preserved_min) / 2.0))
        r.set("ftk:spurious", np.int64(max(spurious, 0)))
        self._results = r

    def get_metrics_results(self) -> PressioOptions:
        return self._results.copy()

    def reset(self) -> None:
        super().reset()
        self._results = PressioOptions()
        self._dims = None
