"""The ``error_stat`` metrics plugin: single-pass descriptive statistics.

Computes the quality measures compression papers standardly report —
min/max/range of the data, min/max/average error, MSE, RMSE, PSNR, and
the value-range-relative error — in one vectorized pass, matching the
"error statistics" module from the paper's plugin glossary.
"""

from __future__ import annotations

import numpy as np

from ..core.options import PressioOptions
from ..core.registry import metric_plugin
from .base import ComparisonMetrics

__all__ = ["ErrorStatMetrics"]


@metric_plugin("error_stat")
class ErrorStatMetrics(ComparisonMetrics):
    """min/max/avg error, MSE, RMSE, PSNR, value range, relative error."""

    def __init__(self) -> None:
        super().__init__()
        self._results = PressioOptions()

    def _evaluate(self, original: np.ndarray, decompressed: np.ndarray) -> None:
        r = PressioOptions()
        diff = decompressed - original
        abs_diff = np.abs(diff)
        n = original.size
        vmin = float(original.min()) if n else 0.0
        vmax = float(original.max()) if n else 0.0
        value_range = vmax - vmin
        mse = float(np.mean(diff * diff)) if n else 0.0
        max_error = float(abs_diff.max()) if n else 0.0
        r.set("error_stat:n", np.uint64(n))
        r.set("error_stat:min", vmin)
        r.set("error_stat:max", vmax)
        r.set("error_stat:value_range", value_range)
        r.set("error_stat:min_error", float(abs_diff.min()) if n else 0.0)
        r.set("error_stat:max_error", max_error)
        r.set("error_stat:average_error", float(abs_diff.mean()) if n else 0.0)
        r.set("error_stat:average_difference", float(diff.mean()) if n else 0.0)
        r.set("error_stat:mse", mse)
        r.set("error_stat:rmse", float(np.sqrt(mse)))
        if value_range > 0:
            r.set("error_stat:max_rel_error", max_error / value_range)
            if mse > 0:
                psnr = 20.0 * np.log10(value_range) - 10.0 * np.log10(mse)
                r.set("error_stat:psnr", float(psnr))
            else:
                r.set("error_stat:psnr", float("inf"))
        self._results = r

    def get_metrics_results(self) -> PressioOptions:
        return self._results.copy()

    def reset(self) -> None:
        super().reset()
        self._results = PressioOptions()
