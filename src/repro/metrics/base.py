"""Shared machinery for metrics that compare original vs decompressed.

Mirrors libpressio's convention: the metrics plugin snapshots the
uncompressed input at ``begin_compress`` and evaluates at
``end_decompress``, so one attached plugin observes a full round trip
without the application threading buffers around.
"""

from __future__ import annotations

import numpy as np

from ..core.data import PressioData
from ..core.metrics import PressioMetrics

__all__ = ["ComparisonMetrics"]


class ComparisonMetrics(PressioMetrics):
    """Base for metrics comparing the input with the decompressed output."""

    def __init__(self) -> None:
        super().__init__()
        self._input: np.ndarray | None = None
        self._computed = False

    def begin_compress(self, input: PressioData) -> None:
        self._input = np.asarray(input.to_numpy(), dtype=np.float64).reshape(-1)
        self._computed = False

    def begin_decompress(self, input: PressioData) -> None:
        # allow decompress-only flows: the caller may have set the
        # reference input through options instead
        pass

    def end_decompress(self, input: PressioData, output: PressioData) -> None:
        if self._input is None:
            return
        decompressed = np.asarray(output.to_numpy(),
                                  dtype=np.float64).reshape(-1)
        if decompressed.size != self._input.size:
            return
        self._evaluate(self._input, decompressed)
        self._computed = True

    def _evaluate(self, original: np.ndarray, decompressed: np.ndarray) -> None:
        """Compute and store results; both arrays are flat float64."""
        raise NotImplementedError

    def reset(self) -> None:
        self._input = None
        self._computed = False
