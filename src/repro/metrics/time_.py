"""The ``time`` metrics plugin: wall-clock timing of each operation.

Uses ``time.perf_counter_ns`` — the monotonic high-resolution clock, as
the paper's methodology does (``std::chrono::steady_clock``) — for every
measurement, so nanosecond-scale operations don't quantize to zero.

Results report both the *last* operation and accumulated *wall* totals,
with key names aligned to the ``trace`` plugin's aggregates
(``calls`` / ``total_ms`` / ``bytes_per_s``) so a sweep can join the
two data sources on matching columns:

* ``time:compress`` / ``time:decompress`` — last operation, ms;
* ``time:compress_ns`` / ``time:decompress_ns`` — last operation, ns;
* ``time:compress_calls`` / ``time:decompress_calls`` — operation count;
* ``time:compress_total_ms`` / ``time:decompress_total_ms`` — wall time
  accumulated across all operations since the last ``reset()``;
* ``time:compress_bytes_per_s`` / ``time:decompress_bytes_per_s`` —
  uncompressed-bytes throughput over the accumulated wall time.

Throughput always counts the **uncompressed** side of the operation:
the input buffer for compress, the *decompressed result* (never the
compressed input buffer) for decompress.  The trace aggregate report
(:func:`repro.trace.aggregate`) uses the same convention, so the two
``bytes_per_s`` columns are directly joinable.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.data import PressioData
from ..core.metrics import PressioMetrics
from ..core.options import PressioOptions
from ..core.registry import metric_plugin

__all__ = ["TimeMetrics"]


class _OpTimer:
    """Accumulated timing state for one operation kind."""

    __slots__ = ("begin_ns", "last_ns", "total_ns", "calls", "bytes")

    def __init__(self) -> None:
        self.begin_ns: int | None = None
        self.last_ns: int | None = None
        self.total_ns = 0
        self.calls = 0
        self.bytes = 0

    def begin(self) -> None:
        self.begin_ns = time.perf_counter_ns()

    def end(self, nbytes: int) -> None:
        if self.begin_ns is None:
            return
        elapsed = time.perf_counter_ns() - self.begin_ns
        self.begin_ns = None
        self.last_ns = elapsed
        self.total_ns += elapsed
        self.calls += 1
        self.bytes += nbytes

    def results_into(self, results: PressioOptions, op: str) -> None:
        if self.last_ns is None:
            return
        results.set(f"time:{op}", self.last_ns / 1e6)
        results.set(f"time:{op}_many", self.last_ns / 1e6)
        results.set(f"time:{op}_ns", np.int64(self.last_ns))
        results.set(f"time:{op}_calls", np.int64(self.calls))
        results.set(f"time:{op}_total_ms", self.total_ns / 1e6)
        if self.total_ns > 0:
            results.set(f"time:{op}_bytes_per_s",
                        self.bytes / (self.total_ns / 1e9))


@metric_plugin("time")
class TimeMetrics(PressioMetrics):
    """Measures compress/decompress wall time (ms) and throughput."""

    def __init__(self) -> None:
        super().__init__()
        self._compress = _OpTimer()
        self._decompress = _OpTimer()

    def begin_compress(self, input: PressioData) -> None:
        self._compress.begin()

    def end_compress(self, input: PressioData, output: PressioData) -> None:
        self._compress.end(input.size_in_bytes)

    def begin_decompress(self, input: PressioData) -> None:
        self._decompress.begin()

    def end_decompress(self, input: PressioData, output: PressioData) -> None:
        # throughput counts the uncompressed (decompressed-result) side,
        # never the compressed input buffer — same convention as the
        # trace aggregate report, so the columns join
        self._decompress.end(output.size_in_bytes)

    def get_metrics_results(self) -> PressioOptions:
        results = PressioOptions()
        self._compress.results_into(results, "compress")
        self._decompress.results_into(results, "decompress")
        return results

    def reset(self) -> None:
        self._compress = _OpTimer()
        self._decompress = _OpTimer()
