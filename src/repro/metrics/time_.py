"""The ``time`` metrics plugin: wall-clock timing of each operation.

Uses the monotonic high-resolution clock, as the paper's methodology
does (``std::chrono::steady_clock``).
"""

from __future__ import annotations

import time

import numpy as np

from ..core.data import PressioData
from ..core.metrics import PressioMetrics
from ..core.options import PressioOptions
from ..core.registry import metric_plugin

__all__ = ["TimeMetrics"]


@metric_plugin("time")
class TimeMetrics(PressioMetrics):
    """Measures compress/decompress wall time in milliseconds."""

    def __init__(self) -> None:
        super().__init__()
        self._t0: float | None = None
        self._compress_ms: float | None = None
        self._decompress_ms: float | None = None
        self._compress_many_ms: float | None = None

    def begin_compress(self, input: PressioData) -> None:
        self._t0 = time.perf_counter()

    def end_compress(self, input: PressioData, output: PressioData) -> None:
        if self._t0 is not None:
            self._compress_ms = (time.perf_counter() - self._t0) * 1e3
        self._t0 = None

    def begin_decompress(self, input: PressioData) -> None:
        self._t0 = time.perf_counter()

    def end_decompress(self, input: PressioData, output: PressioData) -> None:
        if self._t0 is not None:
            self._decompress_ms = (time.perf_counter() - self._t0) * 1e3
        self._t0 = None

    def get_metrics_results(self) -> PressioOptions:
        results = PressioOptions()
        if self._compress_ms is not None:
            results.set("time:compress", self._compress_ms)
            results.set("time:compress_many", self._compress_ms)
        if self._decompress_ms is not None:
            results.set("time:decompress", self._decompress_ms)
            results.set("time:decompress_many", self._decompress_ms)
        return results

    def reset(self) -> None:
        self._t0 = None
        self._compress_ms = None
        self._decompress_ms = None
