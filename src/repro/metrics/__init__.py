"""First-party metrics plugins.

Importing this package registers: ``size``, ``time``, ``error_stat``,
``pearson``, ``autocorr``, ``ks_test``, ``kl_divergence``, ``diff_pdf``,
``spatial_error``, ``kth_error``, ``region_of_interest``, ``mask``,
``history``, ``ftk``, ``csv_logger``, ``trace`` — plus
:class:`CompositeMetrics` for combining them.
"""

from .base import ComparisonMetrics
from .composite import CompositeMetrics, HistoryMetrics
from .correlation import AutocorrMetrics, PearsonMetrics
from .distribution import DiffPdfMetrics, KLDivergenceMetrics, KSTestMetrics
from .error_stat import ErrorStatMetrics
from .features import FtkMetrics
from .logger import CsvLoggerMetrics
from .size import SizeMetrics
from .spatial import (
    KthErrorMetrics,
    MaskMetrics,
    RegionOfInterestMetrics,
    SpatialErrorMetrics,
)
from .time_ import TimeMetrics
from ..trace.metric import TraceMetrics

__all__ = [
    "TraceMetrics",
    "ComparisonMetrics",
    "CompositeMetrics",
    "SizeMetrics",
    "TimeMetrics",
    "ErrorStatMetrics",
    "FtkMetrics",
    "CsvLoggerMetrics",
    "PearsonMetrics",
    "AutocorrMetrics",
    "KSTestMetrics",
    "KLDivergenceMetrics",
    "DiffPdfMetrics",
    "SpatialErrorMetrics",
    "KthErrorMetrics",
    "RegionOfInterestMetrics",
    "MaskMetrics",
    "HistoryMetrics",
]
