"""The ``size`` metrics plugin: compression ratio and byte counts.

This is the plugin the paper's Appendix A example attaches
(``size:compression_ratio``).
"""

from __future__ import annotations

import numpy as np

from ..core.data import PressioData
from ..core.metrics import PressioMetrics
from ..core.options import PressioOptions
from ..core.registry import metric_plugin

__all__ = ["SizeMetrics"]


@metric_plugin("size")
class SizeMetrics(PressioMetrics):
    """Tracks uncompressed/compressed/decompressed sizes per operation."""

    def __init__(self) -> None:
        super().__init__()
        self._uncompressed: int | None = None
        self._compressed: int | None = None
        self._decompressed: int | None = None
        self._elements: int | None = None

    def end_compress(self, input: PressioData, output: PressioData) -> None:
        self._uncompressed = input.size_in_bytes
        self._compressed = output.size_in_bytes
        self._elements = input.num_elements

    def end_decompress(self, input: PressioData, output: PressioData) -> None:
        self._compressed = input.size_in_bytes
        self._decompressed = output.size_in_bytes

    def get_metrics_results(self) -> PressioOptions:
        results = PressioOptions()
        if self._uncompressed is not None:
            results.set("size:uncompressed_size", np.uint64(self._uncompressed))
        if self._compressed is not None:
            results.set("size:compressed_size", np.uint64(self._compressed))
        if self._decompressed is not None:
            results.set("size:decompressed_size", np.uint64(self._decompressed))
        if self._uncompressed and self._compressed:
            results.set("size:compression_ratio",
                        self._uncompressed / self._compressed)
        if self._elements and self._compressed:
            results.set("size:bit_rate",
                        8.0 * self._compressed / self._elements)
        return results

    def reset(self) -> None:
        self._uncompressed = None
        self._compressed = None
        self._decompressed = None
        self._elements = None
