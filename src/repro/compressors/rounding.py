"""Bit Grooming and Digit Rounding compressors.

Both are float "precision trimming" compressors from the paper's plugin
glossary: they zero low-order mantissa bits so the result is more
compressible by a lossless backend, guaranteeing a *relative* error
determined by how many significant bits/digits are kept.

* Bit Grooming keeps ``nsb`` explicit significand bits;
* Digit Rounding keeps ``digits`` significant decimal digits, which maps
  to ``ceil(digits * log2(10))`` significand bits.
"""

from __future__ import annotations

import numpy as np

from ..core.compressor import PressioCompressor
from ..core.configurable import Stability, ThreadSafety
from ..core.data import PressioData
from ..core.dtype import DType, dtype_to_numpy
from ..core.options import OptionType, PressioOptions
from ..core.registry import compressor_plugin
from ..core.status import CorruptStreamError, InvalidOptionError, InvalidTypeError
from ..encoders.headers import read_header, write_header
from ..native.lossless import get_codec

__all__ = ["BitGroomingCompressor", "DigitRoundingCompressor", "mask_mantissa"]

_MAGIC = b"RND1"

_MANTISSA_BITS = {np.dtype(np.float32): 23, np.dtype(np.float64): 52}
_UINT_FOR = {np.dtype(np.float32): np.uint32, np.dtype(np.float64): np.uint64}


def mask_mantissa(arr: np.ndarray, keep_bits: int) -> np.ndarray:
    """Zero all but the top ``keep_bits`` mantissa bits (groom to zero).

    The masked value differs from the original by a relative error of at
    most ``2**-keep_bits`` (one ulp at the kept precision).
    """
    mant = _MANTISSA_BITS.get(arr.dtype)
    if mant is None:
        raise InvalidTypeError(
            f"bit grooming only supports float32/float64, got {arr.dtype}"
        )
    if keep_bits >= mant:
        return arr.copy()
    if keep_bits < 0:
        raise InvalidOptionError("keep_bits must be non-negative")
    utype = _UINT_FOR[arr.dtype]
    drop = mant - keep_bits
    mask = ~((np.array(1, dtype=utype) << np.array(drop, dtype=utype))
             - np.array(1, dtype=utype))
    u = np.ascontiguousarray(arr).view(utype)
    return (u & mask).view(arr.dtype)


class _RoundingBase(PressioCompressor):
    """Shared machinery: mask mantissa, then lossless-pack the bytes."""

    thread_safety = "multithreaded"

    def __init__(self) -> None:
        super().__init__()
        self._backend = "zlib"

    def _keep_bits(self) -> int:
        raise NotImplementedError

    def _configuration(self) -> PressioOptions:
        cfg = PressioOptions()
        cfg.set("pressio:thread_safe", ThreadSafety.MULTIPLE)
        cfg.set("pressio:stability", Stability.STABLE)
        cfg.set("pressio:lossy", True)
        return cfg

    def version(self) -> str:
        return "1.0.0.pyrepro"

    def _compress(self, input: PressioData) -> PressioData:
        if input.dtype not in (DType.FLOAT, DType.DOUBLE):
            raise InvalidTypeError(
                f"{self.plugin_id} requires float input, got {input.dtype.name}"
            )
        arr = input.to_numpy()
        groomed = mask_mantissa(np.ascontiguousarray(arr), self._keep_bits())
        codec = get_codec(self._backend)
        payload = codec.encode(groomed.tobytes())
        header = write_header(_MAGIC, input.dtype, input.dims,
                              ints=(self._keep_bits(),))
        return PressioData.from_bytes(header + payload)

    def _decompress(self, input: PressioData, output: PressioData) -> PressioData:
        stream = input.to_bytes()
        dtype, dims, _d, _i, pos = read_header(stream, _MAGIC)
        codec = get_codec(self._backend)
        raw = codec.decode(stream[pos:])
        arr = np.frombuffer(raw, dtype=dtype_to_numpy(dtype))
        n = int(np.prod(dims, dtype=np.int64))
        if arr.size != n:
            raise CorruptStreamError(
                f"decoded {arr.size} elements, header dims imply {n}"
            )
        return PressioData.from_numpy(arr.reshape(dims), copy=True)


@compressor_plugin("bit_grooming")
class BitGroomingCompressor(_RoundingBase):
    """Keep ``bit_grooming:nsb`` significand bits, zeroing the rest."""

    def __init__(self) -> None:
        super().__init__()
        self._nsb = 12

    def _keep_bits(self) -> int:
        return self._nsb

    def _options(self) -> PressioOptions:
        opts = PressioOptions()
        opts.set("bit_grooming:nsb", np.int32(self._nsb))
        opts.set("bit_grooming:backend", self._backend)
        return opts

    def _set_options(self, options: PressioOptions) -> None:
        nsb = int(self._take(options, "bit_grooming:nsb", OptionType.INT32,
                             self._nsb))
        if nsb < 0 or nsb > 52:
            raise InvalidOptionError("bit_grooming:nsb must be in [0, 52]")
        self._nsb = nsb
        self._backend = str(self._take(options, "bit_grooming:backend",
                                       OptionType.STRING, self._backend))

    def _documentation(self) -> PressioOptions:
        docs = PressioOptions()
        docs.set("pressio:description",
                 "bit grooming: keep nsb significand bits for compressibility")
        docs.set("bit_grooming:nsb", "number of kept significand bits")
        return docs


@compressor_plugin("digit_rounding")
class DigitRoundingCompressor(_RoundingBase):
    """Keep ``digit_rounding:prec`` significant decimal digits."""

    def __init__(self) -> None:
        super().__init__()
        self._digits = 4

    def _keep_bits(self) -> int:
        return int(np.ceil(self._digits * np.log2(10.0)))

    def _options(self) -> PressioOptions:
        opts = PressioOptions()
        opts.set("digit_rounding:prec", np.int32(self._digits))
        opts.set("digit_rounding:backend", self._backend)
        return opts

    def _set_options(self, options: PressioOptions) -> None:
        digits = int(self._take(options, "digit_rounding:prec",
                                OptionType.INT32, self._digits))
        if digits < 1 or digits > 15:
            raise InvalidOptionError("digit_rounding:prec must be in [1, 15]")
        self._digits = digits
        self._backend = str(self._take(options, "digit_rounding:backend",
                                       OptionType.STRING, self._backend))

    def _documentation(self) -> PressioOptions:
        docs = PressioOptions()
        docs.set("pressio:description",
                 "digit rounding: keep a number of significant decimal digits")
        docs.set("digit_rounding:prec", "kept significant decimal digits")
        return docs
