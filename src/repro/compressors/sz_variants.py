"""SZ variant plugins from the paper's plugin list.

* ``sz_threadsafe`` — "the threadsafe serial version of the SZ
  prediction based error bounded lossy compressor": same pipeline, but
  configuration lives per instance (no global store), so the plugin
  advertises full re-entrancy and the parallel meta-compressors may
  clone it freely;
* ``sz_omp`` — "the parallel CPU version of SZ": the same pipeline run
  over leading-axis slabs by a worker pool (the OpenMP analog), with an
  ``sz_omp:nthreads`` option.
"""

from __future__ import annotations

import struct
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..core.configurable import Stability, ThreadSafety
from ..core.data import PressioData
from ..core.dtype import DType
from ..core.options import OptionType, PressioOptions
from ..core.registry import compressor_plugin
from ..core.status import CorruptStreamError, InvalidOptionError
from ..encoders.headers import read_header, write_header
from ..native.sz import core as sz_core
from .sz import SZCompressor

__all__ = ["SZThreadsafeCompressor", "SZOmpCompressor"]


@compressor_plugin("sz_threadsafe")
class SZThreadsafeCompressor(SZCompressor):
    """SZ pipeline with per-instance configuration (re-entrant)."""

    thread_safety = "multithreaded"

    def __init__(self) -> None:
        # deliberately skip SZCompressor.__init__'s global acquire:
        # the whole point of the threadsafe variant is no shared state
        from ..core.compressor import PressioCompressor
        from ..native.sz.params import sz_params

        PressioCompressor.__init__(self)
        self._params = sz_params()

    def _release_native(self) -> None:
        """No global store to release."""

    def _configuration(self) -> PressioOptions:
        cfg = super()._configuration()
        cfg.set("pressio:thread_safe", ThreadSafety.MULTIPLE)
        cfg.set("sz:shared_instance", False)
        return cfg

    def _documentation(self) -> PressioOptions:
        docs = super()._documentation()
        docs.set("pressio:description",
                 "threadsafe serial SZ: per-instance configuration, "
                 "safe to clone across threads")
        return docs

    def version(self) -> str:
        return "2.1.10.threadsafe.pyrepro"


_OMP_MAGIC = b"SZMP"


@compressor_plugin("sz_omp")
class SZOmpCompressor(SZThreadsafeCompressor):
    """Slab-parallel SZ (the OpenMP-style CPU-parallel variant)."""

    def __init__(self) -> None:
        super().__init__()
        self._nthreads = 4

    def _options(self) -> PressioOptions:
        opts = super()._options()
        opts.set("sz_omp:nthreads", np.int64(self._nthreads))
        return opts

    def _set_options(self, options: PressioOptions) -> None:
        super()._set_options(options)
        n = int(self._take(options, "sz_omp:nthreads", OptionType.INT64,
                           self._nthreads))
        if n < 1:
            raise InvalidOptionError("sz_omp:nthreads must be >= 1")
        self._nthreads = n

    def _documentation(self) -> PressioOptions:
        docs = super()._documentation()
        docs.set("pressio:description",
                 "slab-parallel SZ (OpenMP-analog CPU parallelism)")
        docs.set("sz_omp:nthreads", "worker threads for slab compression")
        return docs

    def version(self) -> str:
        return "2.1.10.omp.pyrepro"

    def _slabs(self, arr: np.ndarray) -> list[np.ndarray]:
        """Leading-axis slabs, one per worker (OpenMP static schedule)."""
        n = arr.shape[0] if arr.ndim else 0
        workers = min(self._nthreads, max(n, 1))
        bounds = np.linspace(0, n, workers + 1).astype(int)
        return [arr[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:])
                if hi > lo]

    def _compress(self, input: PressioData) -> PressioData:
        arr = np.asarray(input.to_numpy())
        if arr.dtype.kind != "f":
            # the slab path feeds sz_core directly; keep the serial
            # path's typed rejection instead of an arbitrary native error
            return super()._compress(input)
        if arr.ndim == 0 or arr.shape[0] < 2 * self._nthreads:
            return super()._compress(input)
        slabs = self._slabs(arr)
        params = self._params

        def work(slab: np.ndarray) -> bytes:
            return sz_core.compress(slab, params)

        if self._nthreads == 1 or len(slabs) == 1:
            streams = [work(s) for s in slabs]
        else:
            with ThreadPoolExecutor(max_workers=len(slabs)) as pool:
                streams = list(pool.map(work, slabs))
        table = struct.pack(f"<{len(streams)}Q", *(len(s) for s in streams))
        header = write_header(_OMP_MAGIC, input.dtype, input.dims,
                              ints=(len(streams),))
        return PressioData.from_bytes(header + table + b"".join(streams))

    def _decompress(self, input: PressioData, output: PressioData) -> PressioData:
        view = input.as_memoryview()
        if bytes(view[:4]) != _OMP_MAGIC:
            return super()._decompress(input, output)
        dtype, dims, _d, ints, pos = read_header(view, _OMP_MAGIC)
        n_slabs = ints[0]
        table = struct.unpack_from(f"<{n_slabs}Q", view, pos)
        pos += 8 * n_slabs
        parts = []
        for length in table:
            parts.append(sz_core.decompress(bytes(view[pos:pos + length])))
            pos += length
        full = np.concatenate(parts, axis=0)
        if full.shape != dims:
            raise CorruptStreamError(
                f"slabs reassemble to {full.shape}, expected {dims}")
        return PressioData.from_numpy(full, copy=False)
