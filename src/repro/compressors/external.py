"""The ``external`` compressor: out-of-process compression.

Spawns a fresh Python interpreter per operation and moves data across
the process boundary through the filesystem — the pattern used when
compression is only available as a standalone tool (the paper's
NumCodecs/Z-Checker embedding discussion, Section V).  Exists mainly so
the embedding-overhead experiment can measure how much the exec-plus-
copy pattern costs relative to in-process plugins.

Options:

* ``external:compressor`` — inner plugin id the worker uses;
* ``external:config_json`` — JSON-encoded options for the inner plugin
  (demonstrating the serialization restriction: opaque/userptr options
  *cannot* cross the process boundary, which is the paper's argument for
  embeddable designs);
* ``external:init_cost_ms`` — simulated expensive startup (e.g. MPI
  initialization), busy-waited in the worker.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

import numpy as np

from ..core.compressor import PressioCompressor
from ..core.configurable import Stability, ThreadSafety
from ..core.data import PressioData
from ..core.options import OptionType, PressioOptions
from ..core.registry import compressor_plugin
from ..core.status import PressioError
from ..obs import flight as _flight
from ..obs import runtime as _obs
from ..obs.logging import get_logger
from ..trace import propagate as _propagate
from ..trace import runtime as _trace

__all__ = ["ExternalCompressor"]

_log = get_logger("compressors.external")

#: Bound on captured worker stderr: the *last* 64 KiB survive (the end
#: of a traceback is the useful end), the rest is dropped and counted.
_STDERR_CAP = 64 * 1024


@compressor_plugin("external")
class ExternalCompressor(PressioCompressor):
    """Out-of-process compression via a spawned worker interpreter."""

    thread_safety = "serialized"

    def __init__(self) -> None:
        super().__init__()
        self._inner = "sz"
        self._config_json = "{}"
        self._init_cost_ms = 0.0

    def _options(self) -> PressioOptions:
        opts = PressioOptions()
        opts.set("external:compressor", self._inner)
        opts.set("external:config_json", self._config_json)
        opts.set("external:init_cost_ms", float(self._init_cost_ms))
        return opts

    def _set_options(self, options: PressioOptions) -> None:
        self._inner = str(self._take(options, "external:compressor",
                                     OptionType.STRING, self._inner))
        cfg = str(self._take(options, "external:config_json",
                             OptionType.STRING, self._config_json))
        json.loads(cfg)  # validate early
        self._config_json = cfg
        self._init_cost_ms = float(self._take(
            options, "external:init_cost_ms", OptionType.DOUBLE,
            self._init_cost_ms))

    def _configuration(self) -> PressioOptions:
        cfg = PressioOptions()
        cfg.set("pressio:thread_safe", ThreadSafety.MULTIPLE)
        cfg.set("pressio:stability", Stability.EXTERNAL)
        cfg.set("pressio:lossy", True)
        cfg.set("external:embeddable", False)
        return cfg

    def _documentation(self) -> PressioOptions:
        docs = PressioOptions()
        docs.set("pressio:description",
                 "out-of-process compression (spawn + filesystem copy)")
        docs.set("external:compressor", "inner plugin id run by the worker")
        docs.set("external:config_json", "JSON options for the inner plugin")
        docs.set("external:init_cost_ms", "simulated expensive worker init")
        return docs

    def version(self) -> str:
        return "1.0.0.pyrepro"

    # -- plumbing -----------------------------------------------------------
    def _run_worker(self, action: str, in_path: str, out_path: str,
                    dtype: str, dims: tuple[int, ...]) -> None:
        """Spawn the worker; when tracing, hand down the trace context.

        The child receives the ``pressio-spanwire/1`` wire via
        ``PRESSIO_TRACE_CONTEXT`` plus a fragment-sink path in the same
        temporary directory as the data files; after the process exits
        its span fragments are stitched under this call's
        ``external:invoke`` span so ``pressio trace`` / ``pressio
        profile`` see one tree spanning both processes.
        """
        cmd = [
            sys.executable, "-m", "repro.tools.external_worker",
            "--action", action,
            "--compressor", self._inner,
            "--config", self._config_json,
            "--input", in_path,
            "--output", out_path,
            "--dtype", dtype,
            "--dims", ",".join(str(d) for d in dims),
            "--init-cost-ms", str(self._init_cost_ms),
        ]
        ctx = _trace.ACTIVE
        if ctx is not None:
            sink = os.path.join(os.path.dirname(in_path), "trace.jsonl")
            env = _propagate.child_env(sink)
            with ctx.span("external:invoke", plugin="external",
                          inner=self._inner, action=action) as invoke:
                proc = subprocess.run(cmd, capture_output=True,
                                      text=True, env=env)
            if os.path.exists(sink):
                # stitched as same-thread children: the worker ran
                # synchronously inside the invoke span, so the profiler
                # must subtract its stages from invoke's exclusive time
                _propagate.stitch(ctx, sink, invoke, same_thread=True)
        else:
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  env=_propagate.child_env())
        stderr_tail, truncated_by = self._bound_stderr(proc.stderr)
        if truncated_by:
            _obs.count(
                "pressio_external_stderr_truncated_total",
                "worker stderr captures cut to the last 64 KiB",
                action=action, inner=self._inner)
        rec = _flight.ACTIVE
        if rec is not None and (stderr_tail or proc.returncode != 0):
            rec.record("child_stderr", plugin="external",
                       action=action, inner=self._inner,
                       exit_status=proc.returncode,
                       stderr=stderr_tail,
                       truncated_bytes=truncated_by)
        if proc.returncode != 0:
            # the worker's stderr and exit status are the only evidence
            # of what went wrong out-of-process — record both in the
            # failure taxonomy (Sec. V measurements care how often the
            # spawn pattern fails, not just that it can)
            _obs.count(
                "pressio_external_worker_failures_total",
                "spawned worker processes that exited non-zero",
                action=action, inner=self._inner,
                exit_status=str(proc.returncode))
            _log.error(
                "external worker failed",
                extra={"action": action, "inner": self._inner,
                       "exit_status": proc.returncode,
                       "stderr": stderr_tail[-500:], "argv": cmd[1:]})
            raise PressioError(
                f"external worker failed (rc={proc.returncode}): "
                f"{stderr_tail[-500:]}"
            )
        if stderr_tail:
            # a zero exit with stderr output is usually a warning from
            # the inner plugin; keep it joinable to the surrounding span
            _log.warning(
                "external worker wrote to stderr",
                extra={"action": action, "inner": self._inner,
                       "exit_status": 0, "stderr": stderr_tail[-500:]})

    @staticmethod
    def _bound_stderr(stderr: str) -> tuple[str, int]:
        """Last 64 KiB of worker stderr plus how many bytes were cut.

        A chatty worker (progress bars, per-element debug prints) must
        not balloon the parent's memory or the flight-recorder bundle;
        the tail keeps the part of a traceback that matters.
        """
        text = stderr.strip()
        raw = text.encode("utf-8", errors="replace")
        if len(raw) <= _STDERR_CAP:
            return text, 0
        kept = raw[-_STDERR_CAP:].decode("utf-8", errors="replace")
        return kept, len(raw) - _STDERR_CAP

    def _compress(self, input: PressioData) -> PressioData:
        arr = input.to_numpy()
        with tempfile.TemporaryDirectory(prefix="pressio_ext_") as tmp:
            in_path = os.path.join(tmp, "input.bin")
            out_path = os.path.join(tmp, "output.bin")
            np.ascontiguousarray(arr).tofile(in_path)
            self._run_worker("compress", in_path, out_path,
                             str(arr.dtype), input.dims)
            with open(out_path, "rb") as fh:
                return PressioData.from_bytes(fh.read())

    def _decompress(self, input: PressioData, output: PressioData) -> PressioData:
        from ..core.dtype import dtype_to_numpy

        np_dtype = dtype_to_numpy(output.dtype)
        with tempfile.TemporaryDirectory(prefix="pressio_ext_") as tmp:
            in_path = os.path.join(tmp, "input.bin")
            out_path = os.path.join(tmp, "output.bin")
            with open(in_path, "wb") as fh:
                fh.write(input.to_bytes())
            self._run_worker("decompress", in_path, out_path,
                             str(np_dtype), output.dims)
            arr = np.fromfile(out_path, dtype=np_dtype).reshape(output.dims)
            return PressioData.from_numpy(arr, copy=False)
