"""LibPressio plugin for the MGARD native.

Surfaces MGARD's tolerance/s-norm parameters as typed options and keeps
its hard requirement of >= 3 samples per dimension observable through
``check_options``-style early validation and clean error reporting.
"""

from __future__ import annotations

from ..core.compressor import PressioCompressor
from ..core.configurable import Stability, ThreadSafety
from ..core.data import PressioData
from ..core.dtype import DType, dtype_to_numpy
from ..core.options import OptionType, PressioOptions
from ..core.registry import compressor_plugin
from ..core.status import (InvalidDimensionsError, InvalidOptionError,
                           InvalidTypeError)
from ..native import mgard as native_mgard

__all__ = ["MGARDCompressor"]


@compressor_plugin("mgard")
class MGARDCompressor(PressioCompressor):
    """Multigrid error-bounded lossy compression via the MGARD pipeline."""

    thread_safety = "serialized"

    def __init__(self) -> None:
        super().__init__()
        self._tolerance = 1e-3
        self._s = 0.0
        self._backend = "zlib"
        self._level = 1

    # -- options ----------------------------------------------------------
    def _options(self) -> PressioOptions:
        opts = PressioOptions()
        opts.set("mgard:tolerance", float(self._tolerance))
        opts.set("mgard:s", float(self._s))
        opts.set("mgard:backend", self._backend)
        opts.set("pressio:abs", float(self._tolerance))
        return opts

    def _set_options(self, options: PressioOptions) -> None:
        tol = self._take(options, "mgard:tolerance", OptionType.DOUBLE,
                         self._tolerance)
        tol = self._take(options, "pressio:abs", OptionType.DOUBLE, tol)
        if tol <= 0:
            raise InvalidOptionError("mgard:tolerance must be positive")
        self._tolerance = float(tol)
        self._s = float(self._take(options, "mgard:s", OptionType.DOUBLE,
                                   self._s))
        self._backend = str(self._take(options, "mgard:backend",
                                       OptionType.STRING, self._backend))

    def _check_options(self, options: PressioOptions) -> None:
        tol = options.get("mgard:tolerance", options.get("pressio:abs"))
        if tol is not None and float(tol) <= 0:
            raise InvalidOptionError("mgard:tolerance must be positive")

    def _configuration(self) -> PressioOptions:
        cfg = PressioOptions()
        cfg.set("pressio:thread_safe", ThreadSafety.MULTIPLE)
        cfg.set("pressio:stability", Stability.STABLE)
        cfg.set("pressio:lossy", True)
        cfg.set("mgard:min_dimension_size", native_mgard.MIN_DIM)
        return cfg

    def _documentation(self) -> PressioOptions:
        docs = PressioOptions()
        docs.set("pressio:description",
                 "MGARD-family multigrid error-bounded lossy compressor")
        docs.set("mgard:tolerance", "absolute L-infinity error tolerance")
        docs.set("mgard:s", "smoothness-norm parameter (0 = infinity norm)")
        docs.set("pressio:abs", "cross-compressor absolute error bound")
        return docs

    def version(self) -> str:
        return "0.1.0.pyrepro"

    # -- compression --------------------------------------------------------
    def _compress(self, input: PressioData) -> PressioData:
        arr = input.to_numpy()
        if arr.dtype.kind not in "fiu":
            raise InvalidTypeError(f"mgard cannot compress dtype {arr.dtype}")
        # the multigrid hierarchy needs >= MIN_DIM samples per dimension;
        # fail here with a taxonomy-coded error instead of deep in the native
        if any(d < native_mgard.MIN_DIM for d in input.dims):
            raise InvalidDimensionsError(
                f"mgard requires >= {native_mgard.MIN_DIM} samples per "
                f"dimension, got dims {tuple(input.dims)}"
            )
        stream = native_mgard.compress(arr, self._tolerance, self._s,
                                       backend=self._backend,
                                       level=self._level)
        return PressioData.from_bytes(stream)

    def compress_stage1(self, input: PressioData):
        arr = input.to_numpy()
        if arr.dtype.kind not in "fiu":
            raise InvalidTypeError(f"mgard cannot compress dtype {arr.dtype}")
        if any(d < native_mgard.MIN_DIM for d in input.dims):
            raise InvalidDimensionsError(
                f"mgard requires >= {native_mgard.MIN_DIM} samples per "
                f"dimension, got dims {tuple(input.dims)}"
            )
        return native_mgard.compress_stage1(arr, self._tolerance, self._s,
                                            backend=self._backend,
                                            level=self._level)

    def compress_stage2(self, state) -> PressioData:
        return PressioData.from_bytes(native_mgard.compress_stage2(state))

    def _decompress(self, input: PressioData, output: PressioData) -> PressioData:
        expected = output.dims if output.num_dimensions else None
        out = native_mgard.decompress(input.as_memoryview(), expected_dims=expected)
        if output.dtype != DType.BYTE and output.dtype is not None:
            out = out.astype(dtype_to_numpy(output.dtype), copy=False)
        return PressioData.from_numpy(out, copy=False)
