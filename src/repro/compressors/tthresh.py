"""LibPressio plugin for the tthresh (truncated HOSVD) native.

tthresh's bound is a *relative L2* (Frobenius) target — a different
bound family from abs/pointwise compressors, exercising the library's
claim that bound semantics are per-plugin, discoverable through
documentation and configuration rather than hard-coded.
"""

from __future__ import annotations

from ..core.compressor import PressioCompressor
from ..core.configurable import Stability, ThreadSafety
from ..core.data import PressioData
from ..core.dtype import DType, dtype_to_numpy
from ..core.options import OptionType, PressioOptions
from ..core.registry import compressor_plugin
from ..core.status import InvalidOptionError, InvalidTypeError
from ..native import tthresh as native_tthresh

__all__ = ["TthreshCompressor"]


@compressor_plugin("tthresh")
class TthreshCompressor(PressioCompressor):
    """SVD-principled lossy compression with a relative-L2 target."""

    thread_safety = "serialized"

    def __init__(self) -> None:
        super().__init__()
        self._target = 1e-3
        self._backend = "zlib"

    def _options(self) -> PressioOptions:
        opts = PressioOptions()
        opts.set("tthresh:target_value", float(self._target))
        opts.set("tthresh:target_str", "eps")  # relative L2, as tthresh
        opts.set("tthresh:backend", self._backend)
        return opts

    def _set_options(self, options: PressioOptions) -> None:
        target = float(self._take(options, "tthresh:target_value",
                                  OptionType.DOUBLE, self._target))
        if target <= 0:
            raise InvalidOptionError("tthresh:target_value must be positive")
        self._target = target
        self._backend = str(self._take(options, "tthresh:backend",
                                       OptionType.STRING, self._backend))

    def _check_options(self, options: PressioOptions) -> None:
        target = options.get("tthresh:target_value")
        if target is not None and float(target) <= 0:
            raise InvalidOptionError("tthresh:target_value must be positive")

    def _configuration(self) -> PressioOptions:
        cfg = PressioOptions()
        cfg.set("pressio:thread_safe", ThreadSafety.MULTIPLE)
        cfg.set("pressio:stability", Stability.STABLE)
        cfg.set("pressio:lossy", True)
        cfg.set("tthresh:norm", "relative_l2")
        return cfg

    def _documentation(self) -> PressioOptions:
        docs = PressioOptions()
        docs.set("pressio:description",
                 "tthresh-style truncated-HOSVD compressor; bounds the "
                 "RELATIVE L2 (Frobenius) error, not the pointwise max")
        docs.set("tthresh:target_value", "relative L2 error target (eps)")
        return docs

    def version(self) -> str:
        return "1.0.0.pyrepro"

    def _compress(self, input: PressioData) -> PressioData:
        arr = input.to_numpy()
        if arr.dtype.kind not in "fiu":
            raise InvalidTypeError(f"tthresh cannot compress {arr.dtype}")
        stream = native_tthresh.compress(arr, self._target,
                                         backend=self._backend)
        return PressioData.from_bytes(stream)

    def _decompress(self, input: PressioData, output: PressioData) -> PressioData:
        expected = output.dims if output.num_dimensions else None
        out = native_tthresh.decompress(input.as_memoryview(),
                                        expected_dims=expected)
        if output.dtype != DType.BYTE and output.dtype is not None:
            out = out.astype(dtype_to_numpy(output.dtype), copy=False)
        return PressioData.from_numpy(out, copy=False)
