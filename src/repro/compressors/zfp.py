"""LibPressio plugin for the ZFP native.

Translates the library's uniform C-order dimensions into zfp's
Fortran-ordered ``(nx, ny, nz)`` field description transparently — the
exact trap (reversed dimension order) Section V of the paper measures —
and exposes zfp's four modes through typed options.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..core.compressor import PressioCompressor
from ..core.configurable import Stability, ThreadSafety
from ..core.data import PressioData
from ..core.dtype import DType, dtype_to_numpy
from ..core.options import OptionType, PressioOptions
from ..core.registry import compressor_plugin
from ..core.status import InvalidOptionError, InvalidTypeError
from ..native import zfp as native_zfp

__all__ = ["ZFPCompressor"]

_MODE_NAMES = {
    native_zfp.MODE_ACCURACY: "accuracy",
    native_zfp.MODE_PRECISION: "precision",
    native_zfp.MODE_RATE: "rate",
    native_zfp.MODE_REVERSIBLE: "reversible",
}
_MODE_IDS = {v: k for k, v in _MODE_NAMES.items()}


@compressor_plugin("zfp")
class ZFPCompressor(PressioCompressor):
    """Transform-based error-bounded lossy compression via the zfp pipeline."""

    thread_safety = "serialized"

    def __init__(self) -> None:
        super().__init__()
        self._stream = native_zfp.zfp_stream_open()

    # -- options ----------------------------------------------------------
    def _options(self) -> PressioOptions:
        opts = PressioOptions()
        s = self._stream
        mode_name = _MODE_NAMES[s.mode]
        opts.set("zfp:execution_name", "serial")
        opts.set("zfp:mode_str", mode_name)
        if s.mode == native_zfp.MODE_ACCURACY:
            opts.set("zfp:accuracy", float(s.parameter))
            opts.set("pressio:abs", float(s.parameter))
        else:
            opts.set_type("zfp:accuracy", OptionType.DOUBLE)
            opts.set_type("pressio:abs", OptionType.DOUBLE)
        if s.mode == native_zfp.MODE_PRECISION:
            opts.set("zfp:precision", np.uint32(int(s.parameter)))
        else:
            opts.set_type("zfp:precision", OptionType.UINT32)
        if s.mode == native_zfp.MODE_RATE:
            opts.set("zfp:rate", float(s.parameter))
        else:
            opts.set_type("zfp:rate", OptionType.DOUBLE)
        opts.set("zfp:reversible",
                 bool(s.mode == native_zfp.MODE_REVERSIBLE))
        opts.set("zfp:backend", s.backend)
        opts.set("zfp:level", np.int32(s.level))
        return opts

    def _set_options(self, options: PressioOptions) -> None:
        s = self._stream
        mode_str = options.get("zfp:mode_str")
        if mode_str is not None:
            if mode_str not in _MODE_IDS:
                raise InvalidOptionError(
                    f"unknown zfp mode {mode_str!r}; known: {sorted(_MODE_IDS)}"
                )
            s.mode = _MODE_IDS[str(mode_str)]
        accuracy = options.get("zfp:accuracy", options.get("pressio:abs"))
        if accuracy is not None:
            native_zfp.zfp_stream_set_accuracy(s, float(accuracy))
        precision = options.get("zfp:precision")
        if precision is not None:
            native_zfp.zfp_stream_set_precision(s, int(precision))
        rate = options.get("zfp:rate")
        if rate is not None:
            native_zfp.zfp_stream_set_rate(s, float(rate))
        if options.get("zfp:reversible"):
            native_zfp.zfp_stream_set_reversible(s)
        s.backend = str(self._take(options, "zfp:backend", OptionType.STRING,
                                   s.backend))
        s.level = int(self._take(options, "zfp:level", OptionType.INT32,
                                 s.level))

    def _check_options(self, options: PressioOptions) -> None:
        accuracy = options.get("zfp:accuracy", options.get("pressio:abs"))
        if accuracy is not None and float(accuracy) <= 0:
            raise InvalidOptionError("zfp:accuracy must be positive")
        precision = options.get("zfp:precision")
        if precision is not None and not (1 <= int(precision) <= 64):
            raise InvalidOptionError("zfp:precision must be in [1, 64]")
        rate = options.get("zfp:rate")
        if rate is not None and float(rate) < 1:
            raise InvalidOptionError("zfp:rate must be >= 1")
        mode_str = options.get("zfp:mode_str")
        if mode_str is not None and mode_str not in _MODE_IDS:
            raise InvalidOptionError(f"unknown zfp mode {mode_str!r}")

    def _configuration(self) -> PressioOptions:
        cfg = PressioOptions()
        # independent per-instance streams: fully re-entrant
        cfg.set("pressio:thread_safe", ThreadSafety.MULTIPLE)
        cfg.set("pressio:stability", Stability.STABLE)
        cfg.set("pressio:lossy", True)
        cfg.set("zfp:shared_instance", False)
        cfg.set("zfp:modes", sorted(_MODE_IDS))
        return cfg

    def _documentation(self) -> PressioOptions:
        docs = PressioOptions()
        docs.set("pressio:description",
                 "zfp-family transform-based error-bounded lossy compressor")
        docs.set("zfp:mode_str",
                 "mode: accuracy, precision, rate, reversible")
        docs.set("zfp:accuracy", "absolute error tolerance (accuracy mode)")
        docs.set("zfp:precision", "kept bit planes per block (precision mode)")
        docs.set("zfp:rate", "bits per value (rate mode, approximate)")
        docs.set("zfp:reversible", "bit-exact lossless round trip")
        docs.set("pressio:abs", "cross-compressor absolute error bound")
        return docs

    def version(self) -> str:
        return "0.5.5.pyrepro"

    # -- compression --------------------------------------------------------
    def _compress(self, input: PressioData) -> PressioData:
        arr = input.to_numpy()
        if arr.dtype.kind not in "fiu":
            raise InvalidTypeError(f"zfp cannot compress dtype {arr.dtype}")
        # translate C-order dims -> zfp's Fortran-order field transparently
        dims = input.dims
        if any(0 < d < 4 for d in dims):
            warnings.warn(
                f"zfp pads dimensions smaller than its 4^d block size "
                f"(dims {tuple(dims)}); expect degraded compression ratios",
                stacklevel=2,
            )
        nxyzw = tuple(reversed(dims)) + (0,) * (4 - len(dims))
        field = native_zfp.zfp_field(arr.reshape(-1), _zfp_type_of(arr.dtype),
                                     *nxyzw[:4])
        stream = native_zfp.zfp_compress(self._stream, field)
        return PressioData.from_bytes(stream)

    def compress_stage1(self, input: PressioData):
        arr = input.to_numpy()
        if arr.dtype.kind not in "fiu":
            raise InvalidTypeError(f"zfp cannot compress dtype {arr.dtype}")
        dims = input.dims
        if any(0 < d < 4 for d in dims):
            warnings.warn(
                f"zfp pads dimensions smaller than its 4^d block size "
                f"(dims {tuple(dims)}); expect degraded compression ratios",
                stacklevel=2,
            )
        s = self._stream
        return native_zfp.compress_stage1(
            np.asarray(arr).reshape(dims), s.mode, s.parameter,
            backend=s.backend, level=s.level, transform=s.transform)

    def compress_stage2(self, state) -> PressioData:
        return PressioData.from_bytes(native_zfp.compress_stage2(state))

    def _decompress(self, input: PressioData, output: PressioData) -> PressioData:
        expected = output.dims if output.num_dimensions else None
        out = native_zfp.decompress(input.as_memoryview(), expected_dims=expected)
        if output.dtype != DType.BYTE and output.dtype is not None:
            out = out.astype(dtype_to_numpy(output.dtype), copy=False)
        return PressioData.from_numpy(out, copy=False)


def _zfp_type_of(dtype: np.dtype) -> int:
    if dtype == np.float32:
        return native_zfp.zfp_type_float
    if dtype == np.float64:
        return native_zfp.zfp_type_double
    if dtype == np.int32:
        return native_zfp.zfp_type_int32
    if dtype == np.int64:
        return native_zfp.zfp_type_int64
    # other integer kinds are promoted to the closest zfp type
    if np.dtype(dtype).kind in "iu":
        return native_zfp.zfp_type_int64
    raise InvalidTypeError(f"zfp has no type for {dtype}")
