"""The ``noop`` compressor: byte-for-byte copy with full metadata.

Useful as a baseline (compression ratio exactly 1.0 minus header
overhead), as the cheapest possible plugin for overhead measurements,
and as the default leaf for meta-compressor tests.
"""

from __future__ import annotations

import numpy as np

from ..core.compressor import PressioCompressor
from ..core.configurable import Stability, ThreadSafety
from ..core.data import PressioData
from ..core.dtype import dtype_to_numpy
from ..core.options import PressioOptions
from ..core.registry import compressor_plugin
from ..core.status import CorruptStreamError
from ..encoders.headers import read_header, write_header

__all__ = ["NoopCompressor"]

_MAGIC = b"NOP1"


@compressor_plugin("noop")
class NoopCompressor(PressioCompressor):
    """Stores the input verbatim behind a self-describing header."""

    thread_safety = "multithreaded"

    def _configuration(self) -> PressioOptions:
        cfg = PressioOptions()
        cfg.set("pressio:thread_safe", ThreadSafety.MULTIPLE)
        cfg.set("pressio:stability", Stability.STABLE)
        cfg.set("pressio:lossy", False)
        return cfg

    def _documentation(self) -> PressioOptions:
        docs = PressioOptions()
        docs.set("pressio:description", "identity compressor (baseline)")
        return docs

    def version(self) -> str:
        return "1.0.0.pyrepro"

    def _compress(self, input: PressioData) -> PressioData:
        header = write_header(_MAGIC, input.dtype, input.dims)
        return PressioData.from_bytes(header + input.to_bytes())

    def _decompress(self, input: PressioData, output: PressioData) -> PressioData:
        stream = input.to_bytes()
        dtype, dims, _d, _i, pos = read_header(stream, _MAGIC)
        arr = np.frombuffer(stream, dtype=dtype_to_numpy(dtype), offset=pos)
        n = int(np.prod(dims, dtype=np.int64)) if dims else 0
        if arr.size != n:
            raise CorruptStreamError(
                f"payload holds {arr.size} elements, dims imply {n}"
            )
        return PressioData.from_numpy(arr.reshape(dims), copy=True)
