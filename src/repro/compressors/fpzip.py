"""LibPressio plugin for the fpzip native (floats-only lossless)."""

from __future__ import annotations

from ..core.compressor import PressioCompressor
from ..core.configurable import Stability, ThreadSafety
from ..core.data import PressioData
from ..core.dtype import DType, dtype_to_numpy
from ..core.options import OptionType, PressioOptions
from ..core.registry import compressor_plugin
from ..core.status import InvalidTypeError
from ..native import fpzip as native_fpzip

__all__ = ["FpzipCompressor"]


@compressor_plugin("fpzip")
class FpzipCompressor(PressioCompressor):
    """Lossless floating-point compression via the fpzip pipeline.

    Rejects non-float inputs, reproducing the type-awareness example the
    paper builds its data-abstraction argument on.
    """

    thread_safety = "serialized"

    def __init__(self) -> None:
        super().__init__()
        self._backend = "zlib"
        self._level = 1

    def _options(self) -> PressioOptions:
        opts = PressioOptions()
        opts.set("fpzip:backend", self._backend)
        opts.set("fpzip:level", self._level)
        # fpzip's precision option: kept for API fidelity; this
        # reproduction is always full-precision lossless
        opts.set("fpzip:prec", 0)
        opts.set("fpzip:has_header", True)
        return opts

    def _set_options(self, options: PressioOptions) -> None:
        self._backend = str(self._take(options, "fpzip:backend",
                                       OptionType.STRING, self._backend))
        self._level = int(self._take(options, "fpzip:level", OptionType.INT64,
                                     self._level))

    def _configuration(self) -> PressioOptions:
        cfg = PressioOptions()
        cfg.set("pressio:thread_safe", ThreadSafety.MULTIPLE)
        cfg.set("pressio:stability", Stability.STABLE)
        cfg.set("pressio:lossy", False)
        cfg.set("fpzip:float_only", True)
        return cfg

    def _documentation(self) -> PressioOptions:
        docs = PressioOptions()
        docs.set("pressio:description",
                 "fpzip-style lossless floating point compressor "
                 "(floats only)")
        docs.set("fpzip:backend", "lossless backend for residuals")
        docs.set("fpzip:level", "backend effort level")
        return docs

    def version(self) -> str:
        return "1.3.0.pyrepro"

    def _compress(self, input: PressioData) -> PressioData:
        if input.dtype not in (DType.FLOAT, DType.DOUBLE):
            raise InvalidTypeError(
                f"fpzip only accepts float32/float64, got {input.dtype.name}"
            )
        stream = native_fpzip.compress(input.to_numpy(), backend=self._backend,
                                       level=self._level)
        return PressioData.from_bytes(stream)

    def _decompress(self, input: PressioData, output: PressioData) -> PressioData:
        expected = output.dims if output.num_dimensions else None
        out = native_fpzip.decompress(input.as_memoryview(), expected_dims=expected)
        if output.dtype in (DType.FLOAT, DType.DOUBLE):
            out = out.astype(dtype_to_numpy(output.dtype), copy=False)
        return PressioData.from_numpy(out, copy=False)
