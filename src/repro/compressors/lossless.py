"""LibPressio plugins for the byte-stream lossless codecs.

One plugin id per codec (``zlib``, ``bz2``, ``lzma``, ``pressio-lz``,
``rle``, ``huffman-bytes``, ``memcpy``/``noop``-style copies live in
:mod:`repro.compressors.noop`).  These are the "type-oblivious" class of
compressor from the paper's Table I discussion: they accept any dtype by
flattening to bytes, and dtype/dims travel in a small stream header so
decompression restores the typed, shaped buffer.
"""

from __future__ import annotations

from ..core.compressor import PressioCompressor
from ..core.configurable import Stability, ThreadSafety
from ..core.data import PressioData
from ..core.dtype import DType
from ..core.options import PressioOptions
from ..core.registry import register_compressor
from ..core.status import CorruptStreamError
from ..encoders.headers import read_header, write_header
from ..native.lossless import codec_ids, get_codec

__all__ = ["LosslessCompressor", "LOSSLESS_PLUGIN_IDS"]

_MAGIC = b"LSL1"


class LosslessCompressor(PressioCompressor):
    """Generic wrapper turning a byte codec into a pressio plugin."""

    codec_name = "zlib"
    thread_safety = "multithreaded"

    def __init__(self) -> None:
        super().__init__()
        self._codec = get_codec(self.codec_name)

    def _options(self) -> PressioOptions:
        opts = PressioOptions()
        opts.set(f"{self.prefix()}:codec", self._codec.name)
        return opts

    def _configuration(self) -> PressioOptions:
        cfg = PressioOptions()
        cfg.set("pressio:thread_safe", ThreadSafety.MULTIPLE)
        cfg.set("pressio:stability", Stability.STABLE)
        cfg.set("pressio:lossy", False)
        return cfg

    def _documentation(self) -> PressioOptions:
        docs = PressioOptions()
        docs.set("pressio:description",
                 f"lossless byte-stream compression with {self.codec_name}")
        return docs

    def version(self) -> str:
        return "1.0.0.pyrepro"

    def _compress(self, input: PressioData) -> PressioData:
        payload = self._codec.encode(input.to_bytes())
        header = write_header(_MAGIC, input.dtype, input.dims)
        return PressioData.from_bytes(header + payload)

    def _decompress(self, input: PressioData, output: PressioData) -> PressioData:
        import numpy as np

        from ..core.dtype import dtype_to_numpy

        stream = input.to_bytes()
        dtype, dims, _d, _i, pos = read_header(stream, _MAGIC)
        raw = self._codec.decode(stream[pos:])
        np_dtype = dtype_to_numpy(dtype)
        n = int(np.prod(dims, dtype=np.int64)) if dims else 0
        arr = np.frombuffer(raw, dtype=np_dtype)
        if arr.size != n:
            raise CorruptStreamError(
                f"decoded {arr.size} elements, header dims imply {n}"
            )
        return PressioData.from_numpy(arr.reshape(dims), copy=True)


def _make_plugin(codec: str) -> type[LosslessCompressor]:
    cls = type(
        f"Lossless_{codec.replace('-', '_')}",
        (LosslessCompressor,),
        {"codec_name": codec, "plugin_id": codec},
    )
    return cls


LOSSLESS_PLUGIN_IDS = tuple(c for c in codec_ids() if c != "memcpy")

for _codec in LOSSLESS_PLUGIN_IDS:
    register_compressor(_codec, _make_plugin(_codec))
