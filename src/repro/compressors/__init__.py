"""First-party compressor plugins.

Importing this package registers every plugin with
:mod:`repro.core.registry`; plugin ids:

``sz``, ``sz_threadsafe``, ``sz_omp``, ``zfp``, ``mgard``, ``fpzip``,
``tthresh`` — error-bounded/float compressors backed by the from-scratch
natives;
``zlib``, ``zlib-fast``, ``zlib-best``, ``bz2``, ``lzma``,
``pressio-lz``, ``rle``, ``huffman-bytes`` — lossless byte codecs;
``bit_grooming``, ``digit_rounding`` — precision-trimming compressors;
``noop`` — identity baseline;
``external`` — out-of-process compression (embedding experiments).

Meta-compressors (chunking, parallel dispatch, transforms, the
optimizer, ...) live in :mod:`repro.meta`.
"""

from . import external, fpzip, lossless, mgard, noop, rounding, sz, sz_variants, tthresh, zfp
from .external import ExternalCompressor
from .fpzip import FpzipCompressor
from .lossless import LOSSLESS_PLUGIN_IDS, LosslessCompressor
from .mgard import MGARDCompressor
from .noop import NoopCompressor
from .rounding import BitGroomingCompressor, DigitRoundingCompressor
from .sz import SZCompressor
from .sz_variants import SZOmpCompressor, SZThreadsafeCompressor
from .tthresh import TthreshCompressor
from .zfp import ZFPCompressor

__all__ = [
    "SZCompressor",
    "SZThreadsafeCompressor",
    "SZOmpCompressor",
    "TthreshCompressor",
    "ZFPCompressor",
    "MGARDCompressor",
    "FpzipCompressor",
    "LosslessCompressor",
    "LOSSLESS_PLUGIN_IDS",
    "BitGroomingCompressor",
    "DigitRoundingCompressor",
    "NoopCompressor",
    "ExternalCompressor",
]
