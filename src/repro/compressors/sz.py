"""LibPressio plugin for the SZ native.

Hides every SZ API hazard behind the uniform interface: the global
init/finalize lifecycle becomes reference counting, the reversed
five-argument dimension convention becomes the library's C-order dims,
input buffers are passed as read-only views so SZ's clobbering can never
reach user data, and the 27-field params struct becomes introspectable
typed options (including the cross-compressor ``pressio:abs`` /
``pressio:rel`` aliases).
"""

from __future__ import annotations

import dataclasses
import threading

import numpy as np

from ..core.compressor import PressioCompressor
from ..core.configurable import Stability, ThreadSafety
from ..core.data import PressioData
from ..core.dtype import DType, dtype_to_numpy
from ..core.options import OptionType, PressioOptions
from ..core.registry import compressor_plugin
from ..core.status import InvalidOptionError, InvalidTypeError
from ..native import sz as native_sz
from ..native.sz.params import ERROR_BOUND_MODES, sz_params

__all__ = ["SZCompressor"]

_MODE_NAMES = {v: k for k, v in ERROR_BOUND_MODES.items() if k != "vr_rel"}

# process-wide reference count modelling SZ_Init/SZ_Finalize sharing
_refcount = 0
_ref_lock = threading.Lock()


def _acquire_sz() -> None:
    global _refcount
    with _ref_lock:
        if _refcount == 0:
            native_sz.SZ_Init(sz_params())
        _refcount += 1


def _release_sz() -> None:
    global _refcount
    with _ref_lock:
        _refcount -= 1
        if _refcount == 0:
            native_sz.SZ_Finalize()


@compressor_plugin("sz")
class SZCompressor(PressioCompressor):
    """Error-bounded lossy compression via the SZ-family pipeline."""

    thread_safety = "single"

    def __init__(self) -> None:
        super().__init__()
        self._params = sz_params()
        _acquire_sz()

    def _release_native(self) -> None:
        _release_sz()

    # -- options ----------------------------------------------------------
    def _options(self) -> PressioOptions:
        opts = PressioOptions()
        p = self._params
        opts.set("sz:error_bound_mode", np.int32(p.errorBoundMode))
        opts.set("sz:error_bound_mode_str", _MODE_NAMES[p.errorBoundMode])
        opts.set("sz:abs_err_bound", float(p.absErrBound))
        opts.set("sz:rel_err_bound", float(p.relBoundRatio))
        opts.set("sz:pw_rel_err_bound", float(p.pw_relBoundRatio))
        opts.set("sz:psnr_err_bound", float(p.psnr))
        opts.set("sz:norm_err_bound", float(p.normErrBound))
        opts.set("sz:sz_mode", np.int32(p.szMode))
        opts.set("sz:lossless_compressor", p.losslessCompressor)
        opts.set("sz:entropy_coder", p.entropyCoder)
        opts.set("sz:prediction_mode", p.predictionMode)
        opts.set("sz:max_quant_intervals", np.int64(p.max_quant_intervals))
        opts.set("sz:quantization_intervals", np.int64(p.quantization_intervals))
        opts.set("sz:sample_distance", np.int64(p.sampleDistance))
        opts.set("sz:pred_threshold", float(p.predThreshold))
        opts.set("sz:segment_size", np.int64(p.segment_size))
        opts.set("sz:snapshot_cmpr_step", np.int64(p.snapshotCmprStep))
        opts.set("sz:with_regression", np.int64(p.withRegression))
        opts.set("sz:protect_value_range", np.int64(p.protectValueRange))
        opts.set("sz:accelerate_pw_rel_compression",
                 np.int64(p.accelerate_pw_rel_compression))
        opts.set("sz:plus_bits", np.int64(p.plus_bits))
        opts.set("sz:random_access", np.int64(p.randomAccess))
        opts.set("sz:data_endian_type", np.int64(p.dataEndianType))
        # cross-compressor common options (paper Section IV-B)
        if p.errorBoundMode == native_sz.ABS:
            opts.set("pressio:abs", float(p.absErrBound))
        else:
            opts.set_type("pressio:abs", OptionType.DOUBLE)
        if p.errorBoundMode == native_sz.REL:
            opts.set("pressio:rel", float(p.relBoundRatio))
        else:
            opts.set_type("pressio:rel", OptionType.DOUBLE)
        return opts

    def _set_options(self, options: PressioOptions) -> None:
        p = self._params
        mode = self._take(options, "sz:error_bound_mode", OptionType.INT32,
                          p.errorBoundMode)
        mode_str = options.get("sz:error_bound_mode_str")
        if mode_str is not None:
            try:
                mode = ERROR_BOUND_MODES[str(mode_str)]
            except KeyError:
                raise InvalidOptionError(
                    f"unknown error bound mode {mode_str!r}; known: "
                    f"{sorted(ERROR_BOUND_MODES)}"
                ) from None
        updated = dataclasses.replace(
            p,
            errorBoundMode=int(mode),
            absErrBound=self._take(options, "sz:abs_err_bound",
                                   OptionType.DOUBLE, p.absErrBound),
            relBoundRatio=self._take(options, "sz:rel_err_bound",
                                     OptionType.DOUBLE, p.relBoundRatio),
            pw_relBoundRatio=self._take(options, "sz:pw_rel_err_bound",
                                        OptionType.DOUBLE, p.pw_relBoundRatio),
            psnr=self._take(options, "sz:psnr_err_bound", OptionType.DOUBLE,
                            p.psnr),
            normErrBound=self._take(options, "sz:norm_err_bound",
                                    OptionType.DOUBLE, p.normErrBound),
            szMode=int(self._take(options, "sz:sz_mode", OptionType.INT32,
                                  p.szMode)),
            losslessCompressor=str(self._take(
                options, "sz:lossless_compressor", OptionType.STRING,
                p.losslessCompressor)),
            entropyCoder=str(self._take(options, "sz:entropy_coder",
                                        OptionType.STRING, p.entropyCoder)),
            predictionMode=str(self._take(options, "sz:prediction_mode",
                                          OptionType.STRING, p.predictionMode)),
        )
        # cross-compressor aliases override the specific fields
        if "pressio:abs" in options and options.get("pressio:abs") is not None:
            updated.errorBoundMode = native_sz.ABS
            updated.absErrBound = options.get_as("pressio:abs", OptionType.DOUBLE)
        if "pressio:rel" in options and options.get("pressio:rel") is not None:
            updated.errorBoundMode = native_sz.REL
            updated.relBoundRatio = options.get_as("pressio:rel", OptionType.DOUBLE)
        try:
            updated.validate()
        except ValueError as e:
            raise InvalidOptionError(str(e)) from None
        self._params = updated

    def _check_options(self, options: PressioOptions) -> None:
        trial = SZCompressor.__new__(SZCompressor)
        trial._params = self._params
        try:
            SZCompressor._set_options(trial, options)
        finally:
            pass  # trial never acquired a native reference

    def _configuration(self) -> PressioOptions:
        cfg = PressioOptions()
        # SZ's shared global store: only one thread may drive it
        cfg.set("pressio:thread_safe", ThreadSafety.SINGLE)
        cfg.set("pressio:stability", Stability.STABLE)
        cfg.set("pressio:lossy", True)
        cfg.set("sz:shared_instance", True)
        cfg.set("sz:error_bound_modes", sorted(ERROR_BOUND_MODES))
        return cfg

    def _documentation(self) -> PressioOptions:
        docs = PressioOptions()
        docs.set("pressio:description",
                 "SZ-family prediction-based error-bounded lossy compressor")
        docs.set("sz:error_bound_mode_str",
                 "error bound mode: abs, rel (value-range relative), "
                 "abs_and_rel, abs_or_rel, psnr, pw_rel, norm")
        docs.set("sz:abs_err_bound", "absolute error bound (mode abs)")
        docs.set("sz:rel_err_bound", "value-range relative bound (mode rel)")
        docs.set("sz:pw_rel_err_bound", "pointwise relative bound (mode pw_rel)")
        docs.set("sz:psnr_err_bound", "target PSNR in dB (mode psnr)")
        docs.set("sz:sz_mode",
                 "0=SZ_BEST_SPEED 1=SZ_DEFAULT_COMPRESSION 2=SZ_BEST_COMPRESSION")
        docs.set("sz:lossless_compressor",
                 "lossless backend: zlib, bz2, lzma, none")
        docs.set("sz:entropy_coder", "residual coder: fast or huffman")
        docs.set("sz:prediction_mode",
                 "lorenzo, none, regression, or adaptive (SZ 2.x per-block\n                 regression selection)")
        docs.set("pressio:abs", "cross-compressor absolute error bound")
        docs.set("pressio:rel", "cross-compressor value-range relative bound")
        return docs

    def version(self) -> str:
        return "2.1.10.pyrepro"

    # -- compression --------------------------------------------------------
    def _compress(self, input: PressioData) -> PressioData:
        arr = input.to_numpy()  # read-only view: SZ cannot clobber it
        if arr.dtype.kind not in "fiu":
            raise InvalidTypeError(f"sz cannot compress dtype {arr.dtype}")
        stream = native_sz.compress(arr, self._params)
        return PressioData.from_bytes(stream)

    def compress_stage1(self, input: PressioData):
        arr = input.to_numpy()  # read-only view: SZ cannot clobber it
        if arr.dtype.kind not in "fiu":
            raise InvalidTypeError(f"sz cannot compress dtype {arr.dtype}")
        return native_sz.compress_stage1(arr, self._params)

    def compress_stage2(self, state) -> PressioData:
        return PressioData.from_bytes(native_sz.compress_stage2(state))

    def _decompress(self, input: PressioData, output: PressioData) -> PressioData:
        stream = input.as_memoryview()
        expected = output.dims if output.num_dimensions else None
        out = native_sz.decompress(stream, expected_dims=expected)
        if output.dtype != DType.BYTE and output.dtype is not None:
            out = out.astype(dtype_to_numpy(output.dtype), copy=False)
        return PressioData.from_numpy(out, copy=False)
