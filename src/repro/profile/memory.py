"""Allocation tracking: :mod:`tracemalloc` lifecycle + top-site capture.

Per-*stage* allocation numbers live on the spans themselves
(:class:`repro.profile.stage.ProfilingTraceContext` stamps
current/peak traced bytes at every span boundary); this module owns the
process-level pieces around them:

* :func:`start_tracking` / :func:`stop_tracking` — idempotent
  tracemalloc lifecycle that resets the peak counter at start so
  per-span "high-water growth" deltas are meaningful for this run, not
  contaminated by whatever allocated before profiling began;
* :func:`summarize_tracking` — the ``allocation`` section of the
  profile artifact: global peak, final net, and the top allocation
  sites by file:line — the direct ammunition for the ROADMAP's planned
  buffer pool (a site that churns gigabytes of temporaries per call is
  the pool's first customer).

Interpretation caveats (documented, deliberate): ``alloc_net_bytes``
per stage is current-memory growth across the span (negative when a
stage frees more than it allocates); ``alloc_peak_growth_bytes`` is how
much the stage raised the process high-water mark — a stage that
allocates large temporaries *below* an earlier peak reports 0 growth
even though it churned.  The top-site table catches that case.
"""

from __future__ import annotations

import tracemalloc
from typing import Any

__all__ = ["start_tracking", "stop_tracking", "summarize_tracking"]

#: allocation sites reported in the artifact
TOP_SITES = 12


def start_tracking(nframes: int = 1) -> bool:
    """Begin tracemalloc tracking; returns True if *we* started it.

    When tracking is already on (an outer profiler or the test suite),
    the existing session is reused and the caller must not stop it.
    The peak counter is reset either way so the run's high-water deltas
    start from the present.
    """
    started = False
    if not tracemalloc.is_tracing():
        tracemalloc.start(nframes)
        started = True
    tracemalloc.reset_peak()
    return started


def summarize_tracking(top: int = TOP_SITES) -> dict[str, Any]:
    """The ``allocation`` artifact section from the live tracking state."""
    if not tracemalloc.is_tracing():
        return {"tracked": False}
    current, peak = tracemalloc.get_traced_memory()
    snapshot = tracemalloc.take_snapshot()
    sites = []
    for stat in snapshot.statistics("lineno")[:top]:
        frame = stat.traceback[0]
        filename = frame.filename.replace("\\", "/")
        short = "/".join(filename.split("/")[-3:])
        sites.append({
            "site": f"{short}:{frame.lineno}",
            "size_bytes": int(stat.size),
            "count": int(stat.count),
        })
    return {
        "tracked": True,
        "current_bytes": int(current),
        "peak_bytes": int(peak),
        "top_sites": sites,
    }


def stop_tracking(top: int = TOP_SITES) -> dict[str, Any]:
    """Summarize and stop tracking (only call when you started it)."""
    summary = summarize_tracking(top)
    if tracemalloc.is_tracing():
        tracemalloc.stop()
    return summary
