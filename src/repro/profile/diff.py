"""The profile-diff engine: which stage owns a performance delta?

``pressio bench`` can say *that* a configuration regressed; this module
says *where*.  Two profiles are aligned stage-path by stage-path and
each stage's exclusive-time change is expressed as a **share of the
total wall-time delta** — because every profile's exclusive column sums
to its wall time (the ``(untracked)`` row guarantees it), the per-stage
deltas sum to the wall delta exactly, so "stage X accounts for 87 % of
the slowdown" is arithmetic, not estimation.

:func:`attribute_regression` is the nightly gate's hook: given the
current and baseline profiles for a regressed configuration it returns
the ranked culprit list the CI log prints next to the red verdict.
"""

from __future__ import annotations

from typing import Any

from .stage import SCHEMA

__all__ = ["diff_profiles", "format_diff", "attribute_regression"]


def _stage_map(profile: dict[str, Any]) -> dict[str, dict[str, Any]]:
    if profile.get("schema") != SCHEMA:
        raise ValueError(
            f"not a profile artifact: schema {profile.get('schema')!r}")
    return {row["path"]: row for row in profile.get("stages", ())}


def diff_profiles(a: dict[str, Any], b: dict[str, Any],
                  min_share: float = 0.05) -> dict[str, Any]:
    """Align ``b`` (current) against ``a`` (baseline) by stage path.

    Returns a report dict with one row per stage path present on either
    side, sorted by absolute exclusive-time delta; ``culprits`` names
    the stages whose share of the total delta is at least ``min_share``
    (same sign as the total), and ``culprit`` is the single largest —
    the stage a regression gate should print.
    """
    rows_a, rows_b = _stage_map(a), _stage_map(b)
    wall_a = int(a.get("wall_ns") or 0)
    wall_b = int(b.get("wall_ns") or 0)
    wall_delta = wall_b - wall_a

    out_rows: list[dict[str, Any]] = []
    for path in sorted(set(rows_a) | set(rows_b)):
        ra, rb = rows_a.get(path), rows_b.get(path)
        a_ns = int(ra["exclusive_ns"]) if ra else 0
        b_ns = int(rb["exclusive_ns"]) if rb else 0
        delta = b_ns - a_ns
        out_rows.append({
            "path": path,
            "status": ("common" if ra and rb
                       else "added" if rb else "removed"),
            "a_exclusive_ns": a_ns,
            "b_exclusive_ns": b_ns,
            "delta_ns": delta,
            "delta_pct": (100.0 * delta / a_ns) if a_ns else None,
            "share_of_wall_delta": (delta / wall_delta
                                    if wall_delta else None),
            "a_calls": int(ra["calls"]) if ra else 0,
            "b_calls": int(rb["calls"]) if rb else 0,
        })
    out_rows.sort(key=lambda r: -abs(r["delta_ns"]))

    culprits = [
        r["path"] for r in out_rows
        if wall_delta
        and r["share_of_wall_delta"] is not None
        and r["share_of_wall_delta"] >= min_share
    ]
    return {
        "a_label": a.get("label"), "b_label": b.get("label"),
        "a_git_sha": a.get("git_sha"), "b_git_sha": b.get("git_sha"),
        "wall_a_ns": wall_a, "wall_b_ns": wall_b,
        "wall_delta_ns": wall_delta,
        "wall_delta_pct": (100.0 * wall_delta / wall_a) if wall_a else None,
        "rows": out_rows,
        "culprits": culprits,
        "culprit": culprits[0] if culprits else None,
    }


def format_diff(report: dict[str, Any], top: int = 15) -> str:
    """Human-readable attribution table for a :func:`diff_profiles` report."""
    pct = report.get("wall_delta_pct")
    lines = [
        f"baseline: {report.get('a_label')} "
        f"(git {str(report.get('a_git_sha'))[:12]}) "
        f"wall {report['wall_a_ns'] / 1e6:.3f}ms",
        f"current:  {report.get('b_label')} "
        f"(git {str(report.get('b_git_sha'))[:12]}) "
        f"wall {report['wall_b_ns'] / 1e6:.3f}ms",
        f"delta:    {report['wall_delta_ns'] / 1e6:+.3f}ms"
        + (f" ({pct:+.1f}%)" if pct is not None else ""),
        "",
    ]
    header = (f"{'stage':<44} {'base ms':>9} {'cur ms':>9} "
              f"{'delta ms':>9} {'share':>7}  status")
    lines += [header, "-" * len(header)]
    for row in report["rows"][:top]:
        share = row["share_of_wall_delta"]
        share_s = f"{100.0 * share:>6.1f}%" if share is not None else "      -"
        lines.append(
            f"{row['path']:<44} {row['a_exclusive_ns'] / 1e6:>9.3f} "
            f"{row['b_exclusive_ns'] / 1e6:>9.3f} "
            f"{row['delta_ns'] / 1e6:>+9.3f} {share_s}  {row['status']}")
    if report.get("culprit"):
        lines.append("")
        lines.append(f"primary attribution: {report['culprit']} "
                     f"accounts for the largest share of the wall delta")
    return "\n".join(lines)


def attribute_regression(current: dict[str, Any],
                         baseline: dict[str, Any],
                         top: int = 3) -> list[str]:
    """One-line-per-culprit summary for the bench regression gate."""
    report = diff_profiles(baseline, current)
    out: list[str] = []
    for path in report["culprits"][:top]:
        row = next(r for r in report["rows"] if r["path"] == path)
        share = row["share_of_wall_delta"] or 0.0
        out.append(
            f"{path}: {row['delta_ns'] / 1e6:+.3f}ms exclusive "
            f"({100.0 * share:.0f}% of the wall delta)")
    return out
