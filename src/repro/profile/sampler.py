"""A wall-clock sampling profiler for code outside span coverage.

The deterministic stage profiler only sees what the span
instrumentation covers; a scalar loop buried in an encoder that never
opens a span is invisible to it.  This sampler fills the gap the way
py-spy/perf do, but in-process and dependency-free: a daemon thread
wakes every ``interval`` seconds, grabs :func:`sys._current_frames`,
and records each *other* thread's Python stack with a
``perf_counter_ns`` timestamp.

Because every sample is timestamped on the same clock the spans use,
:func:`merge_samples` can place each sample **inside the innermost span
open at that instant on that thread** — producing one merged call tree:
stage path first, sampled Python frames below it.  That is how a hot
helper shows up *under* ``compress[sz]/sz:entropy`` in the flamegraph
instead of floating in an unrelated root.

Sampling is cooperative with the GIL: a sample shows where the
interpreter actually spends bytecode time (including inside numpy calls
the calling frame is blocked on), which is exactly the attribution the
ROADMAP's vectorization work needs.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any

from ..trace.context import Span, TraceContext

__all__ = ["SamplingProfiler", "merge_samples"]

#: frames deeper than this are dropped from a sample (innermost kept)
MAX_FRAMES = 12

#: stdlib/infrastructure file substrings pruned from sampled stacks
_PRUNE = ("threading.py", "profile/sampler.py")


class SamplingProfiler:
    """Background sampler collecting timestamped Python stacks.

    ``samples`` is a list of ``(t_ns, thread_id, frames)`` where
    ``frames`` is an innermost-first tuple of ``"function (file:line)"``
    strings.  The sampler thread never samples itself.
    """

    def __init__(self, interval: float = 0.002,
                 max_frames: int = MAX_FRAMES):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval = interval
        self.max_frames = max_frames
        self.samples: list[tuple[int, int, tuple[str, ...]]] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle --------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._thread = threading.Thread(
            target=self._run, name="pressio-sampler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    # -- sampling loop ----------------------------------------------------
    def _run(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.wait(self.interval):
            now = time.perf_counter_ns()
            for tid, frame in sys._current_frames().items():
                if tid == own_id:
                    continue
                stack = self._extract(frame)
                if stack:
                    self.samples.append((now, tid, stack))

    def _extract(self, frame: Any) -> tuple[str, ...]:
        out: list[str] = []
        while frame is not None and len(out) < self.max_frames:
            code = frame.f_code
            filename = code.co_filename.replace("\\", "/")
            short = "/".join(filename.split("/")[-2:])
            if not any(p in short for p in _PRUNE):
                out.append(f"{code.co_name} ({short}:{frame.f_lineno})")
            frame = frame.f_back
        return tuple(out)  # innermost first


def _innermost_span_at(t_ns: int, tid: int,
                       spans: list[Span]) -> Span | None:
    """Deepest span open on thread ``tid`` at instant ``t_ns``."""
    best: Span | None = None
    best_dur = None
    for sp in spans:
        if sp.thread_id != tid or sp.end_ns is None:
            continue
        if sp.start_ns <= t_ns <= sp.end_ns:
            if best_dur is None or sp.duration_ns < best_dur:
                best, best_dur = sp, sp.duration_ns
    return best


def merge_samples(sampler: SamplingProfiler,
                  ctx: TraceContext) -> dict[str, Any]:
    """Assign samples to enclosing stage paths; aggregate by stack.

    Returns the ``samples`` section of the profile artifact::

        {"interval_s": 0.002, "count": N, "unattributed": M,
         "stacks": [{"stage": "compress[sz]/sz:entropy",
                     "frames": ["inner (...)", ...],  # innermost first
                     "count": 17}, ...]}
    """
    from .stage import span_path

    spans = [sp for sp in ctx.spans() if sp.end_ns is not None]
    by_id = {sp.span_id: sp for sp in spans}
    agg: dict[tuple[str, tuple[str, ...]], int] = {}
    unattributed = 0
    for t_ns, tid, frames in sampler.samples:
        sp = _innermost_span_at(t_ns, tid, spans)
        if sp is None:
            stage = ""
            unattributed += 1
        else:
            stage = span_path(sp, by_id)
        key = (stage, frames)
        agg[key] = agg.get(key, 0) + 1
    stacks = [
        {"stage": stage, "frames": list(frames), "count": count}
        for (stage, frames), count in
        sorted(agg.items(), key=lambda kv: -kv[1])
    ]
    return {
        "interval_s": sampler.interval,
        "count": len(sampler.samples),
        "unattributed": unattributed,
        "stacks": stacks,
    }
