"""The deterministic stage profiler: span boundaries -> attribution rows.

The paper's Fig. 3 argues the generic facade costs ~0.47 % median
overhead; defending (or spending) that budget requires knowing *which
stage* of a pipeline owns each microsecond.  The tracer already records
the span tree for every compress/decompress — this module turns that
tree into a **profile artifact**: one row per stage *path* (the root-to-
span label chain, e.g. ``compress[sz]/sz:quantize``) carrying

* ``calls`` and inclusive wall time (the span's own duration);
* **exclusive** wall time (inclusive minus direct children — the number
  that localizes a regression);
* bytes in/out and the derived per-stage bandwidth;
* allocation attribution (net growth and high-water growth) when
  :mod:`tracemalloc` tracking is on.

:class:`StageProfiler` is the one-stop context manager: it installs a
:class:`ProfilingTraceContext` as the active tracer (so every existing
instrumentation site feeds it), optionally starts the wall-clock
sampler (:mod:`repro.profile.sampler`) and allocation tracking
(:mod:`repro.profile.memory`), and renders everything into a plain-dict
artifact (schema ``pressio-profile/1``) that the exporters, the diff
engine, and ``pressio bench --profile`` all consume.

Everything here is *off* by default: with no profiler installed the hot
path still performs its single ``repro._hot.ANY`` read and nothing
else — ``tests/profile/test_overhead.py`` pins that.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Any

from ..trace.context import Span, TraceContext
from ..trace.runtime import disable_tracing, enable_tracing

__all__ = ["SCHEMA", "ProfilingTraceContext", "StageProfiler",
           "build_stage_rows", "span_path"]

SCHEMA = "pressio-profile/1"

#: synthetic stage collecting wall time no span accounts for
UNTRACKED = "(untracked)"


class ProfilingTraceContext(TraceContext):
    """A :class:`TraceContext` that stamps allocation state on spans.

    At every span boundary the current/peak traced memory is recorded
    into the span's attrs (``_mem0``/``_mem1``), attributing allocation
    churn to the same stage tree the timing rows use.  When
    ``track_alloc`` is False the subclass adds nothing over the base
    collector, so plain profiling runs pay no tracemalloc cost.
    """

    def __init__(self, name: str = "profile", track_alloc: bool = True):
        super().__init__(name)
        self.track_alloc = track_alloc

    def start_span(self, name: str, **attrs: Any) -> Span:
        sp = super().start_span(name, **attrs)
        if self.track_alloc and tracemalloc.is_tracing():
            sp.attrs["_mem0"] = tracemalloc.get_traced_memory()
        return sp

    def finish_span(self, sp: Span, status: str = "ok") -> None:
        if (self.track_alloc and sp.end_ns is None
                and tracemalloc.is_tracing()):
            sp.attrs["_mem1"] = tracemalloc.get_traced_memory()
        super().finish_span(sp, status)


def span_path(sp: Span, by_id: dict[int, Span]) -> str:
    """Root-to-span label chain, ``/``-joined.

    A span labelled by its ``plugin`` attr renders as ``name[plugin]``
    so two compressors sharing the generic ``compress`` span name stay
    distinguishable in one flamegraph.
    """
    labels: list[str] = []
    cur: Span | None = sp
    seen: set[int] = set()
    while cur is not None and cur.span_id not in seen:
        seen.add(cur.span_id)
        plugin = cur.attrs.get("plugin")
        label = (f"{cur.name}[{plugin}]"
                 if plugin and str(plugin) != cur.name else cur.name)
        labels.append(label)
        cur = (by_id.get(cur.parent_id)
               if cur.parent_id is not None else None)
    return "/".join(reversed(labels))


def build_stage_rows(ctx: TraceContext,
                     wall_ns: int | None = None) -> list[dict[str, Any]]:
    """Aggregate the span tree into per-stage-path attribution rows.

    Exclusive time is inclusive minus *same-thread* direct children
    (a parallel fan-out's concurrent children must not drive the parent
    negative).  When ``wall_ns`` is given, an ``(untracked)`` row
    absorbs the remainder so the exclusive column sums exactly to the
    measured wall time — the property the acceptance check audits.
    """
    spans = [sp for sp in ctx.spans() if sp.end_ns is not None]
    by_id = {sp.span_id: sp for sp in spans}
    children: dict[int, list[Span]] = {}
    for sp in spans:
        if sp.parent_id is not None and sp.parent_id in by_id:
            children.setdefault(sp.parent_id, []).append(sp)

    rows: dict[str, dict[str, Any]] = {}
    root_incl_ns = 0
    for sp in spans:
        path = span_path(sp, by_id)
        row = rows.setdefault(path, {
            "path": path, "calls": 0, "inclusive_ns": 0, "exclusive_ns": 0,
            "bytes_in": 0, "bytes_out": 0, "errors": 0,
            "alloc_net_bytes": 0, "alloc_peak_growth_bytes": 0,
        })
        row["calls"] += 1
        row["inclusive_ns"] += sp.duration_ns
        same_thread_child_ns = sum(
            c.duration_ns for c in children.get(sp.span_id, [])
            if c.thread_id == sp.thread_id)
        row["exclusive_ns"] += max(0, sp.duration_ns - same_thread_child_ns)
        row["bytes_in"] += int(sp.attrs.get("input_bytes") or 0)
        row["bytes_out"] += int(sp.attrs.get("output_bytes") or 0)
        if sp.status.startswith("error"):
            row["errors"] += 1
        mem0, mem1 = sp.attrs.get("_mem0"), sp.attrs.get("_mem1")
        if mem0 is not None and mem1 is not None:
            row["alloc_net_bytes"] += int(mem1[0]) - int(mem0[0])
            row["alloc_peak_growth_bytes"] += max(
                0, int(mem1[1]) - int(mem0[1]))
        if sp.parent_id is None or sp.parent_id not in by_id:
            root_incl_ns += sp.duration_ns

    out = sorted(rows.values(), key=lambda r: -r["exclusive_ns"])
    if wall_ns is not None:
        untracked = max(0, wall_ns - root_incl_ns)
        out.append({
            "path": UNTRACKED, "calls": 0,
            "inclusive_ns": untracked, "exclusive_ns": untracked,
            "bytes_in": 0, "bytes_out": 0, "errors": 0,
            "alloc_net_bytes": 0, "alloc_peak_growth_bytes": 0,
        })
    for row in out:
        secs = row["exclusive_ns"] / 1e9
        row["bytes_per_s"] = row["bytes_in"] / secs if secs > 0 else 0.0
    return out


class StageProfiler:
    """Profile a block of work: stage times + samples + allocations.

    ::

        with StageProfiler() as prof:
            compressor.compress(data)
        profile = prof.result(meta={"compressor": "sz"})

    The profiler *replaces* the active tracer for the duration of the
    block (restoring the previous one on exit), so nesting inside an
    already-traced region hands the spans to the profiler.  Sampling
    and allocation tracking are both optional; disable them for the
    lowest-perturbation deterministic-only runs.
    """

    def __init__(self, name: str = "profile", *,
                 track_alloc: bool = True,
                 sample_interval: float | None = 0.002):
        self.name = name
        self.track_alloc = track_alloc
        self.sample_interval = sample_interval
        self.ctx = ProfilingTraceContext(name, track_alloc=track_alloc)
        self.sampler = None
        self.wall_ns: int | None = None
        self._t0: int | None = None
        self._previous: TraceContext | None = None
        self._started_tracemalloc = False

    # -- lifecycle --------------------------------------------------------
    def __enter__(self) -> "StageProfiler":
        from ..trace import runtime as _trace

        if self.track_alloc:
            from .memory import start_tracking

            self._started_tracemalloc = start_tracking()
        self._previous = _trace.ACTIVE
        enable_tracing(self.ctx)
        if self.sample_interval is not None:
            from .sampler import SamplingProfiler

            self.sampler = SamplingProfiler(self.sample_interval)
            self.sampler.start()
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.wall_ns = time.perf_counter_ns() - (self._t0 or 0)
        if self.sampler is not None:
            self.sampler.stop()
        if self._previous is not None:
            enable_tracing(self._previous)
        else:
            disable_tracing()
        if self._started_tracemalloc:
            from .memory import stop_tracking

            self._alloc_summary = stop_tracking()
        elif self.track_alloc and tracemalloc.is_tracing():
            from .memory import summarize_tracking

            self._alloc_summary = summarize_tracking()

    # -- results ----------------------------------------------------------
    def result(self, meta: dict[str, Any] | None = None,
               strict: bool = False) -> dict[str, Any]:
        """Render the profile artifact (plain JSON-serializable dict).

        With ``strict=True`` a broken span tree (children inclusive
        exceeding the parent — a double count) raises instead of
        silently clamping; the CLI always runs strict so a profiler bug
        cannot masquerade as attribution.
        """
        from datetime import datetime, timezone

        violations = self.ctx.exclusive_invariant_violations()
        if strict and violations:
            raise AssertionError(
                "span tree violates the exclusive-time invariant:\n  "
                + "\n  ".join(violations))
        stages = build_stage_rows(self.ctx, self.wall_ns)
        profile: dict[str, Any] = {
            "schema": SCHEMA,
            "created_at": datetime.now(timezone.utc).isoformat(),
            "label": self.name,
            "wall_ns": self.wall_ns,
            "meta": dict(meta or {}),
            "stages": stages,
            "invariant_violations": violations,
        }
        from .export import git_revision

        profile["git_sha"] = git_revision()
        if self.track_alloc:
            profile["allocation"] = getattr(
                self, "_alloc_summary", {"tracked": False})
        if self.sampler is not None:
            from .sampler import merge_samples

            profile["samples"] = merge_samples(self.sampler, self.ctx)
        self._publish_gauges(profile)
        return profile

    @staticmethod
    def _publish_gauges(profile: dict[str, Any]) -> None:
        """Refresh profile-summary gauges when a registry is watching."""
        from ..obs import runtime as _obs

        if _obs.ACTIVE is None:
            return
        from ..obs.bridge import ingest_profile

        ingest_profile(profile)
