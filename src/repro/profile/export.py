"""Profile artifact I/O and renderers: JSON, collapsed stacks, tables.

Three consumers, matching how attribution data actually gets used:

* :func:`write_profile` / :func:`load_profile` — the durable JSON
  artifact ``pressio bench --profile`` stores next to ``BENCH_*.json``
  so regressions can be attributed *after the fact*;
* :func:`write_collapsed` — Brendan Gregg's collapsed-stack format
  (``frame;frame;frame <weight>`` per line), consumed by
  ``flamegraph.pl`` / speedscope / inferno, weights in microseconds.
  Deterministic stage rows contribute their exclusive time; sampled
  Python stacks subdivide their enclosing stage's time;
* :func:`format_stage_table` / :func:`format_memory_report` — the
  human-readable report ``pressio profile`` prints.

The Chrome-trace exporter is *not* duplicated here: a profiling run
holds a real :class:`~repro.trace.context.TraceContext`, so the CLI
reuses :func:`repro.trace.export.write_chrome_trace` directly on it.
"""

from __future__ import annotations

import json
import os
import subprocess
from typing import Any, TextIO

from .stage import SCHEMA, UNTRACKED

__all__ = ["git_revision", "write_profile", "load_profile",
           "write_collapsed", "format_stage_table", "format_memory_report",
           "format_sample_report"]


def git_revision(cwd: str | None = None) -> str | None:
    """The current git commit SHA, or None outside a checkout.

    Both the bench artifact header and every profile carry this so the
    two are joinable: "which commit produced the profile that explains
    this regression" is a lookup, not archaeology.  The default anchors
    to the installed ``repro`` package, not the process cwd — the
    provenance question is about the *code*, and stays answerable when
    the CLI runs from a scratch directory.
    """
    if cwd is None:
        cwd = os.path.dirname(os.path.abspath(__file__))
    try:
        # metadata lookup, not pipeline work: git emits no spans, so
        # forwarding trace context would only leak env into a tool call
        out = subprocess.run(  # pressio-lint: disable=OB001
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


# ---------------------------------------------------------------------------
# artifact I/O
# ---------------------------------------------------------------------------

def write_profile(profile: dict[str, Any], path: str) -> str:
    if profile.get("schema") != SCHEMA:
        raise ValueError(f"not a profile artifact: schema "
                         f"{profile.get('schema')!r}")
    with open(path, "w") as fh:
        json.dump(profile, fh, indent=2)
        fh.write("\n")
    return path


def load_profile(path: str) -> dict[str, Any]:
    with open(path) as fh:
        profile = json.load(fh)
    if profile.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unsupported profile schema {profile.get('schema')!r}")
    return profile


# ---------------------------------------------------------------------------
# collapsed-stack flamegraph
# ---------------------------------------------------------------------------

def _open_maybe(path_or_file: str | TextIO):
    if hasattr(path_or_file, "write"):
        return path_or_file, False
    return open(path_or_file, "w"), True


def write_collapsed(profile: dict[str, Any],
                    path_or_file: str | TextIO) -> int:
    """Write collapsed stacks; returns the number of lines.

    Every stage row becomes ``a;b;c <exclusive_us>``.  When the run
    sampled Python stacks, each sampled stack becomes
    ``<stage path>;py:<frame>;... <estimated_us>`` and its estimate is
    subtracted from the bare stage line (floored at zero), so stage
    totals are preserved while hot helpers subdivide them.
    """
    stage_us = {
        row["path"]: max(0, round(row["exclusive_ns"] / 1e3))
        for row in profile.get("stages", ())
    }
    sample_lines: list[tuple[str, int]] = []
    samples = profile.get("samples") or {}
    interval_us = float(samples.get("interval_s", 0.0)) * 1e6
    for stack in samples.get("stacks", ()):
        stage = stack.get("stage") or UNTRACKED
        est_us = round(stack["count"] * interval_us)
        if est_us <= 0:
            continue
        # frames are innermost-first; flamegraph wants root-first
        frames = [f"py:{f}" for f in reversed(stack["frames"])]
        sample_lines.append((";".join([stage.replace("/", ";")] + frames),
                             est_us))
        if stage in stage_us:
            stage_us[stage] = max(0, stage_us[stage] - est_us)

    fh, owned = _open_maybe(path_or_file)
    lines = 0
    try:
        for path, us in stage_us.items():
            if us <= 0:
                continue
            fh.write(f"{path.replace('/', ';')} {us}\n")
            lines += 1
        for path, us in sample_lines:
            fh.write(f"{path} {us}\n")
            lines += 1
    finally:
        if owned:
            fh.close()
    return lines


# ---------------------------------------------------------------------------
# text reports
# ---------------------------------------------------------------------------

def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024.0 or unit == "GB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{n:.0f}B"
        n /= 1024.0
    return f"{n:.1f}GB"  # pragma: no cover - unreachable


def format_stage_table(profile: dict[str, Any]) -> str:
    """The per-stage attribution table, exclusive-time-sorted."""
    wall_ms = (profile.get("wall_ns") or 0) / 1e6
    header = (f"{'stage':<44} {'calls':>6} {'incl ms':>9} {'excl ms':>9} "
              f"{'excl %':>7} {'MB/s':>9} {'alloc':>10}")
    lines = [
        f"profile: {profile.get('label', '?')}  wall {wall_ms:.3f}ms  "
        f"git {str(profile.get('git_sha'))[:12]}",
        header, "-" * len(header),
    ]
    total_excl = 0
    for row in profile.get("stages", ()):
        total_excl += row["exclusive_ns"]
        excl_ms = row["exclusive_ns"] / 1e6
        pct = (100.0 * row["exclusive_ns"] / profile["wall_ns"]
               if profile.get("wall_ns") else 0.0)
        mbps = row.get("bytes_per_s", 0.0) / 1e6
        alloc = _fmt_bytes(row.get("alloc_peak_growth_bytes", 0))
        lines.append(
            f"{row['path']:<44} {row['calls']:>6} "
            f"{row['inclusive_ns'] / 1e6:>9.3f} {excl_ms:>9.3f} "
            f"{pct:>6.1f}% {mbps:>9.2f} {alloc:>10}")
    lines.append("-" * len(header))
    cov = (100.0 * total_excl / profile["wall_ns"]
           if profile.get("wall_ns") else 0.0)
    lines.append(f"{'sum(exclusive)':<44} {'':>6} {'':>9} "
                 f"{total_excl / 1e6:>9.3f} {cov:>6.1f}%")
    if profile.get("invariant_violations"):
        lines.append("")
        lines.append("WARNING: exclusive-time invariant violations:")
        for v in profile["invariant_violations"]:
            lines.append(f"  {v}")
    return "\n".join(lines)


def format_memory_report(profile: dict[str, Any]) -> str:
    """The tracemalloc attribution section of the report."""
    alloc = profile.get("allocation") or {}
    if not alloc.get("tracked"):
        return "allocation: not tracked"
    lines = [
        f"allocation: peak {_fmt_bytes(alloc.get('peak_bytes', 0))}, "
        f"final {_fmt_bytes(alloc.get('current_bytes', 0))}",
        "top stages by high-water growth:",
    ]
    stages = sorted(profile.get("stages", ()),
                    key=lambda r: -r.get("alloc_peak_growth_bytes", 0))
    for row in stages[:8]:
        growth = row.get("alloc_peak_growth_bytes", 0)
        if growth <= 0:
            continue
        lines.append(
            f"  {row['path']:<44} +{_fmt_bytes(growth):>10}  "
            f"(net {_fmt_bytes(row.get('alloc_net_bytes', 0))})")
    lines.append("top allocation sites:")
    for site in alloc.get("top_sites", ())[:8]:
        lines.append(f"  {site['site']:<56} {_fmt_bytes(site['size_bytes']):>10} "
                     f"in {site['count']} blocks")
    return "\n".join(lines)


def format_sample_report(profile: dict[str, Any], top: int = 10) -> str:
    """The sampled-stack section: hottest Python frames per stage."""
    samples = profile.get("samples") or {}
    if not samples.get("count"):
        return "samples: none collected (run shorter than the interval?)"
    lines = [
        f"samples: {samples['count']} at "
        f"{samples.get('interval_s', 0) * 1e3:g}ms "
        f"({samples.get('unattributed', 0)} outside span coverage)",
    ]
    for stack in samples.get("stacks", ())[:top]:
        where = stack["frames"][0] if stack["frames"] else "?"
        stage = stack.get("stage") or UNTRACKED
        lines.append(f"  {stack['count']:>5}x  {stage:<40} {where}")
    return "\n".join(lines)
