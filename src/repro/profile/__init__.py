"""Performance attribution: stage profiles, flamegraphs, profile diffs.

Layered on the span tracer (:mod:`repro.trace`) and the shared hot-path
sentinel (:mod:`repro._hot`), so profiling is **zero-cost when
disabled** — the same one-global-read guarantee the tracer and the
metrics registry already honour (``tests/profile/test_overhead.py``).

Usage::

    from repro.profile import StageProfiler, format_stage_table

    with StageProfiler() as prof:
        compressor.compress(data)
        compressor.decompress(compressed, template)
    profile = prof.result(meta={"compressor": "sz"})
    print(format_stage_table(profile))        # per-stage attribution
    write_collapsed(profile, "prof.folded")   # flamegraph input

``pressio profile`` drives this from the command line (including
``--diff A.json B.json``), and ``pressio bench --profile`` captures one
profile per benchmark configuration so the nightly regression gate can
name the guilty stage.
"""

from .diff import attribute_regression, diff_profiles, format_diff
from .export import (
    format_memory_report,
    format_sample_report,
    format_stage_table,
    git_revision,
    load_profile,
    write_collapsed,
    write_profile,
)
from .sampler import SamplingProfiler, merge_samples
from .stage import (
    SCHEMA,
    ProfilingTraceContext,
    StageProfiler,
    build_stage_rows,
    span_path,
)

__all__ = [
    "SCHEMA",
    "ProfilingTraceContext",
    "SamplingProfiler",
    "StageProfiler",
    "attribute_regression",
    "build_stage_rows",
    "diff_profiles",
    "format_diff",
    "format_memory_report",
    "format_sample_report",
    "format_stage_table",
    "git_revision",
    "load_profile",
    "merge_samples",
    "span_path",
    "write_collapsed",
    "write_profile",
]
