"""``pressio profile``: capture, inspect, and diff stage profiles.

Two modes:

* **capture** — round-trip a dataset under the stage profiler and print
  the attribution report (stage table, allocation section, sampled
  stacks); ``--json``/``--flamegraph``/``--chrome-trace`` persist the
  artifact, the collapsed stacks, and the raw span timeline::

      pressio profile --compressor sz --synthetic nyx --dims 32,32,32 \\
              --option pressio:abs=1e-4 --reps 3 \\
              --json prof.json --flamegraph prof.folded

* **diff** — align two saved profiles by stage path and name the stages
  that account for the wall-time delta::

      pressio profile --diff baseline.json current.json
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["build_profile_parser", "run_profile"]


def build_profile_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pressio profile",
        description="stage-level performance attribution: capture a "
                    "profile of a round trip, or --diff two profiles",
    )
    parser.add_argument("inputs", nargs="*", default=[],
                        help="with --diff: BASELINE.json CURRENT.json; "
                             "otherwise an optional input data path "
                             "(equivalent to --input)")
    parser.add_argument("--diff", action="store_true",
                        help="diff two saved profile artifacts")
    parser.add_argument("--compressor", "-z", default=None,
                        help="compressor plugin id (capture mode)")
    parser.add_argument("--input", "-i", default=None, help="input path")
    parser.add_argument("--input-format", "-I", default="posix",
                        help="io plugin for reading (posix, numpy, csv, ...)")
    parser.add_argument("--synthetic", default=None,
                        help="use a synthetic dataset instead of --input")
    parser.add_argument("--dtype", "-t", default="float64",
                        help="element type for typeless formats")
    parser.add_argument("--dims", "-d", default=None,
                        help="comma-separated dims for typeless formats")
    parser.add_argument("--option", "-o", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="set a compressor option (repeatable)")
    parser.add_argument("--reps", type=int, default=3,
                        help="profiled round trips (default 3)")
    parser.add_argument("--no-decompress", action="store_true",
                        help="profile the compression phase only")
    parser.add_argument("--no-alloc", action="store_true",
                        help="skip tracemalloc allocation tracking")
    parser.add_argument("--no-sample", action="store_true",
                        help="skip the wall-clock sampling profiler")
    parser.add_argument("--sample-interval", type=float, default=0.002,
                        help="sampling period in seconds (default 0.002)")
    parser.add_argument("--json", default=None,
                        help="write the profile artifact to this path")
    parser.add_argument("--flamegraph", default=None,
                        help="write collapsed stacks to this path")
    parser.add_argument("--chrome-trace", default=None,
                        help="write chrome://tracing JSON to this path")
    parser.add_argument("--min-share", type=float, default=0.05,
                        help="--diff: culprit threshold as a share of the "
                             "wall delta (default 0.05)")
    return parser


def _run_diff(args) -> int:
    from .diff import diff_profiles, format_diff
    from .export import load_profile

    paths = list(args.inputs)
    if len(paths) != 2:
        print("error: --diff needs exactly two profile paths "
              "(baseline.json current.json)", file=sys.stderr)
        return 2
    try:
        baseline = load_profile(paths[0])
        current = load_profile(paths[1])
    except (OSError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    report = diff_profiles(baseline, current, min_share=args.min_share)
    print(format_diff(report))
    return 0


def run_profile(argv: list[str]) -> int:
    """The ``pressio profile`` subcommand."""
    args = build_profile_parser().parse_args(argv)
    if args.diff:
        return _run_diff(args)

    from ..core.data import PressioData
    from ..core.library import Pressio
    from ..core.options import PressioOptions
    from ..tools.cli import _load_input, _parse_option_value
    from .export import (format_memory_report, format_sample_report,
                         format_stage_table, write_collapsed, write_profile)
    from .stage import StageProfiler

    if not args.compressor:
        print("error: --compressor is required in capture mode",
              file=sys.stderr)
        return 2
    if args.inputs:
        if len(args.inputs) > 1 or args.input:
            print("error: at most one positional input path",
                  file=sys.stderr)
            return 2
        args.input = args.inputs[0]

    library = Pressio()
    compressor = library.get_compressor(args.compressor)
    if compressor is None:
        print(f"error: {library.error_msg()}", file=sys.stderr)
        return 2
    options = PressioOptions()
    for entry in args.option:
        if "=" not in entry:
            print(f"error: bad --option {entry!r}, expected KEY=VALUE",
                  file=sys.stderr)
            return 2
        key, _, raw = entry.partition("=")
        options.set(key, _parse_option_value(raw))
    if len(options) and compressor.set_options(options) != 0:
        print(f"error: {compressor.error_msg()}", file=sys.stderr)
        return 2

    input_data = _load_input(args, library)
    template = PressioData.empty(input_data.dtype, input_data.dims)
    # warm-up outside the profile so lazy imports / allocator warm-up
    # do not masquerade as stage time
    compressed = compressor.compress(input_data)
    if not args.no_decompress:
        compressor.decompress(compressed, template)

    profiler = StageProfiler(
        name=f"{args.compressor}:"
             f"{args.synthetic or args.input or 'stdin'}",
        track_alloc=not args.no_alloc,
        sample_interval=None if args.no_sample else args.sample_interval,
    )
    with profiler:
        for _ in range(max(1, args.reps)):
            compressed = compressor.compress(input_data)
            if not args.no_decompress:
                compressor.decompress(compressed, template)
    profile = profiler.result(meta={
        "compressor": args.compressor,
        "dataset": args.synthetic or args.input,
        "dims": list(input_data.dims),
        "dtype": input_data.dtype.name,
        "reps": max(1, args.reps),
        "options": args.option,
    }, strict=True)

    print(format_stage_table(profile))
    print()
    print(format_memory_report(profile))
    if not args.no_sample:
        print()
        print(format_sample_report(profile))
    if args.json:
        write_profile(profile, args.json)
        print(f"\nwrote profile to {args.json}")
    if args.flamegraph:
        lines = write_collapsed(profile, args.flamegraph)
        print(f"wrote {lines} collapsed stacks to {args.flamegraph}")
    if args.chrome_trace:
        from ..trace.export import write_chrome_trace

        events = write_chrome_trace(profiler.ctx, args.chrome_trace)
        print(f"wrote {events} chrome trace events to {args.chrome_trace}")
    return 0
