"""Shared-memory handoff: attach/view caching and leak-proof cleanup.

The zero-copy hot path works like this: the client creates a
``multiprocessing.shared_memory`` segment, writes the ndarray into it
once, and sends only a descriptor (name, offset, nbytes) in the wire
header.  The worker attaches the segment and builds an ndarray view
with ``np.frombuffer`` — no payload bytes ever cross the socket and no
copy is made server-side.

Attaching a segment and constructing the view cost ~25µs, which is
real money against the 17.5% overhead budget, so both are cached:

* attach cache — segment name -> open ``SharedMemory`` handle;
* view cache — (name, offset, dtype, dims) -> read-only ndarray view.

Cleanup is the subtle part and drives two quirks handled here:

* CPython's ``resource_tracker`` registers *attached* segments on 3.11+
  and then spuriously warns (and unlinks!) at exit; we unregister right
  after attaching since the creator — the client — owns the lifetime.
* ``SharedMemory.close()`` raises ``BufferError`` while numpy views are
  alive, so :meth:`SegmentCache.close_all` drops the view cache and
  collects garbage before closing, and tolerates stragglers.

Segments the *server* creates (for responses when the client didn't
pre-provide an output segment) are tracked in ``owned`` and unlinked at
shutdown — the fault-injection suite asserts no ``/dev/shm`` residue.
"""

from __future__ import annotations

import gc
import secrets
import threading
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from .errors import BadPayloadError, SegmentUnavailableError
from .wire import ShmRef, element_count

__all__ = ["SegmentCache", "create_segment", "attach_readonly"]


#: Names created by THIS process.  CPython 3.11 registers segments with
#: the resource tracker on attach as well as create; we unregister after
#: attaching (the creator owns the lifetime) — but only for segments
#: created elsewhere, or an in-process client+server pair would strip
#: the creator's registration and its unlink() would double-unregister.
_CREATED_HERE: set[str] = set()


def _untrack(seg: shared_memory.SharedMemory) -> None:
    """Stop resource_tracker from owning a segment we merely attached."""
    # best-effort: the tracker API is private and varies across CPython
    # patch levels; a failed unregister only risks a spurious cleanup
    # warning at interpreter exit, never a leak
    try:
        resource_tracker.unregister(seg._name, "shared_memory")
    # pressio-lint: disable=PC004
    except Exception:  # noqa: BLE001 - tracker internals are best-effort
        pass


def create_segment(nbytes: int,
                   prefix: str = "psv") -> shared_memory.SharedMemory:
    """Create a fresh named segment (creator owns unlink)."""
    name = f"{prefix}_{secrets.token_hex(6)}"
    seg = shared_memory.SharedMemory(name=name, create=True,
                                     size=max(int(nbytes), 1))
    _CREATED_HERE.add(name)
    return seg


def attach_readonly(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting its lifetime."""
    try:
        seg = shared_memory.SharedMemory(name=name, create=False)
    except (FileNotFoundError, PermissionError, ValueError) as exc:
        raise SegmentUnavailableError(
            f"cannot attach shared-memory segment {name!r}: {exc}") from None
    if name not in _CREATED_HERE:
        _untrack(seg)
    return seg


class SegmentCache:
    """Per-daemon cache of attached segments and ndarray views."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._attached: dict[str, shared_memory.SharedMemory] = {}
        self._views: dict[tuple, np.ndarray] = {}
        #: segments this daemon created and must unlink at shutdown
        self.owned: dict[str, shared_memory.SharedMemory] = {}
        self.attaches = 0
        self.view_builds = 0
        self.view_hits = 0

    def segment(self, name: str) -> shared_memory.SharedMemory:
        # GIL-atomic read; the hot path never takes the lock
        seg = self._attached.get(name)
        if seg is not None:
            return seg
        with self._lock:
            owned = self.owned.get(name)
        if owned is not None:
            return owned
        seg = attach_readonly(name)
        with self._lock:
            race = self._attached.setdefault(name, seg)
            if race is not seg:
                seg.close()
                seg = race
            else:
                self.attaches += 1
        return seg

    def view(self, ref: ShmRef, dtype: str,
             dims: tuple[int, ...]) -> np.ndarray:
        """Read-only ndarray view over a segment slice, cached."""
        key = (ref.name, ref.offset, dtype, dims)
        with self._lock:
            cached = self._views.get(key)
            if cached is not None:
                self.view_hits += 1
                return cached
        seg = self.segment(ref.name)
        dt = np.dtype(dtype)
        count = element_count(dims)
        need = count * dt.itemsize
        if need != ref.nbytes:
            raise BadPayloadError(
                f"shm slice is {ref.nbytes} bytes but dtype/dims imply {need}")
        if ref.offset + need > seg.size:
            raise BadPayloadError(
                f"shm slice [{ref.offset}, {ref.offset + need}) exceeds "
                f"segment size {seg.size}")
        arr = np.frombuffer(seg.buf, dtype=dt, count=count,
                            offset=ref.offset)
        arr = arr.reshape(dims if dims else (1,))
        arr.flags.writeable = False
        with self._lock:
            self._views[key] = arr
            self.view_builds += 1
        return arr

    def bytes_view(self, ref: ShmRef) -> memoryview:
        """Raw byte slice of a segment (compressed streams)."""
        seg = self.segment(ref.name)
        if ref.offset + ref.nbytes > seg.size:
            raise BadPayloadError(
                f"shm slice [{ref.offset}, {ref.offset + ref.nbytes}) "
                f"exceeds segment size {seg.size}")
        return seg.buf[ref.offset:ref.offset + ref.nbytes]

    def adopt(self, seg: shared_memory.SharedMemory) -> None:
        """Track a segment this daemon created (unlinked at shutdown)."""
        with self._lock:
            self.owned[seg.name] = seg

    def write_owned(self, payload: bytes | memoryview,
                    prefix: str = "psvout") -> ShmRef:
        """Copy a response payload into a fresh daemon-owned segment."""
        view = memoryview(payload).cast("B")
        seg = create_segment(len(view), prefix=prefix)
        seg.buf[:len(view)] = view
        self.adopt(seg)
        return ShmRef(name=seg.name, nbytes=len(view), offset=0)

    def forget_views(self, name: str) -> None:
        """Drop cached views over one segment (client released it)."""
        with self._lock:
            for key in [k for k in self._views if k[0] == name]:
                del self._views[key]
            seg = self._attached.pop(name, None)
        if seg is not None:
            gc.collect()
            try:
                seg.close()
            except BufferError:
                pass

    def close_all(self) -> None:
        """Release every attached segment and unlink every owned one.

        Views must die before close() or SharedMemory raises
        BufferError ("cannot close exported pointers exist") — hence
        the explicit drop + gc before the close loop.
        """
        with self._lock:
            self._views.clear()
            attached = list(self._attached.values())
            self._attached.clear()
            owned = list(self.owned.values())
            self.owned.clear()
        gc.collect()
        for seg in attached:
            try:
                seg.close()
            except BufferError:
                pass
        for seg in owned:
            try:
                seg.close()
            except BufferError:
                pass
            try:
                seg.unlink()
            except FileNotFoundError:
                pass

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "attaches": self.attaches,
                "view_builds": self.view_builds,
                "view_hits": self.view_hits,
                "attached": len(self._attached),
                "owned": len(self.owned),
            }
