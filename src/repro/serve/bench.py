"""``pressio bench --serve``: served vs in-process overhead comparison.

The paper (Section V(d)) reports a 17.5% overhead for its external
process launch strategy — every request pays a spawn plus two payload
copies.  The daemon's zero-copy shared-memory handoff is supposed to
beat that, and this module proves it with a committed artifact: for
each quick-grid configuration it round-trips the same array both
in-process (plugin called directly) and through a live local daemon,
and reports the served overhead as a percent of the in-process time.

Methodology notes, learned the hard way:

* **Interleaved pairs, paired statistics** — machine noise here is of
  the same order as the effect being measured, so each iteration runs
  one in-process and one served round trip back to back and the
  reported overhead is the *median of the per-pair ratios*.  A slow
  scheduler or thermal epoch hits both halves of its pairs, so it
  cancels out of the ratio instead of biasing whichever side it
  happened to land on.
* **Zero-copy end to end** — the served side writes the dataset into
  the client's shared-memory input segment once (``input_array``) and
  reads results with ``copy=False``; requests and replies then carry
  only descriptors, which is exactly the hot path the overhead claim
  is about.
* **Cache bypass** — the daemon's artifact cache would turn repeat
  requests into lookups and make the comparison meaningless, so every
  served request carries ``cache="bypass"``.
* **Shared memory on** — the client reuses two segments across all
  pairs, so the hot path carries only descriptors over the socket.
  This is the configuration the overhead claim is about; the inline
  path is measured too, as a secondary column, to quantify what the
  shm handoff buys.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from datetime import datetime, timezone
from typing import Any, Callable

from ..obs.bench import (
    BOUND_KEYS,
    QUICK_BOUNDS,
    QUICK_COMPRESSORS,
    QUICK_DATASETS,
    QUICK_DIMS,
    _make_dataset,
    _percentiles,
)

__all__ = [
    "PAPER_BASELINE_PCT",
    "SERVE_SCHEMA",
    "run_serve_compare",
    "write_serve_artifact",
    "format_serve_report",
]

#: Section V(d): spawn + copy overhead of the paper's external strategy.
PAPER_BASELINE_PCT = 17.5

SERVE_SCHEMA = "pressio-serve-bench/1"

DEFAULT_PAIRS = 30


def _local_roundtrip_s(plugin, data, template) -> float:
    t0 = time.perf_counter()
    compressed = plugin.compress(data)
    plugin.decompress(compressed, template)
    return time.perf_counter() - t0


def _served_roundtrip_s(client, arr, compressor, options) -> float:
    t0 = time.perf_counter()
    client.roundtrip(arr, compressor, options, cache="bypass", copy=False)
    return time.perf_counter() - t0


def _paired_overhead_pct(local_s: list[float],
                         served_s: list[float]) -> float:
    """Median of per-pair overhead ratios (drift-cancelling)."""
    ratios = [(s - l) / l for l, s in zip(local_s, served_s) if l > 0]
    return statistics.median(ratios) * 100.0 if ratios else 0.0


def run_serve_compare(compressors: tuple[str, ...] = QUICK_COMPRESSORS,
                      datasets: tuple[str, ...] = QUICK_DATASETS,
                      bounds: tuple[float, ...] = QUICK_BOUNDS,
                      dims: tuple[int, ...] = QUICK_DIMS,
                      pairs: int = DEFAULT_PAIRS,
                      workers: int = 2,
                      measure_inline: bool = True,
                      progress: Callable[[str], None] | None = None,
                      ) -> list[dict[str, Any]]:
    """Interleaved served-vs-in-process comparison; one row per config."""
    from ..core.data import PressioData
    from ..core.library import Pressio
    from .client import ServeClient
    from .daemon import ServeServer

    library = Pressio()
    arrays = {name: _make_dataset(name, dims) for name in datasets}
    rows: list[dict[str, Any]] = []
    with ServeServer(port=0, workers=workers) as server:
        shm_client = ServeClient(port=server.port, use_shm=True,
                                 uds=server.uds_path)
        inline_client = (ServeClient(port=server.port, use_shm=False)
                         if measure_inline else None)
        try:
            for compressor in compressors:
                bound_key = BOUND_KEYS.get(compressor)
                for dataset in datasets:
                    arr = arrays[dataset]
                    value_range = float(arr.max() - arr.min())
                    for rel_bound in bounds:
                        options: dict[str, Any] = {}
                        if bound_key is not None:
                            options[bound_key] = rel_bound * value_range
                        plugin = library.get_compressor(compressor)
                        if plugin is None:
                            raise ValueError(library.error_msg())
                        if options and plugin.set_options(options) != 0:
                            raise ValueError(plugin.error_msg())
                        data = PressioData.from_numpy(arr, copy=False)
                        template = PressioData.empty(data.dtype, data.dims)
                        # write the dataset straight into the client's
                        # input segment: the request then carries only
                        # descriptors — no payload copy on either side
                        shm_arr = shm_client.input_array(arr.shape,
                                                         arr.dtype)
                        shm_arr[:] = arr

                        # untimed warm-ups prime the plugin, the shm
                        # segments, and the server's wrap/view caches
                        _local_roundtrip_s(plugin, data, template)
                        _served_roundtrip_s(shm_client, shm_arr,
                                            compressor, options)
                        if inline_client is not None:
                            _served_roundtrip_s(inline_client, arr,
                                                compressor, options)

                        local_s: list[float] = []
                        served_s: list[float] = []
                        inline_s: list[float] = []
                        for _ in range(pairs):
                            local_s.append(_local_roundtrip_s(
                                plugin, data, template))
                            served_s.append(_served_roundtrip_s(
                                shm_client, shm_arr, compressor, options))
                            if inline_client is not None:
                                inline_s.append(_served_roundtrip_s(
                                    inline_client, arr, compressor,
                                    options))
                        row = {
                            "compressor": compressor,
                            "dataset": dataset,
                            "bound": rel_bound,
                            "dims": list(arr.shape),
                            "pairs": pairs,
                            "local_ms": _percentiles(
                                [s * 1e3 for s in local_s]),
                            "served_shm_ms": _percentiles(
                                [s * 1e3 for s in served_s]),
                            "overhead_pct": _paired_overhead_pct(
                                local_s, served_s),
                        }
                        if inline_s:
                            row["served_inline_ms"] = _percentiles(
                                [s * 1e3 for s in inline_s])
                            row["inline_overhead_pct"] = (
                                _paired_overhead_pct(local_s, inline_s))
                        rows.append(row)
                        if progress is not None:
                            progress(
                                f"{compressor:<8} {dataset:<12} "
                                f"bound={rel_bound:g} "
                                f"local {row['local_ms']['median']:.3f}ms "
                                f"served "
                                f"{row['served_shm_ms']['median']:.3f}ms "
                                f"overhead {row['overhead_pct']:+.1f}%")
        finally:
            shm_client.close()
            if inline_client is not None:
                inline_client.close()
    return rows


def summarize(rows: list[dict[str, Any]],
              baseline_pct: float = PAPER_BASELINE_PCT) -> dict[str, Any]:
    overheads = [row["overhead_pct"] for row in rows]
    worst = max(overheads) if overheads else 0.0
    med = statistics.median(overheads) if overheads else 0.0
    summary: dict[str, Any] = {
        "paper_baseline_pct": baseline_pct,
        "median_overhead_pct": med,
        "worst_overhead_pct": worst,
        "beats_baseline": worst < baseline_pct,
    }
    inline = [row["inline_overhead_pct"] for row in rows
              if "inline_overhead_pct" in row]
    if inline:
        summary["inline_median_overhead_pct"] = statistics.median(inline)
    return summary


def write_serve_artifact(rows: list[dict[str, Any]], output_path: str,
                         baseline_pct: float = PAPER_BASELINE_PCT,
                         timestamp: datetime | None = None) -> str:
    """Write the committed comparison artifact; returns the path."""
    import platform

    from ..profile.export import git_revision

    stamp = timestamp or datetime.now(timezone.utc)
    artifact = {
        "schema": SERVE_SCHEMA,
        "created_at": stamp.isoformat(),
        "host": platform.node(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "git_sha": git_revision(),
        "summary": summarize(rows, baseline_pct),
        "configs": rows,
    }
    parent = os.path.dirname(output_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(output_path, "w") as fh:
        json.dump(artifact, fh, indent=2)
        fh.write("\n")
    return output_path


def format_serve_report(rows: list[dict[str, Any]],
                        baseline_pct: float = PAPER_BASELINE_PCT) -> str:
    summary = summarize(rows, baseline_pct)
    lines = [
        f"served round-trip overhead vs in-process "
        f"(paper external-launch baseline {baseline_pct:.1f}%):",
    ]
    for row in rows:
        inline = row.get("inline_overhead_pct")
        inline_txt = (f"  inline {inline:+7.1f}%"
                      if inline is not None else "")
        lines.append(
            f"  {row['compressor']:<8} {row['dataset']:<12} "
            f"bound={row['bound']:<8g} shm {row['overhead_pct']:+7.1f}%"
            f"{inline_txt}")
    lines.append(
        f"median {summary['median_overhead_pct']:+.1f}%  "
        f"worst {summary['worst_overhead_pct']:+.1f}%  -> "
        + ("BEATS the paper baseline"
           if summary["beats_baseline"]
           else "DOES NOT beat the paper baseline"))
    return "\n".join(lines)


def run_serve_bench(args) -> int:
    """Back end for ``pressio bench --serve`` (args from the bench CLI)."""
    compressors = (tuple(args.compressors.split(","))
                   if args.compressors else QUICK_COMPRESSORS)
    datasets = (tuple(args.datasets.split(","))
                if args.datasets else QUICK_DATASETS)
    bounds = (tuple(float(b) for b in args.bounds.split(","))
              if args.bounds else QUICK_BOUNDS)
    dims = (tuple(int(d) for d in args.dims.split(","))
            if args.dims else QUICK_DIMS)
    pairs = args.reps or DEFAULT_PAIRS
    print(f"serve comparison: {len(compressors)} compressor(s) x "
          f"{len(datasets)} dataset(s) x {len(bounds)} bound(s), "
          f"{pairs} interleaved pairs, dims "
          f"{'x'.join(str(d) for d in dims)}")
    rows = run_serve_compare(compressors, datasets, bounds, dims,
                             pairs=pairs, progress=print)
    path = write_serve_artifact(rows, args.serve_output)
    print(f"wrote {path}")
    print(format_serve_report(rows))
    summary = summarize(rows)
    if args.fail_on_regress and not summary["beats_baseline"]:
        return 1
    return 0
