"""Per-tenant token-bucket quotas and whole-daemon admission control.

Two independent gates stand between a decoded frame and the worker
queue:

* :class:`QuotaManager` — one :class:`TokenBucket` per tenant.  A
  request costs one token; an empty bucket answers 429 with a
  ``Retry-After`` computed from the refill rate, so well-behaved
  clients back off for exactly as long as it takes a token to appear.
* :class:`AdmissionController` — a global in-flight ceiling.  When the
  worker pool is saturated the daemon sheds load with 503 + Retry-After
  instead of queueing unboundedly.

Both are pure and lock-protected so the soak test can hammer them from
many threads and still assert exact counter arithmetic.
"""

from __future__ import annotations

import threading
import time

from .errors import QuotaExceededError, SaturatedError

__all__ = ["TokenBucket", "QuotaManager", "AdmissionController"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, capacity ``burst``."""

    def __init__(self, rate: float, burst: float,
                 clock=time.monotonic) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst <= 0:
            raise ValueError(f"burst must be positive, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now

    def try_acquire(self, cost: float = 1.0) -> float | None:
        """Take ``cost`` tokens; return None on success, else the
        seconds until enough tokens will have accumulated."""
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= cost:
                self._tokens -= cost
                return None
            return (cost - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill(self._clock())
            return self._tokens


class QuotaManager:
    """Lazily creates one bucket per tenant; raises 429 when drained.

    ``rate``/``burst`` are the defaults; per-tenant overrides may be
    supplied up front via ``tenants={"name": (rate, burst)}``.  A
    non-positive default rate disables quota enforcement entirely
    (every tenant always admitted) — the bench path runs that way.
    """

    def __init__(self, rate: float = 0.0, burst: float = 0.0,
                 tenants: dict[str, tuple[float, float]] | None = None,
                 clock=time.monotonic) -> None:
        self.default_rate = float(rate)
        self.default_burst = float(burst)
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._overrides = dict(tenants or {})
        self._lock = threading.Lock()
        self.denied = 0
        self.admitted = 0

    @property
    def enabled(self) -> bool:
        return self.default_rate > 0 or bool(self._overrides)

    def _bucket(self, tenant: str) -> TokenBucket | None:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                if tenant in self._overrides:
                    rate, burst = self._overrides[tenant]
                elif self.default_rate > 0:
                    rate, burst = self.default_rate, self.default_burst
                else:
                    return None
                bucket = TokenBucket(rate, max(burst, 1.0),
                                     clock=self._clock)
                self._buckets[tenant] = bucket
            return bucket

    def admit(self, tenant: str) -> None:
        """Charge one token to ``tenant`` or raise :class:`QuotaExceededError`."""
        if self.default_rate <= 0 and not self._overrides:
            # quotas disabled: count the admit, skip the bucket lookup
            with self._lock:
                self.admitted += 1
            return
        bucket = self._bucket(tenant)
        if bucket is None:
            with self._lock:
                self.admitted += 1
            return
        wait = bucket.try_acquire(1.0)
        with self._lock:
            if wait is None:
                self.admitted += 1
            else:
                self.denied += 1
        if wait is not None:
            raise QuotaExceededError(
                f"tenant {tenant!r} exceeded its request quota",
                retry_after_s=max(wait, 0.001))


class AdmissionController:
    """Caps concurrent in-flight requests; sheds load past the ceiling."""

    def __init__(self, max_inflight: int) -> None:
        if max_inflight <= 0:
            raise ValueError(
                f"max_inflight must be positive, got {max_inflight}")
        self.max_inflight = int(max_inflight)
        self._lock = threading.Lock()
        self._inflight = 0
        self.shed = 0
        self.peak = 0

    def enter(self) -> None:
        """Reserve a slot or raise :class:`SaturatedError`."""
        with self._lock:
            if self._inflight >= self.max_inflight:
                self.shed += 1
                raise SaturatedError(
                    f"server saturated: {self._inflight} requests in flight "
                    f"(limit {self.max_inflight})",
                    retry_after_s=0.05)
            self._inflight += 1
            if self._inflight > self.peak:
                self.peak = self._inflight

    def leave(self) -> None:
        with self._lock:
            if self._inflight <= 0:
                raise RuntimeError("admission leave() without enter()")
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight
