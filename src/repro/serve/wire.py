"""``pressio-serve/1``: the versioned binary wire format.

A frame is::

    +------+------------+----------------+------------------+
    | PSV1 | u32 hlen   | JSON header    | raw payload      |
    | 4 B  | big-endian | hlen bytes     | header["nbytes"] |
    +------+------------+----------------+------------------+

The JSON header carries everything except the array bytes: the wire
version, operation, tenant, compressor id, options, dtype/dims, cache
mode, trace context, and — for zero-copy requests — a shared-memory
descriptor instead of an inline payload.  The payload section is the
raw C-order ndarray bytes (or the compressed stream for decompress);
it is absent (``nbytes == 0``) when the data travels via shared
memory.

Dims use numpy semantics: ``dims == []`` is a 0-d scalar holding one
element (``prod([]) == 1``), and any 0 in dims means an empty array.
The core :class:`~repro.core.data.PressioData` treats ``dims=()`` as
zero elements, so 0-d handling lives here — the server reshapes to
``(1,)`` at the boundary and restores the scalar shape on the way out.

Decode failures raise the typed taxonomy (:class:`BadFrameError`,
:class:`VersionMismatchError`) so truncated or garbage frames surface
as structured 400s, never as tracebacks.
"""

from __future__ import annotations

import json
import math
import struct
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .errors import BadFrameError, VersionMismatchError

__all__ = [
    "WIRE_VERSION",
    "MAGIC",
    "OPS",
    "CACHE_MODES",
    "ShmRef",
    "Request",
    "Response",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "canonical_options",
    "element_count",
]

WIRE_VERSION = "pressio-serve/1"
MAGIC = b"PSV1"
_HLEN = struct.Struct(">I")

#: Operations a frame may request.
OPS = ("compress", "decompress", "roundtrip", "ping")

#: Cache directives: ``use`` consults and fills the artifact cache,
#: ``refresh`` recomputes and overwrites, ``bypass`` ignores it.
CACHE_MODES = ("bypass", "use", "refresh")

#: Largest JSON header accepted before we call the frame garbage.
MAX_HEADER_BYTES = 1 << 20


def element_count(dims: tuple[int, ...]) -> int:
    """Number of elements implied by ``dims`` (numpy semantics: () -> 1)."""
    return int(math.prod(dims))


def canonical_options(options: dict[str, Any] | None) -> str:
    """Deterministic JSON for options — cache keys and compressor reuse."""
    return json.dumps(options or {}, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class ShmRef:
    """A slice of a shared-memory segment standing in for inline bytes."""

    name: str
    nbytes: int
    offset: int = 0

    def to_header(self) -> dict[str, Any]:
        return {"name": self.name, "nbytes": int(self.nbytes),
                "offset": int(self.offset)}

    @classmethod
    def from_header(cls, doc: Any) -> "ShmRef":
        if not isinstance(doc, dict):
            raise BadFrameError("shm descriptor must be an object")
        try:
            name = doc["name"]
            nbytes = int(doc["nbytes"])
            offset = int(doc.get("offset", 0))
        except (KeyError, TypeError, ValueError) as exc:
            raise BadFrameError(f"malformed shm descriptor: {exc}") from None
        if not isinstance(name, str) or not name:
            raise BadFrameError("shm descriptor name must be a string")
        if nbytes < 0 or offset < 0:
            raise BadFrameError("shm descriptor sizes must be non-negative")
        return cls(name=name, nbytes=nbytes, offset=offset)


@dataclass
class Request:
    """One decoded ``pressio-serve/1`` request frame."""

    op: str
    tenant: str = "default"
    compressor: str = ""
    options: dict[str, Any] = field(default_factory=dict)
    dtype: str = "float64"
    dims: tuple[int, ...] = ()
    scalar: bool = False
    payload: bytes | memoryview | None = None
    shm: ShmRef | None = None
    out_shm: ShmRef | None = None
    cache: str = "bypass"
    trace: str | None = None
    fault: str | None = None
    request_id: str | None = None
    #: client opts in to a minimal success reply when the result lands
    #: exactly in the provided ``out_shm`` slice (client already knows
    #: the output descriptor, so the server may omit it and the stats)
    lean: bool = False


@dataclass
class Response:
    """One decoded ``pressio-serve/1`` response frame."""

    ok: bool
    op: str = ""
    error: dict[str, Any] | None = None
    dtype: str = ""
    dims: tuple[int, ...] = ()
    scalar: bool = False
    payload: bytes | memoryview | None = None
    shm: ShmRef | None = None
    stats: dict[str, Any] = field(default_factory=dict)
    fragments: list[dict[str, Any]] = field(default_factory=list)
    #: server-side marker: minimal reply honoring a ``Request.lean``
    #: opt-in — encoded as a constant frame, never put on the wire as
    #: a header field (the shape itself is the signal)
    lean: bool = False


def _payload_view(payload: bytes | memoryview | None) -> memoryview:
    if payload is None:
        return memoryview(b"")
    view = memoryview(payload)
    if view.nbytes == 0:
        # cast() rejects empty shapes; an empty payload is just b""
        return memoryview(b"")
    return view if view.format == "B" and view.ndim == 1 else view.cast("B")


def _frame(header: dict[str, Any],
           payload: bytes | memoryview | None) -> bytes:
    body = _payload_view(payload)
    header = dict(header)
    header["v"] = WIRE_VERSION
    header["nbytes"] = len(body)
    hdr = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return b"".join((MAGIC, _HLEN.pack(len(hdr)), hdr, body))


def _split(buf: bytes | memoryview) -> tuple[dict[str, Any], memoryview]:
    view = memoryview(buf).cast("B")
    if len(view) < 8:
        raise BadFrameError(f"frame too short: {len(view)} bytes")
    if bytes(view[:4]) != MAGIC:
        raise BadFrameError("bad magic: not a pressio-serve frame")
    (hlen,) = _HLEN.unpack(view[4:8])
    if hlen > MAX_HEADER_BYTES:
        raise BadFrameError(f"header length {hlen} exceeds limit")
    if len(view) < 8 + hlen:
        raise BadFrameError("truncated frame: header incomplete")
    try:
        header = json.loads(bytes(view[8:8 + hlen]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadFrameError(f"header is not valid JSON: {exc}") from None
    if not isinstance(header, dict):
        raise BadFrameError("header must be a JSON object")
    version = header.get("v")
    if version != WIRE_VERSION:
        raise VersionMismatchError(
            f"wire version {version!r} not supported (want {WIRE_VERSION})")
    try:
        nbytes = int(header.get("nbytes", 0))
    except (TypeError, ValueError):
        raise BadFrameError("nbytes must be an integer") from None
    if nbytes < 0:
        raise BadFrameError("nbytes must be non-negative")
    payload = view[8 + hlen:]
    if len(payload) != nbytes:
        raise BadFrameError(
            f"truncated frame: payload {len(payload)} bytes, "
            f"header declares {nbytes}")
    return header, payload


def _decode_dims(raw: Any) -> tuple[int, ...]:
    if raw is None:
        return ()
    if not isinstance(raw, (list, tuple)):
        raise BadFrameError("dims must be a list")
    dims = []
    for d in raw:
        if isinstance(d, bool) or not isinstance(d, int) or d < 0:
            raise BadFrameError(f"invalid dimension {d!r}")
        dims.append(d)
    return tuple(dims)


def _decode_dtype(raw: Any) -> str:
    if not isinstance(raw, str):
        raise BadFrameError("dtype must be a string")
    try:
        np.dtype(raw)
    except TypeError as exc:
        raise BadFrameError(f"unknown dtype {raw!r}: {exc}") from None
    return raw


def encode_request(req: Request) -> bytes:
    """Serialize a :class:`Request` into a wire frame."""
    header: dict[str, Any] = {
        "op": req.op,
        "tenant": req.tenant,
        "compressor": req.compressor,
        "options": req.options or {},
        "dtype": req.dtype,
        "dims": list(req.dims),
        "cache": req.cache,
    }
    if req.scalar:
        header["scalar"] = True
    if req.shm is not None:
        header["shm"] = req.shm.to_header()
    if req.out_shm is not None:
        header["out_shm"] = req.out_shm.to_header()
    if req.trace:
        header["trace"] = req.trace
    if req.fault:
        header["fault"] = req.fault
    if req.request_id:
        header["id"] = req.request_id
    if req.lean:
        header["lean"] = True
    return _frame(header, None if req.shm is not None else req.payload)


#: Memo of validated payload-less request frames (shared-memory style).
#: Hot clients resend byte-identical frames — same tenant, options, and
#: segment descriptors — so the parse + validation (~25µs) is paid
#: once.  Only requests whose payload travels out-of-band are cached:
#: an inline payload is a view over the caller's (recycled) read
#: buffer and must never outlive the call.
_REQUEST_MEMO: dict[bytes, Request] = {}
_REQUEST_MEMO_MAX = 256
_REQUEST_MEMO_KEY_MAX = 2048


def decode_request(buf: bytes | memoryview) -> Request:
    """Parse a request frame, raising the typed taxonomy on any defect."""
    if type(buf) is bytes:
        key = buf if 0 < len(buf) <= _REQUEST_MEMO_KEY_MAX else None
    else:
        view = memoryview(buf)
        key = bytes(view) if 0 < len(view) <= _REQUEST_MEMO_KEY_MAX else None
    if key is not None:
        cached = _REQUEST_MEMO.get(key)
        if cached is not None:
            return cached
    req = _decode_request_uncached(buf)
    if (key is not None and req.shm is not None and req.payload is None
            and req.trace is None and req.fault is None):
        if len(_REQUEST_MEMO) >= _REQUEST_MEMO_MAX:
            _REQUEST_MEMO.clear()
        _REQUEST_MEMO[key] = req
    return req


def _decode_request_uncached(buf: bytes | memoryview) -> Request:
    header, payload = _split(buf)
    op = header.get("op")
    if op not in OPS:
        # op is structurally a frame problem here; the daemon re-checks
        # and answers unknown-op for well-formed-but-unsupported values
        raise BadFrameError(f"missing or invalid op {op!r}")
    cache = header.get("cache", "bypass")
    if cache not in CACHE_MODES:
        raise BadFrameError(f"invalid cache mode {cache!r}")
    options = header.get("options") or {}
    if not isinstance(options, dict):
        raise BadFrameError("options must be an object")
    tenant = header.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise BadFrameError("tenant must be a non-empty string")
    shm = ShmRef.from_header(header["shm"]) if "shm" in header else None
    out_shm = (ShmRef.from_header(header["out_shm"])
               if "out_shm" in header else None)
    if shm is not None and len(payload):
        raise BadFrameError("frame carries both shm descriptor and payload")
    return Request(
        op=op,
        tenant=tenant,
        compressor=str(header.get("compressor", "")),
        options=options,
        dtype=_decode_dtype(header.get("dtype", "float64")),
        dims=_decode_dims(header.get("dims")),
        scalar=bool(header.get("scalar", False)),
        payload=payload if shm is None else None,
        shm=shm,
        out_shm=out_shm,
        cache=cache,
        trace=header.get("trace") or None,
        fault=header.get("fault") or None,
        request_id=header.get("id") or None,
        lean=bool(header.get("lean", False)),
    )


def _plain(s: str) -> bool:
    """True when ``s`` needs no JSON string escaping (hot-path guard)."""
    return bool(s) and s.replace("_", "").replace(".", "").replace(
        "-", "").isalnum()


#: Response header templates for the hot success shape, keyed by the
#: structural parts (op, dtype, dims, shm name, stats keys + kinds);
#: per-request numbers are spliced in with bytes %-formatting, which is
#: ~5x cheaper than building a dict and running ``json.dumps``.
_OK_TMPL: dict[tuple, bytes] = {}
_OK_TMPL_MAX = 256


def _build_ok_template(resp: Response) -> bytes | None:
    """Template with %d/%.4f placeholders for one success shape."""
    ref = resp.shm
    if not _plain(resp.op) or (resp.dtype and not _plain(resp.dtype)):
        return None
    if not _plain(ref.name):
        return None
    parts = [f'{{"ok":true,"op":"{resp.op}"']
    if resp.dtype:
        parts.append(f',"dtype":"{resp.dtype}"')
    if resp.dims:
        if len(resp.dims) == 1:
            # 1-D lengths vary per request (compressed sizes): splice
            parts.append(',"dims":[%d]')
        else:
            parts.append(',"dims":[' + ",".join(map(str, resp.dims)) + "]")
    if resp.scalar:
        parts.append(',"scalar":true')
    parts.append(f',"shm":{{"name":"{ref.name}","nbytes":%d,"offset":%d}}')
    if resp.stats:
        items = []
        for k, v in resp.stats.items():
            if not _plain(k):
                return None
            t = type(v)
            if t is int:
                items.append(f'"{k}":%d')
            elif t is float:
                items.append(f'"{k}":%.4f')
            elif t is str and _plain(v):
                items.append(f'"{k}":"{v}"')
            else:
                return None
        parts.append(',"stats":{' + ",".join(items) + "}")
    parts.append(f',"v":"{WIRE_VERSION}","nbytes":0}}')
    return "".join(parts).encode("ascii")


def _fast_ok_frame(resp: Response) -> bytes | None:
    """Hand-rolled encoder for the hot success shape.

    The dominant response on the shm path is ok + shm descriptor + flat
    stats and no payload.  Returns ``None`` for anything unusual
    (errors, fragments, inline payloads, strings that would need
    escaping, non-finite floats) so the general encoder stays the
    source of truth for the format.
    """
    if (not resp.ok or resp.error is not None or resp.fragments
            or resp.payload is not None or resp.shm is None):
        return None
    ref = resp.shm
    stats = resp.stats
    vals: list = [] if len(resp.dims) != 1 else [resp.dims[0]]
    vals.append(int(ref.nbytes))
    vals.append(int(ref.offset))
    kinds: list = []
    if stats:
        for v in stats.values():
            t = type(v)
            if t is str:
                kinds.append(v)
            elif t is int:
                kinds.append("i")
                vals.append(v)
            elif t is float and math.isfinite(v):
                kinds.append("f")
                vals.append(v)
            else:
                return None
    key = (resp.op, resp.dtype, resp.dims if len(resp.dims) != 1 else 1,
           resp.scalar, ref.name, tuple(stats) if stats else (),
           tuple(kinds))
    tmpl = _OK_TMPL.get(key)
    if tmpl is None:
        tmpl = _build_ok_template(resp)
        if tmpl is None:
            return None
        if len(_OK_TMPL) >= _OK_TMPL_MAX:
            _OK_TMPL.clear()
        _OK_TMPL[key] = tmpl
    hdr = tmpl % tuple(vals)
    return b"".join((MAGIC, _HLEN.pack(len(hdr)), hdr))


#: Constant frames for lean success replies, keyed by op.
_LEAN_OK: dict[str, bytes] = {}


def _lean_ok_frame(op: str) -> bytes:
    frame = _LEAN_OK.get(op)
    if frame is None:
        frame = _frame({"ok": True, "op": op}, None)
        if len(_LEAN_OK) < 64:
            _LEAN_OK[op] = frame
    return frame


def encode_response(resp: Response) -> bytes:
    """Serialize a :class:`Response` into a wire frame."""
    if (resp.lean and resp.ok and resp.error is None and resp.shm is None
            and resp.payload is None and not resp.stats
            and not resp.fragments):
        return _lean_ok_frame(resp.op)
    fast = _fast_ok_frame(resp)
    if fast is not None:
        return fast
    header: dict[str, Any] = {"ok": bool(resp.ok), "op": resp.op}
    if resp.error is not None:
        header["error"] = resp.error
    if resp.dtype:
        header["dtype"] = resp.dtype
    if resp.dims:
        header["dims"] = list(resp.dims)
    if resp.scalar:
        header["scalar"] = True
    if resp.shm is not None:
        header["shm"] = resp.shm.to_header()
    if resp.stats:
        header["stats"] = resp.stats
    if resp.fragments:
        header["fragments"] = resp.fragments
    return _frame(header, None if resp.shm is not None else resp.payload)


def decode_response(buf: bytes | memoryview) -> Response:
    """Parse a response frame (client side)."""
    # lean path: a bytes frame straight off the socket skips the
    # memoryview dance and the intermediate decode-to-str copy
    if type(buf) is bytes and len(buf) >= 8 and buf[:4] == MAGIC:
        hlen = int.from_bytes(buf[4:8], "big")
        if hlen <= MAX_HEADER_BYTES and len(buf) >= 8 + hlen:
            try:
                header = json.loads(buf[8:8 + hlen])
            except (UnicodeDecodeError, json.JSONDecodeError):
                header = None
            if (isinstance(header, dict)
                    and header.get("v") == WIRE_VERSION
                    and header.get("nbytes") == len(buf) - 8 - hlen):
                return _response_from(header, memoryview(buf)[8 + hlen:])
    header, payload = _split(buf)
    return _response_from(header, payload)


def _response_from(header: dict[str, Any],
                   payload: memoryview) -> Response:
    error = header.get("error")
    if error is not None and not isinstance(error, dict):
        raise BadFrameError("error must be an object")
    fragments = header.get("fragments") or []
    if not isinstance(fragments, list):
        raise BadFrameError("fragments must be a list")
    shm = ShmRef.from_header(header["shm"]) if "shm" in header else None
    return Response(
        ok=bool(header.get("ok", False)),
        op=str(header.get("op", "")),
        error=error,
        dtype=str(header.get("dtype", "")),
        dims=_decode_dims(header.get("dims")),
        scalar=bool(header.get("scalar", False)),
        payload=payload if shm is None else None,
        shm=shm,
        stats=header.get("stats") or {},
        fragments=fragments,
    )
