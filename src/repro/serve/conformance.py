"""``pressio conformance --serve``: served results must be byte-identical.

The daemon is a transport, not a transform: for every registered
compressor, compressing through a live ``pressio serve`` daemon must
produce the *same bytes* as calling the plugin in-process, and
decompressing a served stream must reproduce the in-process output
exactly.  This battery proves it over both payload paths (inline frames
and shared-memory handoff) for compress, decompress, and roundtrip.

Nondeterministic plugins (those whose two back-to-back in-process runs
on identical input already differ, e.g. seeded injectors configured
with entropy) are detected at runtime and reported as skips — there is
no hand-maintained exclusion list to rot.  Plugins that need mandatory
options to run at all (e.g. ``resize``) are likewise skipped with the
in-process error as the reason: the battery checks transport fidelity,
not plugin contracts (the main conformance matrix owns those).
"""

from __future__ import annotations

import json
import sys
from typing import Any

import numpy as np

__all__ = ["run_serve_conformance", "serve_identity_cells"]

#: One smooth-ish canonical block: small enough to keep the full
#: registry sweep fast, structured enough that lossy plugins exercise
#: their real code paths instead of degenerate all-zero shortcuts.
CANON_DIMS = (8, 8, 8)


def _canonical_array(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    walk = np.cumsum(rng.standard_normal(int(np.prod(CANON_DIMS))))
    return np.ascontiguousarray(
        walk.reshape(CANON_DIMS).astype(np.float32))


def _local_compress(plugin, data) -> bytes:
    result = plugin.compress(data)
    return bytes(result.as_memoryview())


def _local_decompress(plugin, blob: bytes, template_of) -> bytes:
    from ..core.data import PressioData

    stream = PressioData.from_numpy(
        np.frombuffer(blob, dtype=np.uint8), copy=False)
    template = PressioData.empty(template_of.dtype, template_of.dims)
    out = plugin.decompress(stream, template)
    return bytes(out.as_memoryview())


def serve_identity_cells(seed: int,
                         compressors: list[str] | None = None,
                         ) -> list[dict[str, Any]]:
    """One identity-check cell per compressor; returns cell dicts.

    Each cell records ``status`` (``ok`` / ``mismatch`` / ``skip``) and
    per-check booleans for the six served paths: {compress, decompress,
    roundtrip} x {inline, shm}.
    """
    from ..core.data import PressioData
    from ..core.library import Pressio
    from .client import ServeClient
    from .daemon import ServeServer

    library = Pressio()
    ids = compressors or library.supported_compressors()
    arr = _canonical_array(seed)
    cells: list[dict[str, Any]] = []
    with ServeServer(port=0, workers=2) as server:
        inline = ServeClient(port=server.port, use_shm=False)
        shm = ServeClient(port=server.port, use_shm=True,
                          uds=server.uds_path)
        try:
            for cid in ids:
                cells.append(_check_one(
                    library, cid, arr, inline, shm, PressioData))
        finally:
            inline.close()
            shm.close()
    return cells


def _check_one(library, cid: str, arr: np.ndarray, inline, shm,
               PressioData) -> dict[str, Any]:
    cell: dict[str, Any] = {"compressor": cid}
    plugin = library.get_compressor(cid)
    if plugin is None:
        cell.update(status="skip", reason=library.error_msg())
        return cell
    data = PressioData.from_numpy(arr, copy=False)
    try:
        blob = _local_compress(plugin, data)
        rerun = _local_compress(plugin, data)
        local_out = _local_decompress(plugin, blob, data)
    # the battery converts escapes into report cells; counting them in
    # pressio_errors_total would pollute the taxonomy with probes
    # pressio-lint: disable=PC004
    except Exception as exc:  # noqa: BLE001 - probing plugin contracts
        cell.update(status="skip",
                    reason=f"in-process: {type(exc).__name__}: {exc}")
        return cell
    if blob != rerun:
        cell.update(status="skip", reason="nondeterministic compressor")
        return cell
    dtype, dims = str(arr.dtype), arr.shape
    checks: dict[str, bool] = {}
    try:
        for path, client in (("inline", inline), ("shm", shm)):
            served_blob, _ = client.compress(arr, cid)
            checks[f"compress-{path}"] = served_blob == blob
            out, _ = client.decompress(blob, cid, dtype, dims)
            checks[f"decompress-{path}"] = out.tobytes() == local_out
            rt, _ = client.roundtrip(arr, cid)
            checks[f"roundtrip-{path}"] = rt.tobytes() == local_out
    # a served escape IS the finding — it becomes a mismatch cell, and
    # the daemon's own error taxonomy already counted it server-side
    # pressio-lint: disable=PC004
    except Exception as exc:  # noqa: BLE001 - served failure = violation
        cell.update(status="mismatch", checks=checks,
                    reason=f"served: {type(exc).__name__}: {exc}")
        return cell
    cell["checks"] = checks
    cell["status"] = "ok" if all(checks.values()) else "mismatch"
    if cell["status"] == "mismatch":
        cell["reason"] = "served bytes differ from in-process: " + \
            ", ".join(k for k, v in checks.items() if not v)
    return cell


def run_serve_conformance(seed: int, json_path: str | None = None,
                          fmt: str = "text", verbose: bool = False) -> int:
    """CLI back end; prints a report and returns the exit code."""
    cells = serve_identity_cells(seed)
    counts = {"ok": 0, "mismatch": 0, "skip": 0}
    for cell in cells:
        counts[cell["status"]] += 1
    report = {
        "battery": "serve-identity",
        "seed": seed,
        "dims": list(CANON_DIMS),
        "counts": counts,
        "cells": cells,
    }
    payload = json.dumps(report, indent=2)
    if fmt == "json":
        print(payload)
    else:
        print(f"serve identity battery (seed {seed}): "
              f"{counts['ok']} identical, {counts['mismatch']} mismatched, "
              f"{counts['skip']} skipped")
        for cell in cells:
            if cell["status"] == "ok" and not verbose:
                continue
            line = f"  {cell['compressor']:<18} {cell['status']}"
            if cell.get("reason"):
                line += f" — {cell['reason']}"
            stream = sys.stderr if cell["status"] == "mismatch" else sys.stdout
            print(line, file=stream)
    if json_path:
        if json_path == "-":
            if fmt != "json":
                print(payload)
        else:
            with open(json_path, "w") as fh:
                fh.write(payload + "\n")
    return 1 if counts["mismatch"] else 0
