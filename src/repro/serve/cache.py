"""Content-addressed LRU cache of compressed artifacts.

The key is the blake2b fingerprint of the *input bytes* plus the full
compression identity — dtype, dims, compressor id, and canonicalized
options — so two tenants compressing the same block with the same
settings share one cached artifact, while any change to bound or
compressor misses cleanly.

The cache is opt-in per request (``cache: use|refresh|bypass`` in the
wire header) so the bench comparison stays honest: served-vs-in-process
numbers are measured with ``bypass``.

Capacity is bounded in *bytes* of stored compressed artifacts; an
insert evicts least-recently-used entries until the new artifact fits.
Artifacts larger than the whole cache are simply not stored.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

from .wire import canonical_options

__all__ = ["ArtifactCache", "fingerprint"]


def fingerprint(payload: bytes | memoryview) -> str:
    """Stable content address of the raw input bytes."""
    h = hashlib.blake2b(digest_size=16)
    h.update(payload)
    return h.hexdigest()


class ArtifactCache:
    """Thread-safe byte-bounded LRU of compressed artifacts."""

    def __init__(self, capacity_bytes: int = 64 << 20) -> None:
        if capacity_bytes < 0:
            raise ValueError(
                f"capacity_bytes must be non-negative, got {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stores = 0

    @staticmethod
    def key(digest: str, dtype: str, dims: tuple[int, ...],
            compressor: str, options: dict | None) -> str:
        dims_s = ",".join(str(d) for d in dims)
        return "|".join((digest, dtype, dims_s, compressor,
                         canonical_options(options)))

    def get(self, key: str) -> bytes | None:
        with self._lock:
            artifact = self._entries.get(key)
            if artifact is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return artifact

    def put(self, key: str, artifact: bytes | memoryview) -> None:
        artifact = bytes(artifact)
        size = len(artifact)
        if size > self.capacity_bytes:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= len(old)
            while self._bytes + size > self.capacity_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted)
                self.evictions += 1
            self._entries[key] = artifact
            self._bytes += size
            self.stores += 1

    def invalidate(self, key: str) -> None:
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= len(old)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    @property
    def entry_count(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def size_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "stores": self.stores,
                "entries": len(self._entries),
                "bytes": self._bytes,
                "capacity_bytes": self.capacity_bytes,
            }
