"""``ServeClient``: the in-process / CLI client for ``pressio serve``.

A thin raw-socket HTTP/1.1 client (persistent connection,
``TCP_NODELAY``) speaking ``pressio-serve/1`` frames.  Two payload
paths:

* **inline** — array bytes travel in the frame body;
* **shared memory** (``use_shm=True``) — the client owns two reusable
  segments: it writes the input array into one, the server writes the
  result into the other, and the socket carries only descriptors.
  Segments grow on demand and are released server-side
  (``POST /v1/release``) and unlinked client-side on :meth:`close`.

Typed errors come back as the same :class:`~repro.serve.errors`
taxonomy the server raised — :func:`error_for_etype` reconstructs the
class from the wire payload, so ``except QuotaExceededError`` works on
the client exactly as it would in-process.

When a trace context is active the client opens a ``serve:invoke``
span, sends the ``pressio-spanwire/1`` context in the frame, and
stitches the worker's span fragments (returned in-band) under the
invoke span — ``pressio trace`` then renders one tree across the
socket.
"""

from __future__ import annotations

import json
import socket
from typing import Any

import numpy as np

from ..trace import propagate as _propagate
from ..trace import runtime as _trace
from .errors import BadFrameError, ServeError, error_for_etype
from .shm import create_segment
from .wire import (
    MAGIC as WIRE_MAGIC,
    Request,
    Response,
    ShmRef,
    decode_response,
    encode_request,
    element_count,
)

__all__ = ["ServeClient"]


class _Segment:
    """A client-owned, grow-on-demand shared-memory segment."""

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self.seg = None

    def ensure(self, nbytes: int):
        if self.seg is None or self.seg.size < nbytes:
            old_name = self.close()
            self.seg = create_segment(max(nbytes, 1), prefix=self.prefix)
            return old_name
        return None

    def close(self) -> str | None:
        if self.seg is None:
            return None
        name = self.seg.name
        try:
            self.seg.close()
        except BufferError:
            # A copy=False result still aliases the mapping.  The numpy
            # array keeps the mmap alive through its base chain, so
            # disarm this handle (its __del__ would retry close() and
            # warn at gc time) and let the mapping die with the last
            # view or the process.
            self.seg._buf = None
            self.seg._mmap = None
        try:
            self.seg.unlink()
        except FileNotFoundError:
            pass
        self.seg = None
        return name


class ServeClient:
    """One persistent connection to a ``pressio serve`` daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 tenant: str = "default", use_shm: bool = False,
                 timeout: float = 30.0, lean: bool = True,
                 raw: bool = True, uds: str | None = None) -> None:
        self.host = host
        self.port = int(port)
        self.tenant = tenant
        self.use_shm = bool(use_shm)
        #: opt in to minimal server replies on shm roundtrips — the
        #: client knows the output descriptor it provided, so the
        #: server may skip the stats/descriptor echo.  Trade-off:
        #: roundtrip() returns empty stats on the fast path.
        self.lean = bool(lean)
        #: speak bare ``pressio-serve/1`` frames on the fast path
        #: instead of wrapping them in HTTP — the daemon sniffs the
        #: PSV1 magic per message, so both styles share one socket
        self.raw = bool(raw)
        #: AF_UNIX socket path (e.g. ``server.uds_path``); preferred
        #: over TCP when set — the same-host hop is what the zero-copy
        #: design targets, and UDS shaves the TCP stack off each wake
        self.uds = uds
        self.timeout = float(timeout)
        self._sock: socket.socket | None = None
        self._rfile = None
        self._in_seg = _Segment("psvin")
        self._out_seg = _Segment("psvout")
        #: encoded request frames for repeat shm-path calls; keyed by
        #: everything that lands in the header, so a hit is exact
        self._frame_cache: dict[tuple, bytes] = {}
        #: one-slot memo over the full keyed lookup for the steady state
        #: (same config back to back) — avoids rebuilding the wide key
        self._last_fast: tuple | None = None
        #: one-slot memos for the lean reply path: constant response
        #: bytes -> Response, synthesized full Response, result view
        self._resp_memo: tuple[bytes, Response] | None = None
        self._lean_slot: tuple | None = None
        self._view_memo: tuple | None = None
        self._arr_memo: tuple | None = None
        #: (ndarray, segment) from input_array(): requests sending that
        #: exact array skip the input copy — the bytes are already there
        self._seg_array: tuple | None = None
        self.requests_sent = 0

    # -- connection --------------------------------------------------------

    def _connect(self) -> None:
        if self.uds is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            try:
                sock.connect(self.uds)
            except OSError:
                sock.close()
                raise
        else:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._rfile = sock.makefile("rb", buffering=64 * 1024)

    def close(self) -> None:
        for seg in (self._in_seg, self._out_seg):
            name = seg.close()
            if name is not None:
                self._release_quiet(name)
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _release_quiet(self, name: str) -> None:
        """Tell the server a segment is gone; ignore a dead server."""
        try:
            self._http("POST", "/v1/release",
                       json.dumps({"name": name}).encode())
        except (OSError, ServeError, BadFrameError):
            pass

    # -- transport ---------------------------------------------------------

    def _http(self, method: str, path: str,
              body: bytes = b"") -> tuple[int, dict[str, str], bytes]:
        if self._sock is None:
            self._connect()
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}\r\n"
                f"Content-Length: {len(body)}\r\n\r\n").encode("latin-1")
        try:
            self._sock.sendall(head + body)
            return self._read_response()
        except (ConnectionError, BrokenPipeError):
            # server restarted or dropped the connection: one reconnect
            self._teardown_socket()
            self._connect()
            self._sock.sendall(head + body)
            return self._read_response()

    def _teardown_socket(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._rfile = None
        self._sock = None

    def _read_response(self) -> tuple[int, dict[str, str], bytes]:
        line = self._rfile.readline(8192)
        if not line:
            raise ConnectionError("server closed the connection")
        if line == b"HTTP/1.1 200 OK\r\n":
            # hot path: success responses carry no header the client
            # consumes (Retry-After only matters on errors), so skip
            # the per-line decode/strip/lower and the headers dict
            length = 0
            while True:
                raw = self._rfile.readline(8192)
                if raw in (b"\r\n", b"\n", b""):
                    break
                if raw.startswith(b"Content-Length:"):
                    length = int(raw[15:])
            body = self._rfile.read(length) if length else b""
            if len(body) != length:
                raise ConnectionError("truncated response body")
            return 200, {}, body
        parts = line.decode("latin-1").split(None, 2)
        if len(parts) < 2:
            raise BadFrameError(f"malformed status line {line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            raw = self._rfile.readline(8192)
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = self._rfile.read(length) if length else b""
        if len(body) != length:
            raise ConnectionError("truncated response body")
        return status, headers, body

    # -- frame operations --------------------------------------------------

    def _call(self, req: Request) -> Response:
        ctx = _trace.ACTIVE
        if ctx is None:
            return self._call_plain(req)
        with ctx.span(f"serve:{req.op}", compressor=req.compressor,
                      tenant=req.tenant) as sp:
            req.trace = _propagate.serialize_context()
            resp = self._call_plain(req)
            if resp.fragments:
                adopted = _propagate.stitch(ctx, resp.fragments, sp,
                                            same_thread=True)
                sp.set_attr("remote_spans", adopted)
        return resp

    def _call_plain(self, req: Request) -> Response:
        return self._send_frame(req.op, encode_request(req))

    def _send_frame(self, op: str, frame: bytes) -> Response:
        status, headers, body = self._http("POST", f"/v1/{op}", frame)
        return self._check_response(status, headers, body)

    def _send_raw(self, request_bytes: bytes) -> Response:
        """Send a prebuilt request (raw frame or HTTP) in one call."""
        read = self._read_raw_frame if self.raw else self._read_response
        if self._sock is None:
            self._connect()
        try:
            self._sock.sendall(request_bytes)
            status, headers, body = read()
        except (ConnectionError, BrokenPipeError):
            self._teardown_socket()
            self._connect()
            self._sock.sendall(request_bytes)
            status, headers, body = read()
        return self._check_response(status, headers, body)

    def _read_raw_frame(self) -> tuple[int, dict[str, str], bytes]:
        """Read one bare PSV1 response frame off the socket."""
        r = self._rfile
        head = r.read(8)
        if len(head) < 8 or head[:4] != WIRE_MAGIC:
            raise ConnectionError("bad raw frame head")
        hlen = int.from_bytes(head[4:8], "big")
        hdr = r.read(hlen)
        if len(hdr) < hlen:
            raise ConnectionError("truncated raw frame header")
        memo = self._resp_memo
        if memo is not None and len(memo[0]) == 8 + hlen:
            # steady state: lean replies have no payload, so the frame
            # ends here and byte-compares against the response memo
            frame = head + hdr
            if frame == memo[0]:
                return 200, {}, frame
        else:
            frame = head + hdr
        try:
            nbytes = int(json.loads(hdr).get("nbytes", 0))
        except (ValueError, TypeError, json.JSONDecodeError) as exc:
            raise ConnectionError(f"undecodable raw frame: {exc}") from None
        if nbytes:
            payload = r.read(nbytes)
            if len(payload) < nbytes:
                raise ConnectionError("truncated raw frame payload")
            frame += payload
        return 200, {}, frame

    def _check_response(self, status: int, headers: dict[str, str],
                        body: bytes) -> Response:
        memo = self._resp_memo
        if memo is not None and status == 200 and body == memo[0]:
            self.requests_sent += 1
            return memo[1]
        resp = decode_response(body)
        self.requests_sent += 1
        if resp.error is not None:
            retry = resp.error.get("retry_after_s")
            if retry is None and "retry-after" in headers:
                retry = float(headers["retry-after"])
            raise error_for_etype(resp.error.get("etype", "internal"),
                                  str(resp.error.get("message", "")),
                                  retry_after_s=retry)
        if not resp.ok or status != 200:
            raise BadFrameError(
                f"HTTP {status} with no error payload")
        if (resp.shm is None and not resp.fragments
                and len(body) <= 128 and type(body) is bytes):
            # lean replies are byte-constant; remember one decode
            self._resp_memo = (body, resp)
        return resp

    def _fast_frame(self, op: str, compressor: str,
                    options: dict[str, Any] | None, view: memoryview,
                    dtype: str, dims: tuple[int, ...], scalar: bool,
                    cache: str, lean: bool = False,
                    in_place: bool = False) -> bytes | None:
        """Shm-path request with full-message memoization.

        Repeat calls with the same configuration resend byte-identical
        messages, so the Request build, JSON encode, AND the HTTP head
        formatting are all paid once — the cached value is the complete
        ``POST`` request ready for one ``sendall``.  The array bytes
        still land in the input segment on every call.  Returns ``None``
        when an option value is unhashable (fall back to the general
        path).
        """
        if options is None:
            options = {}
        n = len(view)
        last = self._last_fast
        if (last is not None and last[0] == op and last[1] == compressor
                and last[2] == options and last[3] == dtype
                and last[4] == dims and last[5] == scalar
                and last[6] == cache and last[7] == n
                and last[9] is self._in_seg.seg
                and last[10] is self._out_seg.seg):
            if not in_place:
                self._in_seg.seg.buf[:n] = view
            return last[8]
        try:
            opt_token = tuple(sorted(options.items()))
        except TypeError:
            return None
        old = self._in_seg.ensure(n)
        if old is not None:
            self._release_quiet(old)
        seg = self._in_seg.seg
        if not in_place:
            seg.buf[:n] = view
        old = self._out_seg.ensure(max(n * 2, 4096))
        if old is not None:
            self._release_quiet(old)
        out = self._out_seg.seg
        key = (op, compressor, opt_token, dtype, dims, scalar, cache,
               lean, seg.name, n, out.name, out.size)
        request_bytes = self._frame_cache.get(key)
        if request_bytes is None:
            req = Request(op=op, tenant=self.tenant, compressor=compressor,
                          options=dict(options), dtype=dtype,
                          dims=dims, scalar=scalar, cache=cache, lean=lean,
                          shm=ShmRef(name=seg.name, nbytes=n, offset=0),
                          out_shm=ShmRef(name=out.name, nbytes=out.size,
                                         offset=0))
            frame = encode_request(req)
            if self.raw:
                request_bytes = frame
            else:
                head = (f"POST /v1/{op} HTTP/1.1\r\n"
                        f"Host: {self.host}\r\n"
                        f"Content-Length: {len(frame)}\r\n\r\n"
                        ).encode("latin-1")
                request_bytes = head + frame
            if len(self._frame_cache) >= 64:
                self._frame_cache.clear()
            self._frame_cache[key] = request_bytes
        self._last_fast = (op, compressor, dict(options), dtype, dims,
                           scalar, cache, n, request_bytes, seg, out)
        return request_bytes

    def _build_request(self, op: str, compressor: str,
                       options: dict[str, Any] | None,
                       payload: bytes | memoryview, dtype: str,
                       dims: tuple[int, ...], scalar: bool,
                       cache: str, want_out_shm: bool) -> Request:
        req = Request(op=op, tenant=self.tenant, compressor=compressor,
                      options=dict(options or {}), dtype=dtype, dims=dims,
                      scalar=scalar, cache=cache)
        mv = memoryview(payload)
        view = mv.cast("B") if mv.nbytes else memoryview(b"")
        if self.use_shm:
            self._place_input(req, view)
            if want_out_shm:
                self._place_output(req, len(view))
        else:
            req.payload = view
        return req

    def _place_input(self, req: Request, view: memoryview) -> None:
        old = self._in_seg.ensure(len(view))
        if old is not None:
            self._release_quiet(old)
        seg = self._in_seg.seg
        seg.buf[:len(view)] = view
        req.shm = ShmRef(name=seg.name, nbytes=len(view), offset=0)

    def _place_output(self, req: Request, nbytes: int) -> None:
        # results can exceed the input size (incompressible data plus
        # headers); give the server headroom so it never falls back
        old = self._out_seg.ensure(max(nbytes * 2, 4096))
        if old is not None:
            self._release_quiet(old)
        seg = self._out_seg.seg
        req.out_shm = ShmRef(name=seg.name, nbytes=seg.size, offset=0)

    def _result_bytes(self, resp: Response) -> bytes | memoryview:
        if resp.shm is not None:
            if (self._out_seg.seg is None
                    or resp.shm.name != self._out_seg.seg.name):
                raise BadFrameError(
                    f"response references unknown segment {resp.shm.name!r}")
            buf = self._out_seg.seg.buf
            return buf[resp.shm.offset:resp.shm.offset + resp.shm.nbytes]
        return resp.payload if resp.payload is not None else b""

    def _result_array(self, resp: Response, copy: bool = True) -> np.ndarray:
        if resp.shm is not None:
            # repeat calls read the same descriptor over the same out
            # segment; the frombuffer + reshape view is memoized
            key = (resp.shm.name, resp.shm.offset, resp.shm.nbytes,
                   resp.dtype, resp.dims, resp.scalar)
            memo = self._view_memo
            if (memo is not None and memo[0] == key
                    and memo[1] is self._out_seg.seg):
                arr = memo[2]
                return arr.copy() if copy else arr
        raw = self._result_bytes(resp)
        dt = np.dtype(resp.dtype or "float64")
        count = element_count(resp.dims)
        arr = np.frombuffer(raw, dtype=dt, count=count)
        arr = arr.reshape(() if resp.scalar else (resp.dims or (count,)))
        if resp.shm is not None:
            self._view_memo = (key, self._out_seg.seg, arr)
        # shm-backed views alias the reusable out segment; by default
        # copy so the caller's array survives the next request.  With
        # copy=False the caller gets the zero-copy view and must consume
        # it before issuing another request on this client.
        return arr.copy() if copy and resp.shm is not None else arr

    # -- public operations -------------------------------------------------

    def ping(self) -> bool:
        resp = self._call(Request(op="ping", tenant=self.tenant))
        return resp.ok

    def input_array(self, shape: tuple[int, ...],
                    dtype: str | np.dtype) -> np.ndarray:
        """A writable ndarray backed by this client's input segment.

        Fill it in place and pass it to :meth:`compress` /
        :meth:`roundtrip`: the request then skips the client-side copy
        entirely — the bytes the caller wrote ARE the bytes the server
        reads.  Requires ``use_shm``.  The view is invalidated if a
        later request needs a larger input segment.
        """
        if not self.use_shm:
            raise ValueError("input_array requires use_shm=True")
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        old = self._in_seg.ensure(nbytes)
        if old is not None:
            self._release_quiet(old)
        seg = self._in_seg.seg
        arr = np.frombuffer(seg.buf, dtype=dt,
                            count=nbytes // dt.itemsize).reshape(shape)
        self._seg_array = (arr, seg)
        return arr

    def _shm_op(self, op: str, array: np.ndarray, compressor: str,
                options: dict[str, Any] | None,
                cache: str) -> Response | None:
        """Fast path for shm-backed compress/roundtrip; None = fall back."""
        if not self.use_shm or _trace.ACTIVE is not None:
            return None
        am = self._arr_memo
        if am is not None and am[0] is array:
            # same ndarray object: the memoized view reads its memory
            # live, so content changes still reach the wire
            view, dtype, dims, scalar = am[1], am[2], am[3], am[4]
        else:
            scalar = np.ndim(array) == 0
            arr = np.ascontiguousarray(array)  # promotes 0-d to (1,)
            mv = memoryview(arr.data)
            view = mv.cast("B") if mv.nbytes else memoryview(b"")
            dtype = str(arr.dtype)
            dims = () if scalar else arr.shape
            if arr is array:
                # only when no contiguity copy was made — a copy would
                # freeze the bytes and miss later in-place updates
                self._arr_memo = (array, view, dtype, dims, scalar)
        lean = (self.lean and op == "roundtrip" and not scalar
                and view.nbytes > 0)
        sa = self._seg_array
        in_place = (sa is not None and sa[0] is array
                    and sa[1] is self._in_seg.seg)
        request_bytes = self._fast_frame(
            op, compressor, options, view, dtype, dims, scalar, cache,
            lean, in_place)
        if request_bytes is None:
            return None
        resp = self._send_raw(request_bytes)
        if lean and resp.ok and resp.shm is None and not resp.dtype:
            # minimal reply: the result sits in our out segment with
            # the descriptor we provided — synthesize the full response
            n = view.nbytes
            out = self._out_seg.seg
            slot = self._lean_slot
            if (slot is not None and slot[0] is out and slot[1] == dtype
                    and slot[2] == dims and slot[3] == n):
                return slot[4]
            full = Response(ok=True, op=op, dtype=dtype, dims=dims,
                            scalar=scalar,
                            shm=ShmRef(name=out.name, nbytes=n, offset=0))
            self._lean_slot = (out, dtype, dims, n, full)
            return full
        return resp

    def compress(self, array: np.ndarray, compressor: str,
                 options: dict[str, Any] | None = None,
                 cache: str = "bypass") -> tuple[bytes, dict[str, Any]]:
        resp = self._shm_op("compress", array, compressor, options, cache)
        if resp is None:
            scalar = np.ndim(array) == 0
            arr = np.ascontiguousarray(array)  # promotes 0-d to (1,)
            req = self._build_request(
                "compress", compressor, options, arr.data, str(arr.dtype),
                () if scalar else arr.shape, scalar, cache,
                want_out_shm=True)
            resp = self._call(req)
        return bytes(self._result_bytes(resp)), resp.stats

    def decompress(self, blob: bytes, compressor: str, dtype: str,
                   dims: tuple[int, ...], scalar: bool = False,
                   options: dict[str, Any] | None = None,
                   copy: bool = True,
                   ) -> tuple[np.ndarray, dict[str, Any]]:
        itemsize = np.dtype(dtype).itemsize
        req = self._build_request(
            "decompress", compressor, options, blob, dtype, tuple(dims),
            scalar, "bypass", want_out_shm=False)
        if self.use_shm:
            self._place_output(req, element_count(tuple(dims)) * itemsize)
        resp = self._call(req)
        return self._result_array(resp, copy), resp.stats

    def roundtrip(self, array: np.ndarray, compressor: str,
                  options: dict[str, Any] | None = None,
                  cache: str = "bypass", copy: bool = True,
                  ) -> tuple[np.ndarray, dict[str, Any]]:
        resp = self._shm_op("roundtrip", array, compressor, options, cache)
        if resp is None:
            scalar = np.ndim(array) == 0
            arr = np.ascontiguousarray(array)  # promotes 0-d to (1,)
            req = self._build_request(
                "roundtrip", compressor, options, arr.data, str(arr.dtype),
                () if scalar else arr.shape, scalar, cache,
                want_out_shm=True)
            resp = self._call(req)
        return self._result_array(resp, copy), resp.stats

    # -- management endpoints ----------------------------------------------

    def health(self) -> dict[str, Any]:
        _status, _headers, body = self._http("GET", "/healthz")
        return json.loads(body.decode("utf-8"))

    def compressors(self) -> list[str]:
        _status, _headers, body = self._http("GET", "/v1/compressors")
        return list(json.loads(body.decode("utf-8"))["compressors"])

    def metrics_text(self) -> str:
        _status, _headers, body = self._http("GET", "/metrics")
        return body.decode("utf-8")
