"""Compression-as-a-service: the ``pressio serve`` daemon and client.

The paper measures out-of-process dispatch (spawn + copy) at ~17.5%
overhead (Section V(d)); this package serves every registered
compressor to concurrent multi-tenant clients over a persistent
daemon and beats that number by never spawning and never copying on
the hot path:

* :mod:`~repro.serve.daemon` — thread-pool HTTP server
  (``socketserver``-based, stdlib-only) with admission control;
* :mod:`~repro.serve.workers` — the worker pool executing compress /
  decompress / roundtrip with per-plugin thread-safety serialization;
* :mod:`~repro.serve.wire` — the versioned ``pressio-serve/1`` binary
  frame format;
* :mod:`~repro.serve.shm` — zero-copy payload handoff through
  ``multiprocessing.shared_memory`` + ``memoryview`` slices;
* :mod:`~repro.serve.quota` — per-tenant token buckets (429) and
  saturation shedding (503);
* :mod:`~repro.serve.cache` — content-addressed LRU of compressed
  artifacts;
* :mod:`~repro.serve.errors` — the typed error taxonomy both sides
  share;
* :mod:`~repro.serve.client` — the raw-socket client the CLI, bench,
  and conformance subjects drive.

See ``docs/SERVING.md`` for the wire spec, quota semantics, and the
measured overhead comparison.
"""

from .cache import ArtifactCache
from .client import ServeClient
from .daemon import ServeServer, start_serve_server
from .errors import (
    BadFrameError,
    BadPayloadError,
    CompressionRejectedError,
    CorruptPayloadError,
    InternalServeError,
    OptionRejectedError,
    PayloadTooLargeError,
    QuotaExceededError,
    SaturatedError,
    SegmentUnavailableError,
    ServeError,
    UnknownCompressorError,
    UnknownOpError,
    VersionMismatchError,
    WorkerCrashedError,
    error_for_etype,
    map_exception,
)
from .quota import AdmissionController, QuotaManager, TokenBucket
from .shm import SegmentCache
from .wire import (
    CACHE_MODES,
    MAGIC,
    OPS,
    WIRE_VERSION,
    Request,
    Response,
    ShmRef,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from .workers import WorkerPool

__all__ = [
    "WIRE_VERSION", "MAGIC", "OPS", "CACHE_MODES",
    "Request", "Response", "ShmRef",
    "encode_request", "decode_request",
    "encode_response", "decode_response",
    "ServeServer", "start_serve_server", "ServeClient",
    "WorkerPool", "SegmentCache", "ArtifactCache",
    "QuotaManager", "TokenBucket", "AdmissionController",
    "ServeError", "BadFrameError", "VersionMismatchError",
    "UnknownOpError", "UnknownCompressorError", "OptionRejectedError",
    "BadPayloadError", "PayloadTooLargeError", "SegmentUnavailableError",
    "QuotaExceededError", "SaturatedError", "WorkerCrashedError",
    "CompressionRejectedError", "CorruptPayloadError",
    "InternalServeError", "map_exception", "error_for_etype",
]
