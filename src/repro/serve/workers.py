"""The serve worker pool: where requests become compress calls.

Execution is two-tier, bounded either way by a semaphore holding
``workers`` permits so compute parallelism never exceeds the
configured width:

* **inline fast path** — the connection handler thread runs the
  operation itself when a permit is free.  This skips two
  cross-thread wakeups (submit -> worker, worker -> reply), each of
  which costs a GIL handoff — ~100µs+ round trip on small requests,
  which alone would blow the 17.5% overhead budget.
* **queue path** — when permits are exhausted (or the request carries
  a fault-injection directive, whose crash semantics must land on a
  real worker thread) the item is enqueued on one ``SimpleQueue`` and
  one of N worker threads answers on the item's private reply queue.

The pool owns the three caches that keep the per-request hot path
under the 17.5% budget:

* **compressor cache** (per executing thread, via
  ``threading.local``): (compressor id, canonical options) ->
  configured instance, so ``get_compressor`` + ``set_options`` are
  paid once per (thread, config), not per request;
* **wrap cache** (pool-wide): a shared-memory input slice ->
  :class:`PressioData` view, so repeat requests over the same segment
  skip ``np.frombuffer`` + wrapping entirely (~25µs);
* the segment/view caches inside :class:`~repro.serve.shm.SegmentCache`.

Thread-safety honors the plugins' own declarations: a compressor whose
configuration says ``pressio:thread_safe == single`` (sz) is serialized
across workers through one per-plugin-id lock; ``serialized`` and
``multithreaded`` plugins run on per-worker instances without
coordination.

Trace propagation: a request carrying a ``pressio-spanwire/1`` context
runs under :func:`repro.trace.propagate.begin_child` and returns its
span fragments in-band in the response frame; because the tracer's
``ACTIVE`` slot is process-global (and an in-process test client may
have its own context installed), traced requests serialize on one lock
and save/restore the previous global.

Fault injection (``fault`` field in the frame) is honored only when
the pool is constructed with ``allow_fault_injection=True`` — the
fault-injection tests use it to kill a worker mid-request and watch
the 503, the flight-recorder bundle, and the respawn.
"""

from __future__ import annotations

import queue
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from ..core.data import PressioData
from ..core.domain import NonOwningDomain
from ..core.dtype import DType, dtype_from_numpy
from ..obs import flight as _flight
from ..obs import runtime as _obs
from ..trace import propagate as _propagate
from ..trace import runtime as _trace
from .cache import ArtifactCache, fingerprint
from .errors import (
    BadPayloadError,
    OptionRejectedError,
    UnknownCompressorError,
    UnknownOpError,
    WorkerCrashedError,
    map_exception,
)
from .shm import SegmentCache
from .wire import Request, Response, ShmRef, canonical_options, element_count

__all__ = ["WorkItem", "WorkerPool"]


@dataclass
class WorkItem:
    """One admitted request plus its private reply channel.

    ``reply`` is ``None`` on the inline fast path, where the executing
    thread returns the Response directly instead of queueing it.
    """

    req: Request
    reply: "queue.SimpleQueue[Response] | None"
    enqueue_ns: int = field(default_factory=time.perf_counter_ns)


class _InducedCrash(Exception):
    """Raised by fault injection to kill the worker thread."""


def _as_bytes_view(payload) -> memoryview:
    view = memoryview(payload)
    if view.nbytes == 0:
        # cast() rejects empty shapes; an empty payload is just b""
        return memoryview(b"")
    return view if view.format == "B" and view.ndim == 1 else view.cast("B")


_NONOWNING = NonOwningDomain()  # stateless; shared across streams

#: Shared minimal reply for lean roundtrips.  Read-only by contract:
#: _handle skips the stats stamps on lean responses and the daemon
#: only reads fields, so one instance can answer every lean request.
_LEAN_ROUNDTRIP_OK = Response(ok=True, op="roundtrip", lean=True)


def _byte_stream(mv: memoryview) -> PressioData:
    """Wrap a compressed byte stream zero-copy.

    Direct construction: ``from_bytes`` would copy a memoryview to
    preserve value semantics and ``nonowning`` re-derives dtype/dims
    the long way — both too slow for the per-request hot path.
    """
    arr = np.frombuffer(mv, dtype=np.uint8)
    return PressioData(DType.UINT8, (arr.size,), arr, _NONOWNING)


class WorkerPool:
    """N daemon threads executing serve requests off one queue."""

    def __init__(self, library, segments: SegmentCache,
                 cache: ArtifactCache | None = None, workers: int = 4,
                 allow_fault_injection: bool = False) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self._library = library
        self.segments = segments
        self.cache = cache
        self.allow_fault_injection = bool(allow_fault_injection)
        self._queue: "queue.SimpleQueue[WorkItem | None]" = queue.SimpleQueue()
        #: caps concurrent executions (inline + worker) at ``workers``
        self._slots = threading.Semaphore(workers)
        self._tls = threading.local()
        self._lock = threading.Lock()
        self._trace_lock = threading.Lock()
        self._wrap_lock = threading.Lock()
        self._wraps: dict[tuple, PressioData] = {}
        self._descrs: dict[tuple, PressioData] = {}
        self._plugin_locks: dict[str, threading.Lock] = {}
        self._threads: list[threading.Thread] = []
        self._stopping = False
        self.completed = 0
        self.failed = 0
        self.crashes = 0
        self.respawns = 0
        for i in range(workers):
            self._threads.append(self._spawn(i))

    # -- lifecycle ---------------------------------------------------------

    def _spawn(self, index: int) -> threading.Thread:
        t = threading.Thread(target=self._run, name=f"serve-worker-{index}",
                             daemon=True)
        t.start()
        return t

    def ensure_alive(self) -> None:
        """Respawn any worker thread that died (induced crash)."""
        with self._lock:
            if self._stopping:
                return
            for i, t in enumerate(self._threads):
                if not t.is_alive():
                    self._threads[i] = self._spawn(i)
                    self.respawns += 1

    def submit(self, item: WorkItem) -> None:
        self.ensure_alive()
        self._queue.put(item)

    def shutdown(self, timeout: float = 5.0) -> None:
        with self._lock:
            self._stopping = True
            threads = list(self._threads)
        for _ in threads:
            self._queue.put(None)
        deadline = time.monotonic() + timeout
        for t in threads:
            t.join(max(deadline - time.monotonic(), 0.05))
        with self._wrap_lock:
            self._wraps.clear()

    def alive_count(self) -> int:
        with self._lock:
            return sum(1 for t in self._threads if t.is_alive())

    def forget_segment(self, name: str) -> None:
        """Drop cached wraps/views for a segment the client released."""
        with self._wrap_lock:
            for key in [k for k in self._wraps if k[0] == name]:
                del self._wraps[key]
        self.segments.forget_views(name)

    # -- execution entry points --------------------------------------------

    def _comp_cache(self) -> dict:
        cache = getattr(self._tls, "comp_cache", None)
        if cache is None:
            cache = self._tls.comp_cache = {}
        return cache

    def execute(self, req: Request) -> Response | None:
        """Inline fast path: run ``req`` on the calling thread.

        Returns ``None`` when every concurrency permit is busy (caller
        should fall back to :meth:`submit`) and refuses fault-carrying
        requests outright — an induced crash must kill a real worker
        thread, not the connection handler.
        """
        if req.fault and self.allow_fault_injection:
            return None
        if not self._slots.acquire(blocking=False):
            return None
        try:
            if req.lean and req.trace is None and not req.fault:
                # lean shortcut: the WorkItem/_handle layers only carry
                # queue timing and trace state, neither of which a lean
                # reply reports — skip straight to execution
                try:
                    resp = self._execute(req, self._comp_cache())
                except BaseException as exc:  # noqa: BLE001 - wire boundary
                    err = map_exception(exc)
                    _obs.record_error("serve", req.compressor or "-", exc,
                                      tenant=req.tenant, etype=err.etype)
                    with self._lock:
                        self.failed += 1
                    return Response(ok=False, op=req.op,
                                    error=err.to_payload())
                with self._lock:
                    self.completed += 1
                return resp
            start_ns = time.perf_counter_ns()
            item = WorkItem(req=req, reply=None, enqueue_ns=start_ns)
            return self._process(item, start_ns)
        finally:
            self._slots.release()

    def _process(self, item: WorkItem, start_ns: int) -> Response:
        """Run one item to a Response; counts and maps every failure."""
        try:
            resp = self._handle(item, self._comp_cache(), start_ns)
        except _InducedCrash:
            raise  # queue path only; execute() never admits faults
        except BaseException as exc:  # noqa: BLE001 - wire boundary
            err = map_exception(exc)
            _obs.record_error("serve", item.req.compressor or "-", exc,
                              tenant=item.req.tenant, etype=err.etype)
            with self._lock:
                self.failed += 1
            return Response(ok=False, op=item.req.op,
                            error=err.to_payload())
        with self._lock:
            self.completed += 1
        return resp

    # -- worker main loop --------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            self._slots.acquire()
            try:
                resp = self._process(item, time.perf_counter_ns())
            except _InducedCrash as crash:
                self._report_crash(item, crash)
                self._replace_self()
                return  # the thread dies; its replacement is running
            finally:
                self._slots.release()
            item.reply.put(resp)

    def _replace_self(self) -> None:
        """Called by a dying worker: spawn its own replacement now,
        so pool capacity recovers even if nothing is ever submitted
        again (the inline fast path never calls ensure_alive)."""
        me = threading.current_thread()
        with self._lock:
            if self._stopping:
                return
            for i, t in enumerate(self._threads):
                if t is me:
                    self._threads[i] = self._spawn(i)
                    self.respawns += 1
                    return

    def _report_crash(self, item: WorkItem, crash: _InducedCrash) -> None:
        err = WorkerCrashedError(
            "worker died mid-request; retry on a fresh worker",
            retry_after_s=0.05)
        with self._lock:
            self.crashes += 1
            self.failed += 1
        rec = _flight.ACTIVE
        if rec is not None:
            rec.record_error("serve", item.req.compressor or "-", crash,
                             {"tenant": item.req.tenant, "op": item.req.op})
            rec.dump("serve-worker-crash", exc=crash)
        _obs.count("pressio_serve_worker_crashes_total",
                   "serve workers killed mid-request",
                   tenant=item.req.tenant)
        item.reply.put(Response(ok=False, op=item.req.op,
                                error=err.to_payload()))

    # -- request execution -------------------------------------------------

    def _handle(self, item: WorkItem, comp_cache: dict,
                start_ns: int) -> Response:
        req = item.req
        if req.fault and self.allow_fault_injection:
            if req.fault == "crash-worker":
                raise _InducedCrash("induced by fault field")
            if req.fault == "exception":
                raise RuntimeError("induced unhandled exception")
        remote = _propagate.extract(req.trace) if req.trace else None
        if remote is not None and remote.sampled:
            resp = self._execute_traced(req, comp_cache, remote)
        else:
            resp = self._execute(req, comp_cache)
        if not resp.lean:
            resp.stats["queue_us"] = (start_ns - item.enqueue_ns) // 1000
            resp.stats["worker_us"] = (
                time.perf_counter_ns() - start_ns) // 1000
        return resp

    def _execute_traced(self, req: Request, comp_cache: dict,
                        remote) -> Response:
        # The tracer's ACTIVE slot is process-global; serialize traced
        # requests and restore whatever context the (possibly
        # in-process) client had installed.
        with self._trace_lock:
            prev = _trace.ACTIVE
            ctx = _propagate.begin_child(remote, name="serve-worker")
            fragments: list[dict] = []
            try:
                if ctx is not None:
                    with ctx.span(f"serve:{req.op}", tenant=req.tenant,
                                  compressor=req.compressor):
                        resp = self._execute(req, comp_cache)
                else:
                    resp = self._execute(req, comp_cache)
            finally:
                if ctx is not None:
                    fragments = _propagate.collect_fragments(ctx)
                _trace.disable_tracing()
                if prev is not None:
                    _trace.enable_tracing(prev)
        resp.fragments = fragments
        return resp

    def _execute(self, req: Request, comp_cache: dict) -> Response:
        if req.op == "ping":
            return Response(ok=True, op="ping")
        comp, guard = self._compressor(req, comp_cache)
        if req.op == "compress":
            return self._op_compress(req, comp, guard)
        if req.op == "decompress":
            return self._op_decompress(req, comp, guard)
        if req.op == "roundtrip":
            return self._op_roundtrip(req, comp, guard)
        raise UnknownOpError(f"unsupported operation {req.op!r}")

    def _compressor(self, req: Request, comp_cache: dict):
        # one-slot memo: repeat requests for the same configuration skip
        # the canonical-options JSON key build (worth ~15µs per request)
        last = comp_cache.get("__last__")
        if (last is not None and last[0] == req.compressor
                and last[1] == req.options):
            return last[2], last[3]
        key = (req.compressor, canonical_options(req.options))
        hit = comp_cache.get(key)
        if hit is None:
            comp = self._library.get_compressor(req.compressor)
            if comp is None:
                raise UnknownCompressorError(
                    f"no compressor {req.compressor!r}: "
                    f"{self._library.error_msg()}")
            if req.options:
                rc = comp.set_options(req.options)
                if rc != 0:
                    raise OptionRejectedError(
                        f"compressor {req.compressor!r} rejected options: "
                        f"{comp.status.msg}")
            guard = None
            if comp.is_shared_instance():
                with self._lock:
                    guard = self._plugin_locks.setdefault(
                        req.compressor, threading.Lock())
            comp_cache[key] = hit = (comp, guard)
        comp_cache["__last__"] = (req.compressor, dict(req.options),
                                  hit[0], hit[1])
        return hit

    def _input_data(self, req: Request) -> tuple[PressioData, memoryview]:
        """The request's ndarray as (PressioData, raw bytes) — zero-copy."""
        if req.shm is not None:
            key = (req.shm.name, req.shm.offset, req.dtype, req.dims)
            # GIL-atomic read; only writers take the lock.  The cached
            # pair was fully validated at insert, so a hit skips the
            # dtype/shape checks entirely.
            hit = self._wraps.get(key)
            if hit is not None:
                return hit
            dt = np.dtype(req.dtype)
            dtype_from_numpy(dt)  # reject dtypes the core cannot name
            arr = self.segments.view(req.shm, req.dtype, req.dims)
            data = PressioData.from_numpy(arr, copy=False)
            hit = (data, data.as_memoryview())
            with self._wrap_lock:
                self._wraps[key] = hit
            return hit
        dt = np.dtype(req.dtype)
        dtype_from_numpy(dt)  # reject dtypes the core cannot name
        shape = req.dims if req.dims else (1,)
        count = element_count(req.dims)
        payload = _as_bytes_view(req.payload or b"")
        need = count * dt.itemsize
        if len(payload) != need:
            raise BadPayloadError(
                f"payload is {len(payload)} bytes but dtype/dims imply "
                f"{need}")
        arr = np.frombuffer(payload, dtype=dt, count=count).reshape(shape)
        return PressioData.from_numpy(arr, copy=False), payload

    def _stream_data(self, req: Request) -> PressioData:
        """The request's compressed byte stream, zero-copy."""
        if req.shm is not None:
            mv = self.segments.bytes_view(req.shm)
        else:
            mv = _as_bytes_view(req.payload or b"")
        return _byte_stream(mv)

    def _deliver(self, req: Request, resp: Response,
                 blob: memoryview) -> Response:
        """Attach a result to the response: out-segment copy or inline."""
        if req.out_shm is not None:
            seg = self.segments.segment(req.out_shm.name)
            off = req.out_shm.offset
            if off + len(blob) <= seg.size:
                seg.buf[off:off + len(blob)] = blob
                resp.shm = ShmRef(name=req.out_shm.name, nbytes=len(blob),
                                  offset=off)
                return resp
            # the result outgrew the client's segment (strongly
            # expanding compressor); deliver inline rather than fail —
            # the client handles payload responses on every path
        resp.payload = blob
        return resp

    def _compress_blob(self, req: Request, comp, guard) -> tuple[
            memoryview, dict, PressioData | None]:
        """Compress (or serve from cache); returns (bytes, stats, data).

        The third element is the compressor's own result
        :class:`PressioData` when a real compression ran — roundtrip
        feeds it straight back into decompress, skipping a re-wrap of
        the byte stream.  It is ``None`` on artifact-cache hits.
        """
        data, raw = self._input_data(req)
        if req.lean and (self.cache is None or req.cache == "bypass"):
            # lean replies drop stats anyway; skip assembling them
            with guard if guard is not None else nullcontext():
                result = comp.compress(data)
            return _as_bytes_view(result.as_memoryview()), {}, result
        stats: dict = {"input_bytes": len(raw)}
        cache_key = None
        if self.cache is not None and req.cache != "bypass":
            cache_key = ArtifactCache.key(
                fingerprint(raw), req.dtype, req.dims, req.compressor,
                req.options)
            if req.cache == "use":
                artifact = self.cache.get(cache_key)
                if artifact is not None:
                    stats["cache"] = "hit"
                    stats["compressed_bytes"] = len(artifact)
                    _obs.count("pressio_serve_cache_events_total",
                               "artifact cache hits/misses/stores",
                               event="hit", tenant=req.tenant)
                    return memoryview(artifact), stats, None
            stats["cache"] = "miss"
            _obs.count("pressio_serve_cache_events_total",
                       "artifact cache hits/misses/stores",
                       event="miss", tenant=req.tenant)
        with guard if guard is not None else nullcontext():
            result = comp.compress(data)
        blob = _as_bytes_view(result.as_memoryview())
        stats["compressed_bytes"] = len(blob)
        if len(blob):
            stats["ratio"] = round(len(raw) / len(blob), 4)
        if cache_key is not None:
            self.cache.put(cache_key, blob)
            _obs.count("pressio_serve_cache_events_total",
                       "artifact cache hits/misses/stores",
                       event="store", tenant=req.tenant)
        return blob, stats, result

    def _op_compress(self, req: Request, comp, guard) -> Response:
        blob, stats, _result = self._compress_blob(req, comp, guard)
        resp = Response(ok=True, op="compress", dtype="uint8",
                        dims=(len(blob),), stats=stats)
        return self._deliver(req, resp, blob)

    def _decompress_blob(self, req: Request, comp, guard,
                         stream: PressioData,
                         ) -> tuple[memoryview, tuple[int, ...]]:
        # output descriptors are shape-only (plugins return fresh data,
        # never write into them), so one per (dtype, dims) is shared
        key = (req.dtype, req.dims)
        out_descr = self._descrs.get(key)
        if out_descr is None:
            dt = np.dtype(req.dtype)
            out_descr = PressioData.empty(
                dtype_from_numpy(dt), req.dims if req.dims else (1,))
            if len(self._descrs) >= 1024:
                self._descrs.clear()
            self._descrs[key] = out_descr
        with guard if guard is not None else nullcontext():
            result = comp.decompress(stream, out_descr)
        blob = _as_bytes_view(result.as_memoryview())
        dims = req.dims
        expect = element_count(dims) * np.dtype(req.dtype).itemsize
        if len(blob) != expect:
            # plugins may return a different shape than requested
            # (subsampling, resizing): report what was actually produced
            dims = tuple(result.dims)
        return blob, dims

    def _op_decompress(self, req: Request, comp, guard) -> Response:
        stream = self._stream_data(req)
        blob, dims = self._decompress_blob(req, comp, guard, stream)
        resp = Response(ok=True, op="decompress", dtype=req.dtype,
                        dims=dims, scalar=req.scalar,
                        stats={"output_bytes": len(blob)})
        return self._deliver(req, resp, blob)

    def _op_roundtrip(self, req: Request, comp, guard) -> Response:
        blob, stats, result = self._compress_blob(req, comp, guard)
        stream = result if result is not None else _byte_stream(blob)
        out, out_dims = self._decompress_blob(req, comp, guard, stream)
        if req.lean and req.out_shm is not None and req.trace is None:
            # lean opt-in: the client provided the output slice and
            # already knows its descriptor (roundtrip output == input
            # shape), so a constant minimal reply suffices — but only
            # when the result is byte-exact for that descriptor
            expected = (req.shm.nbytes if req.shm is not None else
                        element_count(req.dims) * np.dtype(req.dtype).itemsize)
            seg = self.segments.segment(req.out_shm.name)
            off = req.out_shm.offset
            if len(out) == expected and off + len(out) <= seg.size:
                seg.buf[off:off + len(out)] = out
                return _LEAN_ROUNDTRIP_OK
        stats["output_bytes"] = len(out)
        resp = Response(ok=True, op="roundtrip", dtype=req.dtype,
                        dims=out_dims, scalar=req.scalar, stats=stats)
        return self._deliver(req, resp, out)
