"""The serve-layer error taxonomy: typed, HTTP-mapped, wire-encodable.

Every failure a client can observe has exactly one :class:`ServeError`
subclass, and each subclass pins three things at the class level:

* ``etype`` — the stable taxonomy slug carried in the wire response and
  in the ``pressio_serve_requests_total{status=...}`` metric label;
* ``http_status`` — the HTTP status line the daemon answers with;
* ``retryable`` — whether the client should retry (429/503 responses
  also carry ``Retry-After``, both as an HTTP header and in the frame).

Exceptions raised by the compression core (:mod:`repro.core.status`)
are folded into this taxonomy by :func:`map_exception`, so the client
sees one error vocabulary regardless of which layer failed.
"""

from __future__ import annotations

from typing import Any

from ..core.status import (
    CorruptStreamError,
    InvalidDimensionsError,
    InvalidOptionError,
    InvalidTypeError,
    MissingOptionError,
    PressioError,
    UnsupportedPluginError,
)

__all__ = [
    "ServeError",
    "BadFrameError",
    "VersionMismatchError",
    "UnknownOpError",
    "UnknownCompressorError",
    "OptionRejectedError",
    "BadPayloadError",
    "PayloadTooLargeError",
    "SegmentUnavailableError",
    "QuotaExceededError",
    "SaturatedError",
    "WorkerCrashedError",
    "CompressionRejectedError",
    "CorruptPayloadError",
    "InternalServeError",
    "map_exception",
    "error_for_etype",
]


class ServeError(Exception):
    """Base class: a request failed in a way the wire format can name."""

    etype = "internal"
    http_status = 500
    retryable = False

    def __init__(self, message: str,
                 retry_after_s: float | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.retry_after_s = retry_after_s

    def to_payload(self) -> dict[str, Any]:
        """The ``error`` object embedded in a wire response header."""
        payload: dict[str, Any] = {
            "etype": self.etype,
            "http": self.http_status,
            "retryable": self.retryable,
            "message": self.message,
        }
        if self.retry_after_s is not None:
            payload["retry_after_s"] = round(float(self.retry_after_s), 3)
        return payload


class BadFrameError(ServeError):
    """The request bytes are not a parseable ``pressio-serve/1`` frame."""

    etype = "bad-frame"
    http_status = 400


class VersionMismatchError(ServeError):
    """The frame parsed but declares an incompatible wire version."""

    etype = "version-mismatch"
    http_status = 400


class UnknownOpError(ServeError):
    """The frame names an operation the daemon does not implement."""

    etype = "unknown-op"
    http_status = 400


class UnknownCompressorError(ServeError):
    """The requested compressor id is not in the registry."""

    etype = "unknown-compressor"
    http_status = 404


class OptionRejectedError(ServeError):
    """The compressor rejected the request's options."""

    etype = "bad-option"
    http_status = 400


class BadPayloadError(ServeError):
    """dtype/dims/payload-length are inconsistent or unusable."""

    etype = "bad-payload"
    http_status = 400


class PayloadTooLargeError(ServeError):
    """The payload exceeds the daemon's configured maximum."""

    etype = "payload-too-large"
    http_status = 413


class SegmentUnavailableError(ServeError):
    """A referenced shared-memory segment cannot be attached."""

    etype = "shm-unavailable"
    http_status = 400


class QuotaExceededError(ServeError):
    """The tenant's token bucket is empty (per-tenant rate limit)."""

    etype = "quota-exceeded"
    http_status = 429
    retryable = True


class SaturatedError(ServeError):
    """Admission control refused: too many requests in flight."""

    etype = "saturated"
    http_status = 503
    retryable = True


class WorkerCrashedError(ServeError):
    """The worker servicing the request died mid-request."""

    etype = "worker-crashed"
    http_status = 503
    retryable = True


class CompressionRejectedError(ServeError):
    """The compressor refused the data (bound/type/dims contract)."""

    etype = "compression-failed"
    http_status = 422


class CorruptPayloadError(ServeError):
    """A compressed payload failed to decode server-side."""

    etype = "corrupt-stream"
    http_status = 422


class InternalServeError(ServeError):
    """Unclassified server-side failure (counted, flight-recorded)."""

    etype = "internal"
    http_status = 500
    retryable = True


#: Core exception class -> serve taxonomy class, most specific first.
_CORE_MAP: tuple[tuple[type, type[ServeError]], ...] = (
    (UnsupportedPluginError, UnknownCompressorError),
    (CorruptStreamError, CorruptPayloadError),
    (InvalidOptionError, OptionRejectedError),
    (MissingOptionError, OptionRejectedError),
    (InvalidTypeError, BadPayloadError),
    (InvalidDimensionsError, BadPayloadError),
)


def map_exception(exc: BaseException) -> ServeError:
    """Fold any exception into the serve taxonomy.

    :class:`ServeError` passes through; core typed errors map to their
    client-facing counterparts; the generic :class:`PressioError` means
    the compressor rejected the data; everything else is internal.
    """
    if isinstance(exc, ServeError):
        return exc
    for core_cls, serve_cls in _CORE_MAP:
        if isinstance(exc, core_cls):
            return serve_cls(str(exc))
    if isinstance(exc, PressioError):
        return CompressionRejectedError(str(exc))
    return InternalServeError(f"{type(exc).__name__}: {exc}")


_BY_ETYPE = {
    cls.etype: cls
    for cls in (
        BadFrameError, VersionMismatchError, UnknownOpError,
        UnknownCompressorError, OptionRejectedError, BadPayloadError,
        PayloadTooLargeError, SegmentUnavailableError, QuotaExceededError,
        SaturatedError, WorkerCrashedError, CompressionRejectedError,
        CorruptPayloadError, InternalServeError,
    )
}


def error_for_etype(etype: str, message: str,
                    retry_after_s: float | None = None) -> ServeError:
    """Reconstruct a typed error from a wire ``error`` payload (client side)."""
    cls = _BY_ETYPE.get(str(etype), InternalServeError)
    return cls(message, retry_after_s=retry_after_s)
