"""The ``pressio serve`` and ``pressio client`` subcommands.

``pressio serve`` runs the compression daemon in the foreground::

    pressio serve --port 9870 --workers 8 \\
        --quota-rate 200 --quota-burst 50 \\
        --tenant-quota gold=1000:200

``pressio client`` drives a running daemon for scripted load::

    pressio client --port 9870 roundtrip --compressor sz \\
        --option pressio:abs=1e-4 --synthetic nyx --dims 24,24,24 \\
        --repeat 100 --shm

Both share the repo-wide CLI conventions: repeatable ``--option
KEY=VALUE`` with int/float inference, ``--synthetic``/``--dims`` data
selection, and the ``--auto-port`` port-0 fallback shared with
``serve-metrics``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

__all__ = ["build_serve_parser", "build_client_parser",
           "run_serve", "run_client"]


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pressio serve",
        description="serve compress/decompress/roundtrip for every "
                    "registered compressor over pressio-serve/1",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=9870,
                        help="bind port; 0 picks a free one (default 9870)")
    parser.add_argument("--auto-port", action="store_true",
                        help="if the requested port is taken, fall back "
                             "to an OS-assigned one and print it")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker threads executing operations")
    parser.add_argument("--max-inflight", type=int, default=64,
                        help="admission-control ceiling; past it requests "
                             "are shed with 503 + Retry-After")
    parser.add_argument("--quota-rate", type=float, default=0.0,
                        help="default per-tenant requests/second "
                             "(0 disables quotas)")
    parser.add_argument("--quota-burst", type=float, default=0.0,
                        help="default per-tenant burst size")
    parser.add_argument("--tenant-quota", action="append", default=[],
                        metavar="TENANT=RATE:BURST",
                        help="per-tenant quota override (repeatable)")
    parser.add_argument("--cache-bytes", type=int, default=64 << 20,
                        help="artifact cache capacity in bytes "
                             "(0 disables the cache)")
    parser.add_argument("--max-payload", type=int, default=256 << 20,
                        help="largest accepted payload in bytes")
    parser.add_argument("--duration", type=float, default=None,
                        help="serve for N seconds then exit "
                             "(default: until interrupted)")
    parser.add_argument("--no-metrics", action="store_true",
                        help="do not enable the obs metrics registry")
    parser.add_argument("--allow-fault-injection", action="store_true",
                        help="honor the frame 'fault' field (testing only)")
    parser.add_argument("--json-logs", action="store_true",
                        help="emit structured JSON logs on stderr")
    return parser


def _parse_tenant_quotas(specs: list[str]) -> dict[str, tuple[float, float]]:
    quotas: dict[str, tuple[float, float]] = {}
    for spec in specs:
        try:
            tenant, _, rhs = spec.partition("=")
            rate_s, _, burst_s = rhs.partition(":")
            quotas[tenant] = (float(rate_s), float(burst_s or rate_s))
        except ValueError:
            raise SystemExit(
                f"bad --tenant-quota {spec!r}; want TENANT=RATE:BURST"
            ) from None
    return quotas


def run_serve(argv: list[str]) -> int:
    """The ``pressio serve`` subcommand."""
    from .. import obs
    from .daemon import ServeServer
    from .quota import QuotaManager

    args = build_serve_parser().parse_args(argv)
    if args.json_logs:
        obs.configure_logging()
    if not args.no_metrics:
        obs.enable_metrics()
    quota = QuotaManager(rate=args.quota_rate, burst=args.quota_burst,
                         tenants=_parse_tenant_quotas(args.tenant_quota))
    server = ServeServer(
        host=args.host, port=args.port, auto_port=args.auto_port,
        workers=args.workers, max_inflight=args.max_inflight,
        quota=quota, cache_bytes=args.cache_bytes,
        max_payload=args.max_payload,
        allow_fault_injection=args.allow_fault_injection)
    try:
        server.start()
    except obs.PortInUseError as e:
        print(f"error: {e} (retry with --auto-port to pick a free one)",
              file=sys.stderr)
        return 1
    if args.auto_port and args.port not in (0, server.port):
        print(f"port {args.port} in use; bound port {server.port} instead")
    print(f"pressio serve on {server.url} "
          f"({args.workers} workers, max {args.max_inflight} in flight)")
    deadline = (time.monotonic() + args.duration
                if args.duration is not None else None)
    try:
        while deadline is None or time.monotonic() < deadline:
            time.sleep(min(1.0, (deadline - time.monotonic())
                           if deadline is not None else 1.0) or 0.01)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def build_client_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pressio client",
        description="drive a running pressio serve daemon",
    )
    parser.add_argument("op", choices=("compress", "roundtrip", "ping",
                                       "health", "compressors"),
                        help="operation to run")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True,
                        help="daemon port")
    parser.add_argument("--tenant", default="default",
                        help="tenant id for quota/metric attribution")
    parser.add_argument("--compressor", "-z", default=None,
                        help="compressor plugin id")
    parser.add_argument("--option", "-o", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="set a compressor option (repeatable)")
    parser.add_argument("--synthetic", default="nyx",
                        help="synthetic dataset id (default nyx)")
    parser.add_argument("--dims", "-d", default="24,24,24",
                        help="comma-separated dims (default 24,24,24)")
    parser.add_argument("--input", "-i", default=None,
                        help="read a .npy file instead of --synthetic")
    parser.add_argument("--shm", action="store_true",
                        help="hand payloads through shared memory "
                             "(zero-copy) instead of inline frames")
    parser.add_argument("--cache", choices=("bypass", "use", "refresh"),
                        default="bypass", help="artifact-cache directive")
    parser.add_argument("--repeat", type=int, default=1,
                        help="run the operation N times (scripted load)")
    parser.add_argument("--json", action="store_true",
                        help="print one JSON object per request")
    return parser


def _client_array(args) -> np.ndarray:
    if args.input:
        return np.load(args.input)
    from ..datasets import DATASET_GENERATORS

    gen = DATASET_GENERATORS.get(args.synthetic)
    if gen is None:
        raise SystemExit(f"unknown synthetic dataset {args.synthetic!r}; "
                         f"known: {sorted(DATASET_GENERATORS)}")
    dims = tuple(int(d) for d in args.dims.split(","))
    return np.asarray(gen(dims) if args.synthetic != "hacc" else gen())


def run_client(argv: list[str]) -> int:
    """The ``pressio client`` subcommand."""
    from ..tools.cli import _parse_option_value
    from .client import ServeClient
    from .errors import ServeError

    args = build_client_parser().parse_args(argv)
    options = {}
    for raw in args.option:
        key, _, value = raw.partition("=")
        options[key] = _parse_option_value(value)
    client = ServeClient(host=args.host, port=args.port,
                         tenant=args.tenant, use_shm=args.shm)
    try:
        if args.op == "ping":
            print(json.dumps({"ok": client.ping()}))
            return 0
        if args.op == "health":
            print(json.dumps(client.health(), indent=2))
            return 0
        if args.op == "compressors":
            print("\n".join(client.compressors()))
            return 0
        if not args.compressor:
            print("error: --compressor is required for this op",
                  file=sys.stderr)
            return 2
        array = _client_array(args)
        failures = 0
        durations = []
        for i in range(max(args.repeat, 1)):
            start = time.perf_counter()
            try:
                if args.op == "compress":
                    _, stats = client.compress(array, args.compressor,
                                               options, cache=args.cache)
                else:
                    _, stats = client.roundtrip(array, args.compressor,
                                                options, cache=args.cache)
            except ServeError as e:
                failures += 1
                stats = {"error": e.etype, "message": e.message}
                if e.retry_after_s:
                    time.sleep(e.retry_after_s)
            elapsed_ms = (time.perf_counter() - start) * 1e3
            durations.append(elapsed_ms)
            if args.json:
                print(json.dumps({"i": i, "elapsed_ms": round(elapsed_ms, 3),
                                  **stats}))
        durations.sort()
        median = durations[len(durations) // 2]
        print(f"{args.op} x{args.repeat}: median {median:.3f} ms, "
              f"{failures} failures")
        return 0 if failures == 0 else 1
    except ConnectionError as e:
        print(f"error: cannot reach {args.host}:{args.port}: {e}",
              file=sys.stderr)
        return 1
    finally:
        client.close()
