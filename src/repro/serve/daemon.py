"""The ``pressio serve`` daemon: multi-tenant compression over HTTP.

Transport is deliberately lean.  ``http.server``'s request handler
costs milliseconds per request once Nagle's algorithm meets delayed
ACKs, so the daemon speaks a hand-rolled HTTP/1.1 subset directly on
``socketserver.ThreadingTCPServer``: ``TCP_NODELAY`` both ways,
keep-alive connections, ``Content-Length`` framing only.  Measured on
the 24³ bench configs this keeps transport + queue hop near 20µs —
the margin that lets the served round trip beat the paper's 17.5%
out-of-process overhead (Section V(d), ``docs/SERVING.md``).

Request lifecycle per connection thread::

    parse HTTP -> read body (pooled buffer) -> decode frame
      -> quota.admit(tenant)           # 429 + Retry-After
      -> admission.enter()             # 503 + Retry-After
      -> WorkItem on the worker queue  # workers.py executes
      <- reply queue -> encode frame -> write HTTP response

Endpoints:

* ``POST /v1/compress`` / ``/v1/decompress`` / ``/v1/roundtrip`` —
  one ``pressio-serve/1`` frame in, one frame out;
* ``POST /v1/release`` — the client is done with a shared-memory
  segment; drop cached views so it can be unlinked;
* ``GET /v1/compressors`` — registry listing (JSON);
* ``GET /healthz`` — liveness + worker/queue stats (JSON);
* ``GET /metrics`` — the active obs registry in Prometheus text.

Every request lands in the ``pressio_serve_*`` metric families with a
``tenant`` label; the body read buffer comes from the native buffer
pool and is released on every exit path.
"""

from __future__ import annotations

import json
import os
import queue
import socket
import socketserver
import threading
import time

import numpy as np

from ..core.library import Pressio
from ..native import pool as _pool
from ..obs import prometheus as _prom
from ..obs import runtime as _obs
from ..obs.server import bind_with_fallback
from .cache import ArtifactCache
from .errors import (
    BadFrameError,
    InternalServeError,
    PayloadTooLargeError,
    ServeError,
    map_exception,
)
from .quota import AdmissionController, QuotaManager
from .shm import SegmentCache
from .wire import (
    MAGIC,
    MAX_HEADER_BYTES,
    WIRE_VERSION,
    Response,
    decode_request,
    encode_response,
)
from .workers import WorkerPool, WorkItem

__all__ = ["ServeServer", "start_serve_server"]

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            422: "Unprocessable Entity", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}

CONTENT_TYPE = "application/x-pressio-serve"

#: Request-duration buckets sized for microsecond-scale round trips.
_SERVE_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
                  0.01, 0.025, 0.05, 0.1, 0.25, 1.0, 5.0)

_FRAME_OPS = {"/v1/compress": "compress", "/v1/decompress": "decompress",
              "/v1/roundtrip": "roundtrip", "/v1/ping": "ping"}


class _ServeTCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    request_queue_size = 128
    owner: "ServeServer" = None  # type: ignore[assignment]


class _ServeUnixServer(socketserver.ThreadingUnixStreamServer):
    """Same-host listener: a loopback hop over AF_UNIX costs less
    than TCP (no protocol stack traversal), which matters when the
    whole overhead budget is ~150µs."""

    daemon_threads = True
    allow_reuse_address = True
    request_queue_size = 128
    owner: "ServeServer" = None  # type: ignore[assignment]


class _Handler(socketserver.StreamRequestHandler):
    """Keep-alive HTTP/1.1 loop, one thread per connection."""

    disable_nagle_algorithm = True
    rbufsize = 64 * 1024
    wbufsize = 0

    def handle(self) -> None:
        server: ServeServer = self.server.owner
        while not server.stopping:
            try:
                if not self._handle_one(server):
                    return
            except (ConnectionError, BrokenPipeError, OSError):
                return

    #: one-slot (header bytes -> nbytes) memo for the raw-frame loop;
    #: steady-state clients resend byte-identical headers
    _hdr_memo: tuple[bytes, int] | None = None

    def _handle_one(self, server: "ServeServer") -> bool:
        # raw pressio-serve/1 framing shares the listener with HTTP:
        # sniff the frame magic without consuming (our client sends
        # each message in one segment, so 4+ bytes are buffered)
        if self.rfile.peek(4)[:4] == MAGIC:
            return self._handle_raw(server)
        line = self.rfile.readline(8192)
        if not line:
            return False
        try:
            method, path, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            self._respond(400, b"malformed request line\n",
                          content_type="text/plain")
            return False
        length = 0
        keep_alive = True
        while True:
            raw = self.rfile.readline(8192)
            if raw in (b"\r\n", b"\n", b""):
                break
            # exact-case fast path first: our own client always sends
            # "Content-Length:"/"Host:", so the general (decode + strip
            # + lower) parse only runs for foreign clients
            if raw.startswith(b"Content-Length:"):
                try:
                    length = int(raw[15:])
                except ValueError:
                    self._respond(400, b"bad content-length\n",
                                  content_type="text/plain")
                    return False
            elif raw.startswith(b"Host:"):
                continue
            else:
                name, _, value = raw.decode("latin-1").partition(":")
                name = name.strip().lower()
                value = value.strip()
                if name == "content-length":
                    try:
                        length = int(value)
                    except ValueError:
                        self._respond(400, b"bad content-length\n",
                                      content_type="text/plain")
                        return False
                elif name == "connection" and value.lower() == "close":
                    keep_alive = False
        if length > server.max_payload:
            # drain would be unbounded; answer and drop the connection
            err = PayloadTooLargeError(
                f"payload {length} bytes exceeds limit "
                f"{server.max_payload}")
            frame = encode_response(Response(
                ok=False, op="", error=err.to_payload()))
            self._respond(err.http_status, frame)
            return False
        body: bytes | memoryview = b""
        pooled = None
        if 0 < length <= 16384:
            # tiny bodies (shm-descriptor frames) skip the pool: the
            # acquire/release pair costs more than the read itself.
            # Kept as bytes so the decode memo can key on it directly.
            data = self.rfile.read(length)
            if len(data) != length:
                return False
            body = data
        elif length:
            pooled = _pool.acquire((length,), np.uint8)
        try:
            if pooled is not None:
                body = memoryview(pooled)[:length]
                read = 0
                while read < length:
                    n = self.rfile.readinto(body[read:])
                    if not n:
                        return False
                    read += n
            status, headers, out = server.handle_http(method, path, body)
            self._respond(status, out, extra=headers)
        finally:
            if pooled is not None:
                del body  # the pooled buffer goes back; drop our view
                _pool.release(pooled)
        return keep_alive

    def _handle_raw(self, server: "ServeServer") -> bool:
        """One bare PSV1 frame in, one frame out (no HTTP envelope).

        Frame boundaries come from the header's ``nbytes`` field; if
        the header cannot be parsed the boundary is unknown and the
        connection is dropped rather than desynced.
        """
        r = self.rfile
        head = r.read(8)
        if len(head) < 8:
            return False
        hlen = int.from_bytes(head[4:8], "big")
        if hlen > MAX_HEADER_BYTES:
            return False
        hdr = r.read(hlen)
        if len(hdr) < hlen:
            return False
        memo = self._hdr_memo
        if memo is not None and hdr == memo[0]:
            nbytes = memo[1]
        else:
            try:
                nbytes = int(json.loads(hdr).get("nbytes", 0))
            except (ValueError, TypeError, json.JSONDecodeError):
                return False
            if nbytes < 0 or nbytes > server.max_payload:
                return False
            self._hdr_memo = (hdr, nbytes)
        if nbytes:
            payload = r.read(nbytes)
            if len(payload) < nbytes:
                return False
            frame = head + hdr + payload
        else:
            frame = head + hdr
        _status, _headers, out = server.handle_raw_frame(frame)
        self.wfile.write(out)
        return not server.stopping

    def _respond(self, status: int, body: bytes,
                 extra: dict[str, str] | None = None,
                 content_type: str = CONTENT_TYPE) -> None:
        if status == 200 and not extra and content_type is CONTENT_TYPE:
            self.wfile.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/x-pressio-serve\r\n"
                b"Content-Length: %d\r\n\r\n" % len(body) + body)
            return
        head = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(body)}"]
        for key, value in (extra or {}).items():
            head.append(f"{key}: {value}")
        head.append("\r\n")
        self.wfile.write("\r\n".join(head).encode("latin-1") + body)


class _UnixHandler(_Handler):
    # setting TCP_NODELAY on an AF_UNIX socket raises; there is no
    # Nagle to disable there in the first place
    disable_nagle_algorithm = False


class ServeServer:
    """Owns the listening socket, worker pool, caches, and quotas."""

    def __init__(self, library: Pressio | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 workers: int = 4, max_inflight: int = 64,
                 quota: QuotaManager | None = None,
                 cache_bytes: int = 64 << 20,
                 max_payload: int = 256 << 20,
                 allow_fault_injection: bool = False,
                 auto_port: bool = False,
                 unix_socket: bool = True) -> None:
        self.library = library if library is not None else Pressio()
        self._host = host
        self._requested_port = port
        self._auto_port = auto_port
        self.max_payload = int(max_payload)
        self.quota = quota if quota is not None else QuotaManager()
        self.admission = AdmissionController(max_inflight)
        self.segments = SegmentCache()
        self.cache = ArtifactCache(cache_bytes) if cache_bytes else None
        self.pool = WorkerPool(
            self.library, self.segments, self.cache, workers=workers,
            allow_fault_injection=allow_fault_injection)
        self.stopping = False
        self.started_at = 0.0
        self.request_timeout = 60.0
        self._tcp: _ServeTCPServer | None = None
        self._thread: threading.Thread | None = None
        self._want_uds = bool(unix_socket)
        self._uds: _ServeUnixServer | None = None
        self._uds_thread: threading.Thread | None = None
        #: filesystem path of the AF_UNIX listener (None if disabled
        #: or the platform refused it); same protocol as the TCP port
        self.uds_path: str | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ServeServer":
        if self._tcp is not None:
            raise RuntimeError("server already started")

        def bind(host: str, port: int) -> _ServeTCPServer:
            return _ServeTCPServer((host, port), _Handler)

        self._tcp = bind_with_fallback(
            bind, self._host, self._requested_port,
            auto_port=self._auto_port, surface="serve")
        self._tcp.owner = self
        self.started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, kwargs={"poll_interval": 0.05},
            name="pressio-serve", daemon=True)
        self._thread.start()
        if self._want_uds:
            self._start_uds()
        return self

    def _start_uds(self) -> None:
        import tempfile
        path = os.path.join(
            tempfile.gettempdir(),
            f"pressio-serve-{os.getpid()}-{self.port}.sock")
        try:
            if os.path.exists(path):
                os.unlink(path)
            self._uds = _ServeUnixServer(path, _UnixHandler)
        except OSError:
            self._uds = None  # no AF_UNIX here; TCP still serves
            return
        self._uds.owner = self
        self.uds_path = path
        self._uds_thread = threading.Thread(
            target=self._uds.serve_forever, kwargs={"poll_interval": 0.05},
            name="pressio-serve-uds", daemon=True)
        self._uds_thread.start()

    def stop(self) -> None:
        if self._tcp is None:
            return
        self.stopping = True
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        if self._uds is not None:
            self._uds.shutdown()
            self._uds.server_close()
            if self._uds_thread is not None:
                self._uds_thread.join(timeout=5)
            if self.uds_path is not None:
                try:
                    os.unlink(self.uds_path)
                except FileNotFoundError:
                    pass
            self._uds = None
            self._uds_thread = None
            self.uds_path = None
        self.pool.shutdown()
        self.segments.close_all()
        self._tcp = None
        self._thread = None

    def __enter__(self) -> "ServeServer":
        return self.start() if self._tcp is None else self

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def port(self) -> int:
        if self._tcp is None:
            raise RuntimeError("server not started")
        return self._tcp.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    # -- dispatch ----------------------------------------------------------

    def handle_http(self, method: str, path: str, body: memoryview,
                    ) -> tuple[int, dict[str, str], bytes]:
        if "?" in path:
            path = path.split("?", 1)[0]
        if path in _FRAME_OPS:
            if method != "POST":
                return 405, {}, b"use POST\n"
            return self._handle_frame(path, body)
        if path == "/v1/release":
            if method != "POST":
                return 405, {}, b"use POST\n"
            return self._handle_release(body)
        if path == "/v1/compressors":
            doc = {"version": WIRE_VERSION,
                   "compressors": self.library.supported_compressors()}
            return 200, {}, json.dumps(doc).encode() + b"\n"
        if path in ("/healthz", "/health"):
            return 200, {}, self._health_body()
        if path == "/metrics":
            reg = _obs.ACTIVE
            if reg is None:
                return 200, {}, b"# metrics collection is disabled\n"
            return 200, {}, _prom.render(reg).encode("utf-8")
        return 404, {}, b"not found\n"

    def _handle_frame(self, path: str,
                      body: memoryview) -> tuple[int, dict[str, str], bytes]:
        start_ns = time.perf_counter_ns()
        tenant, op = "unknown", _FRAME_OPS[path]
        entered = False
        try:
            req = decode_request(body)
            tenant = req.tenant
            if req.op != op:
                raise BadFrameError(
                    f"frame op {req.op!r} does not match endpoint {path}")
            self.quota.admit(tenant)
            self.admission.enter()
            entered = True
            self._set_inflight_gauge()
            resp = self._dispatch(req)
        except Exception as exc:  # noqa: BLE001 - wire boundary
            err = map_exception(exc)
            if isinstance(err, InternalServeError):
                _obs.record_error("serve", "daemon", exc, tenant=tenant)
            resp = Response(ok=False, op=op, error=err.to_payload())
        finally:
            if entered:
                self.admission.leave()
                self._set_inflight_gauge()
        return self._finish(resp, tenant, op, start_ns, len(body))

    def handle_raw_frame(self, frame: bytes,
                         ) -> tuple[int, dict[str, str], bytes]:
        """One bare-framed request: same lifecycle, no HTTP endpoint.

        The op comes from the frame itself (raw framing has no path to
        cross-check); everything else — quota, admission, dispatch,
        metrics — matches :meth:`_handle_frame`.
        """
        start_ns = time.perf_counter_ns()
        tenant, op = "unknown", "raw"
        entered = False
        try:
            req = decode_request(frame)
            tenant, op = req.tenant, req.op
            self.quota.admit(tenant)
            self.admission.enter()
            entered = True
            self._set_inflight_gauge()
            resp = self._dispatch(req)
        except Exception as exc:  # noqa: BLE001 - wire boundary
            err = map_exception(exc)
            if isinstance(err, InternalServeError):
                _obs.record_error("serve", "daemon", exc, tenant=tenant)
            resp = Response(ok=False, op=op, error=err.to_payload())
        finally:
            if entered:
                self.admission.leave()
                self._set_inflight_gauge()
        return self._finish(resp, tenant, op, start_ns, len(frame))

    def _dispatch(self, req) -> Response:
        # fast path: run on this thread when a permit is free —
        # skips two cross-thread wakeups on the latency floor
        resp = self.pool.execute(req)
        if resp is None:
            reply: "queue.SimpleQueue[Response]" = queue.SimpleQueue()
            self.pool.submit(WorkItem(req=req, reply=reply))
            try:
                resp = reply.get(timeout=self.request_timeout)
            except queue.Empty:
                raise InternalServeError(
                    f"no worker reply within {self.request_timeout}s"
                    ) from None
        return resp

    def _finish(self, resp: Response, tenant: str, op: str,
                start_ns: int, in_bytes: int,
                ) -> tuple[int, dict[str, str], bytes]:
        if resp.error is None:
            status, outcome, headers = 200, "ok", {}
        else:
            status = int(resp.error.get("http", 500))
            outcome = str(resp.error.get("etype", "internal"))
            headers = {}
            retry = resp.error.get("retry_after_s")
            if retry is not None:
                headers["Retry-After"] = f"{max(float(retry), 0.001):.3f}"
        out = encode_response(resp)
        if _obs.ACTIVE is not None:
            elapsed = (time.perf_counter_ns() - start_ns) / 1e9
            _obs.count("pressio_serve_requests_total",
                       "serve requests by tenant/op/outcome",
                       tenant=tenant, op=op, status=outcome)
            _obs.observe("pressio_serve_request_seconds",
                         elapsed, "serve request wall time",
                         buckets=_SERVE_BUCKETS, tenant=tenant, op=op)
            _obs.count("pressio_serve_payload_bytes_total",
                       "frame bytes in/out by tenant", float(in_bytes),
                       tenant=tenant, direction="in")
            _obs.count("pressio_serve_payload_bytes_total",
                       "frame bytes in/out by tenant", float(len(out)),
                       tenant=tenant, direction="out")
        return status, headers, out

    def _handle_release(self, body: memoryview,
                        ) -> tuple[int, dict[str, str], bytes]:
        try:
            doc = json.loads(bytes(body).decode("utf-8"))
            name = doc["name"]
        except (ValueError, KeyError, UnicodeDecodeError):
            return 400, {}, b'{"error": "body must be {\\"name\\": ...}"}\n'
        self.pool.forget_segment(str(name))
        return 200, {}, b'{"released": true}\n'

    def _set_inflight_gauge(self) -> None:
        if _obs.ACTIVE is not None:
            _obs.set_gauge("pressio_serve_inflight",
                           float(self.admission.inflight),
                           "serve requests currently in flight")

    def _health_body(self) -> bytes:
        payload = {
            "status": "ok",
            "version": WIRE_VERSION,
            "uds": self.uds_path,
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "workers": self.pool.alive_count(),
            "inflight": self.admission.inflight,
            "peak_inflight": self.admission.peak,
            "shed": self.admission.shed,
            "quota": {"admitted": self.quota.admitted,
                      "denied": self.quota.denied,
                      "enabled": self.quota.enabled},
            "completed": self.pool.completed,
            "failed": self.pool.failed,
            "crashes": self.pool.crashes,
            "respawns": self.pool.respawns,
            "cache": self.cache.stats() if self.cache else None,
            "segments": self.segments.stats(),
        }
        return json.dumps(payload).encode("utf-8") + b"\n"


def start_serve_server(**kwargs) -> ServeServer:
    """Construct and start a :class:`ServeServer` in one call."""
    return ServeServer(**kwargs).start()
