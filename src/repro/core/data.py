"""``PressioData``: the typed, dimensioned buffer abstraction.

This is the direct analog of ``pressio_data`` from Section IV-A of the
paper: a pointer plus an array of dimensions, a dtype enum, and a deleter.
Construction mirrors the C API:

* :meth:`PressioData.empty` — dtype+dims, no allocation performed yet
  (used to describe the *expected* shape of a decompression output);
* :meth:`PressioData.owning` — dtype+dims, zero-initialized allocation;
* :meth:`PressioData.from_numpy` — copy or wrap an ndarray;
* :meth:`PressioData.move` — adopt an ndarray plus a deleter callback
  (the ``pressio_data_new_move`` analog);
* :meth:`PressioData.nonowning` — shallow view, never freed by us.

Dimensions are stored in **C (row-major) order, slowest first** — the
uniform convention the paper standardizes on; plugins that need Fortran
ordering (e.g. the zfp native API) translate internally.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from .domain import (
    CallbackDomain,
    Domain,
    MallocDomain,
    MmapDomain,
    NonOwningDomain,
)
from .dtype import DType, dtype_from_numpy, dtype_size, dtype_to_numpy
from .status import InvalidDimensionsError, InvalidTypeError

__all__ = ["PressioData"]


class PressioData:
    """A typed, dimensioned, ownership-aware buffer.

    Attributes
    ----------
    dtype:
        element type as a :class:`~repro.core.dtype.DType`.
    dims:
        tuple of dimensions in C order (slowest varying first).  An empty
        tuple combined with ``has_data() == False`` describes a request
        for an unknown-size output (e.g. a compressed stream).
    """

    __slots__ = ("_dtype", "_dims", "_array", "_domain")

    def __init__(
        self,
        dtype: DType,
        dims: Sequence[int],
        array: np.ndarray | None,
        domain: Domain | None = None,
    ):
        self._dtype = DType(dtype)
        self._dims = tuple(int(d) for d in dims)
        if any(d < 0 for d in self._dims):
            raise InvalidDimensionsError(f"negative dimension in {self._dims}")
        self._array = array
        self._domain = domain if domain is not None else (
            MallocDomain() if array is not None else NonOwningDomain()
        )
        if array is not None:
            expected = int(np.prod(self._dims, dtype=np.int64)) if self._dims else 0
            if array.size != expected:
                raise InvalidDimensionsError(
                    f"buffer has {array.size} elements but dims {self._dims} "
                    f"imply {expected}"
                )
            if array.dtype != dtype_to_numpy(self._dtype):
                raise InvalidTypeError(
                    f"buffer dtype {array.dtype} does not match declared "
                    f"{self._dtype.name}"
                )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, dtype: DType, dims: Iterable[int] = ()) -> "PressioData":
        """Describe a buffer without allocating it.

        This mirrors ``pressio_data_new_empty``: used for output
        parameters whose size the plugin determines.
        """
        return cls(DType(dtype), tuple(dims), None, NonOwningDomain())

    @classmethod
    def owning(cls, dtype: DType, dims: Iterable[int]) -> "PressioData":
        """Allocate a zero-initialized owned buffer of dtype+dims."""
        dims = tuple(dims)
        arr = np.zeros(dims, dtype=dtype_to_numpy(DType(dtype)))
        return cls(DType(dtype), dims, arr.reshape(-1), MallocDomain())

    @classmethod
    def from_numpy(cls, array: np.ndarray, copy: bool = True) -> "PressioData":
        """Create from an ndarray; by default copies (owning semantics)."""
        arr = np.ascontiguousarray(array)
        dtype = dtype_from_numpy(arr.dtype)
        flat = arr.reshape(-1)
        if copy:
            return cls(dtype, arr.shape, flat.copy(), MallocDomain())
        return cls(dtype, arr.shape, flat, NonOwningDomain())

    @classmethod
    def move(
        cls,
        array: np.ndarray,
        deleter: Callable[[object], None],
        state: object = None,
        dtype: DType | None = None,
        dims: Sequence[int] | None = None,
    ) -> "PressioData":
        """Adopt ``array`` with a user deleter (``pressio_data_new_move``)."""
        arr = np.ascontiguousarray(array)
        dt = DType(dtype) if dtype is not None else dtype_from_numpy(arr.dtype)
        dm = tuple(dims) if dims is not None else arr.shape
        return cls(dt, dm, arr.reshape(-1), CallbackDomain(deleter, state))

    @classmethod
    def nonowning(cls, array: np.ndarray) -> "PressioData":
        """Shallow, never-freed view of an existing ndarray."""
        return cls.from_numpy(array, copy=False)

    @classmethod
    def from_bytes(cls, payload: bytes | bytearray | memoryview) -> "PressioData":
        """Wrap an opaque byte string as a 1-D BYTE buffer (compressed data).

        ``bytes`` input is wrapped zero-copy (immutable, so sharing is
        safe); mutable buffers are copied to preserve value semantics.
        """
        if isinstance(payload, bytes):
            arr = np.frombuffer(payload, dtype=np.uint8)
            return cls(DType.BYTE, (arr.size,), arr, NonOwningDomain())
        arr = np.frombuffer(bytes(payload), dtype=np.uint8)
        return cls(DType.BYTE, (arr.size,), arr, MallocDomain())

    @classmethod
    def from_file_mmap(cls, path: str, dtype: DType, dims: Sequence[int]) -> "PressioData":
        """Memory-map a flat binary file as a typed buffer."""
        domain, view = MmapDomain.map_file(path)
        arr = np.frombuffer(view, dtype=dtype_to_numpy(DType(dtype)))
        n = int(np.prod(tuple(dims), dtype=np.int64))
        if arr.size < n:
            size = arr.size
            del arr, view  # drop exported views so the mapping can close
            domain.release()
            raise InvalidDimensionsError(
                f"file {path} holds {size} elements, dims need {n}"
            )
        return cls(DType(dtype), tuple(dims), arr[:n], domain)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def dtype(self) -> DType:
        return self._dtype

    @property
    def dims(self) -> tuple[int, ...]:
        return self._dims

    @property
    def num_dimensions(self) -> int:
        return len(self._dims)

    @property
    def num_elements(self) -> int:
        if not self._dims:
            return 0
        return int(np.prod(self._dims, dtype=np.int64))

    @property
    def size_in_bytes(self) -> int:
        return self.num_elements * dtype_size(self._dtype)

    def get_dimension(self, idx: int) -> int:
        """Dimension ``idx`` or 0 when out of range (C API parity)."""
        return self._dims[idx] if 0 <= idx < len(self._dims) else 0

    def has_data(self) -> bool:
        """True when an actual buffer is attached (not just a description)."""
        return self._array is not None

    @property
    def domain(self) -> Domain:
        return self._domain

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_numpy(self, writable: bool = False) -> np.ndarray:
        """View the buffer as an ndarray shaped by ``dims``.

        The returned array is read-only unless ``writable=True``; this
        enforces the const-ness guarantee discussed in Section IV-B.
        """
        if self._array is None:
            raise InvalidTypeError("PressioData holds no buffer (empty description)")
        view = self._array.reshape(self._dims if self._dims else (0,))
        if not writable:
            view = view.view()
            view.flags.writeable = False
        return view

    def to_bytes(self) -> bytes:
        """Serialize the raw buffer contents to a byte string (copies)."""
        if self._array is None:
            return b""
        return self._array.tobytes()

    def as_memoryview(self) -> memoryview:
        """Zero-copy read-only view of the raw buffer contents.

        Preferred over :meth:`to_bytes` on hot paths (plugin decompress
        takes this route so large compressed streams are never copied).
        """
        if self._array is None:
            return memoryview(b"")
        return memoryview(np.ascontiguousarray(self._array)).cast("B")

    def cast(self, dtype: DType) -> "PressioData":
        """Return a value-cast copy with the new element type."""
        target = dtype_to_numpy(DType(dtype))
        arr = self.to_numpy().astype(target)
        out = PressioData(DType(dtype), self._dims, arr.reshape(-1), MallocDomain())
        return out

    def reshape(self, dims: Sequence[int]) -> "PressioData":
        """Reinterpret the buffer with new dimensions (element count preserved).

        This is the primitive behind the ``resize`` meta-compressor.
        """
        dims = tuple(int(d) for d in dims)
        n = int(np.prod(dims, dtype=np.int64)) if dims else 0
        if n != self.num_elements:
            raise InvalidDimensionsError(
                f"reshape {self._dims} -> {dims} changes element count "
                f"({self.num_elements} -> {n})"
            )
        return PressioData(self._dtype, dims, self._array, NonOwningDomain())

    def clone(self) -> "PressioData":
        """Deep copy with owning semantics."""
        if self._array is None:
            return PressioData.empty(self._dtype, self._dims)
        return PressioData(
            self._dtype, self._dims, self._array.copy(), MallocDomain()
        )

    def release(self) -> None:
        """Explicitly free the underlying memory (``pressio_data_free``).

        The buffer reference is dropped *before* the domain releases so
        mmap-backed regions can close (no exported views may remain).
        """
        self._array = None
        self._domain.release()

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PressioData):
            return NotImplemented
        if self._dtype != other._dtype or self._dims != other._dims:
            return False
        if (self._array is None) != (other._array is None):
            return False
        if self._array is None:
            return True
        return bool(np.array_equal(self._array, other._array))

    def __hash__(self):  # PressioData is mutable through to_numpy(writable=True)
        raise TypeError("PressioData is unhashable")

    def __repr__(self) -> str:
        state = "data" if self.has_data() else "empty"
        return (
            f"PressioData(dtype={self._dtype.name}, dims={self._dims}, "
            f"{state}, domain={self._domain.domain_id})"
        )
