"""``PressioIO``: pluggable readers/writers for :class:`PressioData`.

IO plugins let tools move data between storage formats and compressors
without caring about either (the ``pressio_io`` component of Figure 1).
``read`` takes an optional template describing the expected dtype+dims
(needed for formats, like flat binary, that store no metadata).
"""

from __future__ import annotations

from .configurable import Configurable
from .data import PressioData

__all__ = ["PressioIO"]


class PressioIO(Configurable):
    """Base class for IO plugins."""

    plugin_kind = "io"

    def read(self, template: PressioData | None = None) -> PressioData:
        """Read a buffer; ``template`` supplies dtype/dims when the format
        itself carries none."""
        raise NotImplementedError

    def write(self, data: PressioData) -> None:
        """Write ``data`` to the configured destination."""
        raise NotImplementedError

    def supports_read(self) -> bool:
        return type(self).read is not PressioIO.read

    def supports_write(self) -> bool:
        return type(self).write is not PressioIO.write

    def clone(self) -> "PressioIO":
        dup = type(self)()
        dup.set_options(self.get_options())
        return dup
