"""The pressio data-type enumeration and its NumPy mapping.

LibPressio describes buffers with an explicit dtype enum rather than
relying on the host language's type system so that type information can
cross the C ABI (Section IV-A of the paper).  We reproduce the same nine
scalar types plus ``byte`` (opaque) used for compressed streams.
"""

from __future__ import annotations

import enum

import numpy as np

from .status import InvalidTypeError

__all__ = ["DType", "dtype_to_numpy", "dtype_from_numpy", "dtype_size"]


class DType(enum.IntEnum):
    """Scalar element types understood by every plugin.

    The integer values are stable and are serialized into stream headers,
    so they must never be renumbered.
    """

    INT8 = 0
    INT16 = 1
    INT32 = 2
    INT64 = 3
    UINT8 = 4
    UINT16 = 5
    UINT32 = 6
    UINT64 = 7
    FLOAT = 8
    DOUBLE = 9
    BYTE = 10
    BOOL = 11

    @property
    def is_floating(self) -> bool:
        return self in (DType.FLOAT, DType.DOUBLE)

    @property
    def is_signed(self) -> bool:
        return self in (DType.INT8, DType.INT16, DType.INT32, DType.INT64)

    @property
    def is_unsigned(self) -> bool:
        return self in (
            DType.UINT8,
            DType.UINT16,
            DType.UINT32,
            DType.UINT64,
            DType.BYTE,
        )

    @property
    def is_integer(self) -> bool:
        return self.is_signed or self.is_unsigned


_TO_NUMPY: dict[DType, np.dtype] = {
    DType.INT8: np.dtype(np.int8),
    DType.INT16: np.dtype(np.int16),
    DType.INT32: np.dtype(np.int32),
    DType.INT64: np.dtype(np.int64),
    DType.UINT8: np.dtype(np.uint8),
    DType.UINT16: np.dtype(np.uint16),
    DType.UINT32: np.dtype(np.uint32),
    DType.UINT64: np.dtype(np.uint64),
    DType.FLOAT: np.dtype(np.float32),
    DType.DOUBLE: np.dtype(np.float64),
    DType.BYTE: np.dtype(np.uint8),
    DType.BOOL: np.dtype(np.bool_),
}

_FROM_NUMPY: dict[str, DType] = {
    "int8": DType.INT8,
    "int16": DType.INT16,
    "int32": DType.INT32,
    "int64": DType.INT64,
    "uint8": DType.UINT8,
    "uint16": DType.UINT16,
    "uint32": DType.UINT32,
    "uint64": DType.UINT64,
    "float32": DType.FLOAT,
    "float64": DType.DOUBLE,
    "bool": DType.BOOL,
}


def dtype_to_numpy(dtype: DType) -> np.dtype:
    """Return the NumPy dtype corresponding to a :class:`DType`."""
    try:
        return _TO_NUMPY[DType(dtype)]
    except (ValueError, KeyError):
        raise InvalidTypeError(f"unknown pressio dtype: {dtype!r}") from None


def dtype_from_numpy(dtype: np.dtype | type | str) -> DType:
    """Return the :class:`DType` for a NumPy dtype (or anything castable).

    ``uint8`` maps to :attr:`DType.UINT8`; use :attr:`DType.BYTE`
    explicitly for opaque compressed buffers.
    """
    name = np.dtype(dtype).name
    try:
        return _FROM_NUMPY[name]
    except KeyError:
        raise InvalidTypeError(f"unsupported numpy dtype: {name}") from None


def dtype_size(dtype: DType) -> int:
    """Size in bytes of one element of ``dtype``."""
    return int(dtype_to_numpy(dtype).itemsize)
