"""The ``Pressio`` library handle: create and enumerate plugins.

The analog of ``pressio_instance()`` from the paper's Appendix A.  All
plugin subpackages are imported lazily on first use so that merely
importing :mod:`repro.core` stays cheap, but every handle sees the full
first-party plugin set plus anything registered by third parties.
"""

from __future__ import annotations

import importlib
import threading

from ..obs import runtime as _obs
from . import registry
from .compressor import PressioCompressor
from .io import PressioIO
from .metrics import PressioMetrics
from .options import PressioOptions
from .status import Status

__all__ = ["Pressio", "PRESSIO_VERSION"]

PRESSIO_MAJOR = 0
PRESSIO_MINOR = 70
PRESSIO_PATCH = 4
PRESSIO_VERSION = f"{PRESSIO_MAJOR}.{PRESSIO_MINOR}.{PRESSIO_PATCH}"

_FIRST_PARTY_MODULES = (
    "repro.compressors",
    "repro.metrics",
    "repro.io",
    "repro.meta",
)

_loaded = False
_load_lock = threading.Lock()


def load_first_party_plugins() -> None:
    """Import all first-party plugin subpackages exactly once."""
    global _loaded
    if _loaded:
        return
    with _load_lock:
        if _loaded:
            return
        for mod in _FIRST_PARTY_MODULES:
            importlib.import_module(mod)
        _loaded = True


class Pressio:
    """Entry point for creating compressors, metrics, and IO plugins.

    Mirrors the C API's ``pressio`` object: it reports library version
    information and records the last error raised during plugin creation
    (``error_code`` / ``error_msg``).
    """

    def __init__(self) -> None:
        load_first_party_plugins()
        self.status = Status()

    # -- creation --------------------------------------------------------
    def get_compressor(self, compressor_id: str) -> PressioCompressor | None:
        """Instantiate a compressor plugin; None + status on failure."""
        self.status.clear()
        try:
            comp = registry.compressor_registry.create(compressor_id)
            assert isinstance(comp, PressioCompressor)
            return comp
        except Exception as e:  # noqa: BLE001 - C-style status capture
            self.status.set_from(e)
            _obs.record_error("get_compressor", compressor_id, e)
            return None

    def get_metric(self, metric_ids: str | list[str]) -> PressioMetrics | None:
        """Instantiate one metric, or a composite over several ids."""
        self.status.clear()
        try:
            if isinstance(metric_ids, str):
                m = registry.metrics_registry.create(metric_ids)
            else:
                plugins = [registry.metrics_registry.create(mid) for mid in metric_ids]
                from ..metrics.composite import CompositeMetrics

                m = CompositeMetrics(plugins)
            assert isinstance(m, PressioMetrics)
            return m
        except Exception as e:  # noqa: BLE001
            self.status.set_from(e)
            _obs.record_error("get_metric", str(metric_ids), e)
            return None

    # C API naming parity
    new_metrics = get_metric

    def get_io(self, io_id: str) -> PressioIO | None:
        """Instantiate an IO plugin; None + status on failure."""
        self.status.clear()
        try:
            io = registry.io_registry.create(io_id)
            assert isinstance(io, PressioIO)
            return io
        except Exception as e:  # noqa: BLE001
            self.status.set_from(e)
            _obs.record_error("get_io", io_id, e)
            return None

    # -- enumeration -------------------------------------------------------
    def supported_compressors(self) -> list[str]:
        return registry.compressor_registry.ids()

    def supported_metrics(self) -> list[str]:
        return registry.metrics_registry.ids()

    def supported_io(self) -> list[str]:
        return registry.io_registry.ids()

    def features(self) -> PressioOptions:
        """Library-level introspection used by the Table I bench."""
        feats = PressioOptions()
        feats.set("pressio:lossless", True)
        feats.set("pressio:lossy", True)
        feats.set("pressio:nd_data_aware", True)
        feats.set("pressio:datatype_aware", True)
        feats.set("pressio:embeddable", True)
        feats.set("pressio:arbitrary_configuration", True)
        feats.set("pressio:option_introspection", True)
        feats.set("pressio:third_party_extensions", True)
        return feats

    # -- versioning / errors -------------------------------------------------
    def version(self) -> str:
        return PRESSIO_VERSION

    def major_version(self) -> int:
        return PRESSIO_MAJOR

    def minor_version(self) -> int:
        return PRESSIO_MINOR

    def patch_version(self) -> int:
        return PRESSIO_PATCH

    def error_code(self) -> int:
        return int(self.status.code)

    def error_msg(self) -> str:
        return self.status.msg
