"""``PressioCompressor``: the uniform compressor plugin interface.

This realizes the design points of Section IV-B of the paper:

* a single entry point for compress/decompress regardless of the
  underlying library's API shape;
* **uniform C-order dimension convention** — plugins that wrap natives
  with Fortran-order interfaces translate internally, transparently;
* **const inputs** — plugins receive read-only views; natives that
  clobber their input are handed a copy by their plugin;
* **reference-counted shared instances** — natives with global state
  (sz-style) report themselves as shared so callers can parallelize
  safely (``pressio:thread_safe`` in the configuration);
* **metrics hooks** — a metrics plugin attached to a compressor observes
  every operation without the caller changing its code.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

from .. import _hot
from ..obs import flight as _flight
from ..obs import runtime as _obs
from ..trace import runtime as _trace
from .configurable import Configurable, ThreadSafety
from .data import PressioData
from .options import PressioOptions
from .status import PressioError

if TYPE_CHECKING:  # pragma: no cover
    from .metrics import PressioMetrics

__all__ = ["PressioCompressor"]


class PressioCompressor(Configurable):
    """Base class for all compressor (and meta-compressor) plugins."""

    plugin_kind = "compressor"

    def __init__(self) -> None:
        super().__init__()
        self._metrics: "PressioMetrics | None" = None
        self._refcount = 1
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # subclass extension points
    # ------------------------------------------------------------------
    def _compress(self, input: PressioData) -> PressioData:
        """Compress ``input`` and return a BYTE-typed stream buffer."""
        raise NotImplementedError

    def _decompress(self, input: PressioData, output: PressioData) -> PressioData:
        """Decompress ``input``; ``output`` describes the expected dtype+dims."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def compress(self, input: PressioData, output: PressioData | None = None) -> PressioData:
        """Compress ``input``, returning the compressed buffer.

        ``output`` may pre-describe (or pre-allocate) the destination as
        in the C API; plugins are free to replace it.  Errors are raised
        as :class:`PressioError` and also recorded on :attr:`status`.

        When tracing is active (:mod:`repro.trace`), the whole operation
        runs inside a span carrying the plugin id, dtype, dims, and
        input/output byte counts; nested plugin calls become child spans.
        When a metrics registry is active (:mod:`repro.obs`), the call
        additionally bumps the per-plugin operation counter, duration
        histogram, and byte counters.  The disabled path costs one
        shared module-global read (:data:`repro._hot.ANY`), exactly the
        guard cost the tracer alone imposed.
        """
        if not _hot.ANY:
            return self._compress_op(input, output)
        ctx = _trace.ACTIVE
        reg = _obs.ACTIVE
        rec = _flight.ACTIVE
        if ctx is None and reg is None and rec is None:
            return self._compress_op(input, output)
        if ctx is None:
            start_ns = time.perf_counter_ns()
            result = self._compress_op(input, output)
            duration_ns = time.perf_counter_ns() - start_ns
            if reg is not None:
                _obs.record_operation(
                    "compress", self.get_name(), input.dtype.name,
                    duration_ns / 1e9,
                    input.size_in_bytes, result.size_in_bytes)
            if rec is not None:
                # with tracing off, the flight ring gets no span events;
                # record the operation directly so the last-N window
                # still shows what ran before a failure
                rec.record("operation", operation="compress",
                           plugin=self.get_name(),
                           dtype=input.dtype.name,
                           duration_ns=duration_ns,
                           input_bytes=input.size_in_bytes,
                           output_bytes=result.size_in_bytes)
            return result
        with ctx.span("compress", plugin=self.get_name(),
                      dtype=input.dtype.name, dims=list(input.dims),
                      input_bytes=input.size_in_bytes) as sp:
            result = self._compress_op(input, output)
            sp.attrs["output_bytes"] = result.size_in_bytes
        if reg is not None:
            _obs.record_operation(
                "compress", self.get_name(), input.dtype.name,
                sp.duration_ns / 1e9,
                input.size_in_bytes, result.size_in_bytes)
        return result

    def _compress_op(self, input: PressioData,
                     output: PressioData | None) -> PressioData:
        self.status.clear()
        try:
            if self._metrics is not None:
                self._metrics.begin_compress(input)
            result = self._compress(input)
            if self._metrics is not None:
                self._metrics.end_compress(input, result)
            return result
        except PressioError as e:
            self.status.set_from(e)
            _obs.record_error("compress", self.get_name(), e)
            raise
        except (ValueError, OverflowError) as e:
            # data-dependent rejections (e.g. a bound too tight for the
            # value magnitudes) surface as typed errors, per the uniform
            # error-reporting contract
            wrapped = PressioError(
                f"compression rejected the input: {e}")
            self.status.set_from(wrapped)
            _obs.record_error("compress", self.get_name(), wrapped)
            raise wrapped from e
        except Exception as e:  # noqa: BLE001 - C-style status capture
            self.status.set_from(e)
            _obs.record_error("compress", self.get_name(), e)
            raise

    def decompress(self, input: PressioData, output: PressioData) -> PressioData:
        """Decompress ``input`` into a buffer shaped like ``output``.

        Data-dependent decode failures (malformed or corrupted streams
        producing ValueError/zlib.error/... deep in a codec) surface
        uniformly as :class:`CorruptStreamError`, so callers — and the
        fuzzer — can rely on one typed failure mode.  Programming errors
        (TypeError, AttributeError, ...) propagate unchanged.

        Traced like :meth:`compress` when a trace context is active, and
        counted on the active metrics registry when one is installed.
        """
        if not _hot.ANY:
            return self._decompress_op(input, output)
        ctx = _trace.ACTIVE
        reg = _obs.ACTIVE
        rec = _flight.ACTIVE
        if ctx is None and reg is None and rec is None:
            return self._decompress_op(input, output)
        if ctx is None:
            start_ns = time.perf_counter_ns()
            result = self._decompress_op(input, output)
            duration_ns = time.perf_counter_ns() - start_ns
            if reg is not None:
                _obs.record_operation(
                    "decompress", self.get_name(), output.dtype.name,
                    duration_ns / 1e9,
                    input.size_in_bytes, result.size_in_bytes)
            if rec is not None:
                rec.record("operation", operation="decompress",
                           plugin=self.get_name(),
                           dtype=output.dtype.name,
                           duration_ns=duration_ns,
                           input_bytes=input.size_in_bytes,
                           output_bytes=result.size_in_bytes)
            return result
        with ctx.span("decompress", plugin=self.get_name(),
                      dtype=output.dtype.name, dims=list(output.dims),
                      input_bytes=input.size_in_bytes) as sp:
            result = self._decompress_op(input, output)
            sp.attrs["output_bytes"] = result.size_in_bytes
        if reg is not None:
            _obs.record_operation(
                "decompress", self.get_name(), output.dtype.name,
                sp.duration_ns / 1e9,
                input.size_in_bytes, result.size_in_bytes)
        return result

    def _decompress_op(self, input: PressioData,
                       output: PressioData) -> PressioData:
        import bz2 as _bz2  # noqa: F401 - documents the OSError source
        import lzma as _lzma
        import struct as _struct
        import zlib as _zlib

        data_errors = (ValueError, IndexError, KeyError, OverflowError,
                       MemoryError, EOFError, OSError, _struct.error,
                       _zlib.error, _lzma.LZMAError)
        self.status.clear()
        try:
            if self._metrics is not None:
                self._metrics.begin_decompress(input)
            result = self._decompress(input, output)
            if self._metrics is not None:
                self._metrics.end_decompress(input, result)
            return result
        except PressioError as e:
            self.status.set_from(e)
            _obs.record_error("decompress", self.get_name(), e)
            raise
        except data_errors as e:
            from .status import CorruptStreamError

            wrapped = CorruptStreamError(
                f"stream failed to decode: {type(e).__name__}: {e}"
            )
            self.status.set_from(wrapped)
            _obs.record_error("decompress", self.get_name(), wrapped,
                              cause=type(e).__name__)
            raise wrapped from e
        except Exception as e:  # noqa: BLE001
            self.status.set_from(e)
            _obs.record_error("decompress", self.get_name(), e)
            raise

    # ------------------------------------------------------------------
    # split-phase compression (pipelined meta-compressor support)
    # ------------------------------------------------------------------
    def compress_stage1(self, input: PressioData):
        """First half of a split compress: the numpy-heavy, GIL-bound part.

        Returns an opaque state token for :meth:`compress_stage2`.  The
        two halves compose to exactly :meth:`compress`::

            compress(x) == compress_stage2(compress_stage1(x))   # bytes

        The default implementation defers all work to stage 2 (the token
        is the input itself), so every plugin supports the protocol but
        only plugins that override both hooks (see
        :meth:`supports_stage_split`) give a pipelined executor real
        compute overlap.  State tokens may alias pooled scratch buffers:
        pass each token to stage 2 **exactly once**, and do not reuse it
        afterwards.
        """
        return input

    def compress_stage2(self, state) -> PressioData:
        """Second half of a split compress: entropy coding and framing.

        Plugins that override this run the zlib/bz2/lzma-style byte work
        — which releases the GIL — so a pipelined executor can overlap
        it with stage 1 of the next block on another thread.
        """
        if isinstance(state, PressioData):
            return self.compress(state)
        raise PressioError(
            f"{self.get_name()} does not implement split-phase "
            f"compression for state {type(state).__name__}")

    def supports_stage_split(self) -> bool:
        """True when this plugin genuinely splits compress into stages.

        The base-class fallbacks make the two-call protocol universally
        *correct*; this reports whether it is universally *useful* (i.e.
        the plugin overrode :meth:`compress_stage1`).
        """
        return (type(self).compress_stage1
                is not PressioCompressor.compress_stage1)

    def compress_many(self, inputs: list[PressioData]) -> list[PressioData]:
        """Compress several buffers (overridden by parallel meta-compressors)."""
        return [self.compress(i) for i in inputs]

    def decompress_many(self, inputs: list[PressioData],
                        outputs: list[PressioData]) -> list[PressioData]:
        """Decompress several buffers (overridden by parallel meta-compressors)."""
        return [self.decompress(i, o) for i, o in zip(inputs, outputs)]

    # -- options hooks that also notify metrics -------------------------
    def get_options(self) -> PressioOptions:
        if self._metrics is not None:
            self._metrics.begin_get_options()
        return super().get_options()

    def set_options(self, options) -> int:
        if self._metrics is not None:
            from .configurable import _as_options

            self._metrics.begin_set_options(_as_options(options))
        return super().set_options(options)

    # -- metrics ----------------------------------------------------------
    def set_metrics(self, metrics: "PressioMetrics | None") -> None:
        """Attach (or detach with None) a metrics plugin."""
        self._metrics = metrics

    def get_metrics(self) -> "PressioMetrics | None":
        return self._metrics

    def get_metrics_results(self) -> PressioOptions:
        """Results from the attached metrics plugin (empty when none)."""
        if self._metrics is None:
            return PressioOptions()
        return self._metrics.get_metrics_results()

    # -- sharing / threading ------------------------------------------------
    def is_shared_instance(self) -> bool:
        """True when this object wraps process-global native state.

        Paper Section IV-B: the safest approach is to reference count
        instances and *tell* the caller whether the instance is shared, so
        they know whether multi-threaded use is safe.
        """
        cfg = self.get_configuration()
        return cfg.get("pressio:thread_safe") == ThreadSafety.SINGLE

    def incref(self) -> int:
        with self._lock:
            self._refcount += 1
            return self._refcount

    def decref(self) -> int:
        """Drop a reference; at zero, release native resources."""
        with self._lock:
            self._refcount -= 1
            rc = self._refcount
        if rc == 0:
            self._release_native()
        return rc

    def _release_native(self) -> None:
        """Free native-library state (SZ_Finalize analog)."""

    def clone(self) -> "PressioCompressor":
        """Independent instance with the same options (for thread pools)."""
        dup = type(self)()
        dup.set_options(self.get_options())
        if dup.status.code != 0:
            raise PressioError(f"clone failed: {dup.status.msg}")
        return dup
