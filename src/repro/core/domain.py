"""Memory domains: where a :class:`~repro.core.data.PressioData` buffer lives.

The paper's data abstraction carries a deleter function pointer plus
optional state so buffers allocated with ``malloc``, ``mmap``,
``sycl::malloc_device`` and friends can all be freed correctly
(Section IV-A).  In Python the garbage collector usually handles this,
but the *semantics* still matter for three reproduction-relevant reasons:

* mmap-backed buffers must be flushed/closed deterministically,
* shared-memory buffers used by the parallel meta-compressors must be
  unlinked exactly once,
* "move" construction transfers ownership so the library can document who
  frees what — the behaviour the paper contrasts against leaky designs.
"""

from __future__ import annotations

import mmap
import os
from typing import Callable

import numpy as np

from .status import IOError_

__all__ = [
    "Domain",
    "MallocDomain",
    "NonOwningDomain",
    "MmapDomain",
    "CallbackDomain",
]


class Domain:
    """Base class describing ownership and release of a memory region."""

    #: short identifier reported through introspection
    domain_id = "abstract"

    #: True when freeing is this object's responsibility
    owns_memory = False

    def release(self) -> None:
        """Free the underlying region.  Idempotent."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} owns={self.owns_memory}>"


class MallocDomain(Domain):
    """Ordinary heap memory owned by the data object (``malloc`` analog)."""

    domain_id = "malloc"
    owns_memory = True


class NonOwningDomain(Domain):
    """A shallow view of memory owned elsewhere (noop deleter analog)."""

    domain_id = "nonowning"
    owns_memory = False


class MmapDomain(Domain):
    """A file-backed memory mapping, released by un-mapping.

    Demonstrates the deleter-with-state design from the paper: the state
    is the ``mmap.mmap`` object and (optionally) the file descriptor.
    """

    domain_id = "mmap"
    owns_memory = True

    def __init__(self, mapping: mmap.mmap, fd: int | None = None):
        self._mapping = mapping
        self._fd = fd
        self._released = False

    @classmethod
    def map_file(cls, path: str | os.PathLike, writable: bool = False) -> tuple["MmapDomain", memoryview]:
        """Map ``path`` and return the domain plus a memoryview of it."""
        flags = os.O_RDWR if writable else os.O_RDONLY
        fd = os.open(path, flags)
        try:
            size = os.fstat(fd).st_size
            if size == 0:
                raise IOError_(f"cannot mmap empty file: {path}")
            prot = mmap.PROT_READ | (mmap.PROT_WRITE if writable else 0)
            mapping = mmap.mmap(fd, size, prot=prot)
        except Exception:
            os.close(fd)
            raise
        domain = cls(mapping, fd)
        return domain, memoryview(mapping)

    def flush(self) -> None:
        if not self._released:
            self._mapping.flush()

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._mapping.close()
        if self._fd is not None:
            os.close(self._fd)


class CallbackDomain(Domain):
    """User-supplied deleter callback with optional opaque state.

    This is the direct analog of ``pressio_data_new_move``'s
    ``(deleter, metadata)`` pair.
    """

    domain_id = "callback"
    owns_memory = True

    def __init__(self, deleter: Callable[[object], None], state: object = None):
        self._deleter = deleter
        self._state = state
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._deleter(self._state)


def readonly_view(array: np.ndarray) -> np.ndarray:
    """Return a non-writable view of ``array`` (const-ness enforcement).

    The paper argues compressors must not clobber user input
    (Section IV-B); the core passes inputs to plugins through this helper
    so accidental in-place mutation raises immediately.
    """
    view = array.view()
    view.flags.writeable = False
    return view
