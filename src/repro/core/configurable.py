"""Shared option machinery for compressors, metrics, and IO plugins.

Every plugin kind in LibPressio exposes the same four verbs —
``get_options`` / ``set_options`` / ``check_options`` /
``get_configuration`` — plus documentation.  This module implements them
once.  ``get_configuration`` carries *read-only* facts such as thread
safety and API stability, the introspection data Table I credits
LibPressio with and faults string-typed interfaces for lacking.
"""

from __future__ import annotations

from typing import Any

from .options import CastLevel, Option, OptionType, PressioOptions
from .status import InvalidOptionError, Status

__all__ = ["Configurable", "ThreadSafety", "Stability"]


class ThreadSafety:
    """Values for the ``pressio:thread_safe`` configuration entry."""

    SINGLE = "single"          # one thread total (global state: sz-style)
    SERIALIZED = "serialized"  # many threads, externally serialized
    MULTIPLE = "multiple"      # fully re-entrant (zfp-style)


class Stability:
    """Values for the ``pressio:stability`` configuration entry."""

    EXPERIMENTAL = "experimental"
    UNSTABLE = "unstable"
    STABLE = "stable"
    EXTERNAL = "external"


class Configurable:
    """Base class implementing the uniform options protocol."""

    #: plugin id within its registry, e.g. ``"sz"``; set by subclasses
    plugin_id: str = "unknown"

    #: plugin kind prefix used in fully-qualified names ("compressor", ...)
    plugin_kind: str = "configurable"

    def __init__(self) -> None:
        self.status = Status()
        self._name: str | None = None

    # ------------------------------------------------------------------
    # naming: allows two instances of the same plugin to have distinct
    # option namespaces, as libpressio's set_name does
    # ------------------------------------------------------------------
    def get_name(self) -> str:
        return self._name if self._name is not None else self.plugin_id

    def set_name(self, name: str) -> None:
        self._name = name

    def prefix(self) -> str:
        return self.get_name()

    def _qualify(self, key: str) -> str:
        return f"{self.prefix()}:{key}"

    # ------------------------------------------------------------------
    # subclass extension points
    # ------------------------------------------------------------------
    def _options(self) -> PressioOptions:
        """Return the plugin's current options (qualified names)."""
        return PressioOptions()

    def _set_options(self, options: PressioOptions) -> None:
        """Apply recognized entries of ``options``; ignore foreign keys."""

    def _configuration(self) -> PressioOptions:
        """Read-only facts: thread safety, stability, version, ..."""
        cfg = PressioOptions()
        cfg.set("pressio:thread_safe", ThreadSafety.SERIALIZED)
        cfg.set("pressio:stability", Stability.STABLE)
        return cfg

    def _documentation(self) -> PressioOptions:
        """Human-readable descriptions of each option."""
        return PressioOptions()

    def _check_options(self, options: PressioOptions) -> None:
        """Raise InvalidOptionError when a proposed setting is unusable."""

    # ------------------------------------------------------------------
    # public uniform API
    # ------------------------------------------------------------------
    def get_options(self) -> PressioOptions:
        """Current option values, with types, for introspection."""
        return self._options()

    def set_options(self, options: PressioOptions | dict) -> int:
        """Apply option values; returns 0 on success (C API parity).

        Unknown keys are ignored (so one options set can configure a whole
        pipeline of plugins), but keys *belonging to this plugin* with
        incompatible types raise/return an error.
        """
        options = _as_options(options)
        self.status.clear()
        try:
            self._validate_known_types(options)
            self._set_options(options)
        except Exception as e:  # noqa: BLE001 - C-style status capture
            self.status.set_from(e)
            return int(self.status.code)
        return 0

    def check_options(self, options: PressioOptions | dict) -> int:
        """Validate without applying; returns 0 when acceptable."""
        options = _as_options(options)
        self.status.clear()
        try:
            self._validate_known_types(options)
            self._check_options(options)
        except Exception as e:  # noqa: BLE001
            self.status.set_from(e)
            return int(self.status.code)
        return 0

    def get_configuration(self) -> PressioOptions:
        cfg = self._configuration()
        cfg.set("pressio:version", self.version())
        declared = getattr(self, "thread_safety", None)
        if declared is not None:
            cfg.set("pressio:thread_safety", declared)
        return cfg

    def get_documentation(self) -> PressioOptions:
        return self._documentation()

    def version(self) -> str:
        """Version string of the underlying implementation."""
        return "0.0.0"

    # ------------------------------------------------------------------
    def _validate_known_types(self, options: PressioOptions) -> None:
        """Reject values whose type cannot cast to the advertised type."""
        advertised = self._options()
        for key, opt in options.items():
            target = advertised.get_option(key)
            if target is None or not opt.has_value():
                continue
            if target.type in (OptionType.USERPTR, OptionType.DATA,
                               OptionType.UNSET):
                continue
            try:
                opt.cast(target.type, CastLevel.IMPLICIT)
            except InvalidOptionError as e:
                raise InvalidOptionError(
                    f"option {key!r}: {e.msg}", e.code
                ) from None

    # helpers used by subclasses -----------------------------------------
    def _take(self, options: PressioOptions, key: str, type: OptionType,
              current: Any) -> Any:
        """Fetch ``key`` from ``options`` cast to ``type``, else ``current``."""
        opt = options.get_option(key)
        if opt is None or not opt.has_value():
            return current
        if type in (OptionType.USERPTR, OptionType.DATA):
            return opt.get()
        return opt.cast(type, CastLevel.IMPLICIT).get()

    def error_code(self) -> int:
        return int(self.status.code)

    def error_msg(self) -> str:
        return self.status.msg

    def __repr__(self) -> str:
        return f"<{self.plugin_kind} {self.get_name()!r}>"


def _as_options(options: PressioOptions | dict) -> PressioOptions:
    if isinstance(options, PressioOptions):
        return options
    return PressioOptions(options)
