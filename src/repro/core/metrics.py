"""``PressioMetrics``: pluggable measurement of compression runs.

Metrics observe compression through begin/end hooks, exactly as
libpressio's ``libpressio_metrics_plugin`` does, and report their results
as a :class:`~repro.core.options.PressioOptions` so callers read them
through the same typed, introspectable interface as configuration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .configurable import Configurable
from .options import PressioOptions

if TYPE_CHECKING:  # pragma: no cover
    from .data import PressioData

__all__ = ["PressioMetrics"]


class PressioMetrics(Configurable):
    """Base class for metrics plugins.

    Subclasses override any of the begin/end hooks; the compressor calls
    them around each operation.  ``get_metrics_results`` gathers the
    measured values.
    """

    plugin_kind = "metric"

    # -- lifecycle hooks -------------------------------------------------
    def begin_compress(self, input: "PressioData") -> None:
        """Called immediately before compression with the uncompressed input."""

    def end_compress(self, input: "PressioData", output: "PressioData") -> None:
        """Called immediately after compression with input and compressed output."""

    def begin_decompress(self, input: "PressioData") -> None:
        """Called immediately before decompression with the compressed input."""

    def end_decompress(self, input: "PressioData", output: "PressioData") -> None:
        """Called immediately after decompression with compressed input and output."""

    def begin_get_options(self) -> None:
        """Called when the owning compressor's options are queried."""

    def begin_set_options(self, options: PressioOptions) -> None:
        """Called when the owning compressor's options are changed."""

    # -- results -----------------------------------------------------------
    def get_metrics_results(self) -> PressioOptions:
        """Return measured values, qualified as ``<metric>:<name>``."""
        return PressioOptions()

    def reset(self) -> None:
        """Discard accumulated state so the plugin can be reused."""

    def clone(self) -> "PressioMetrics":
        """Independent copy with the same configuration, empty results."""
        dup = type(self)()
        dup.set_options(self.get_options())
        return dup
