"""Plugin registries with third-party extension support.

Table I's final column: LibPressio allows third-party plugins to be
registered *without modifying the library*.  Here, any code can call
:func:`register_compressor` (or the metric/io variants, or the
``@compressor_plugin`` decorators) with a new id; the tools, CLI, and
meta-compressors immediately see it.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Type, TypeVar

from .status import UnsupportedPluginError

__all__ = [
    "Registry",
    "compressor_registry",
    "metrics_registry",
    "io_registry",
    "register_compressor",
    "register_metric",
    "register_io",
    "compressor_plugin",
    "metric_plugin",
    "io_plugin",
]

T = TypeVar("T")


class Registry:
    """A named, thread-safe mapping of plugin id -> factory."""

    def __init__(self, kind: str):
        self.kind = kind
        self._factories: dict[str, Callable[[], object]] = {}
        self._lock = threading.Lock()

    def register(self, plugin_id: str, factory: Callable[[], object],
                 replace: bool = False) -> None:
        """Add a factory; refuses to silently shadow unless ``replace``."""
        with self._lock:
            if plugin_id in self._factories and not replace:
                raise ValueError(
                    f"{self.kind} plugin {plugin_id!r} already registered"
                )
            self._factories[plugin_id] = factory

    def unregister(self, plugin_id: str) -> None:
        with self._lock:
            self._factories.pop(plugin_id, None)

    def create(self, plugin_id: str):
        """Instantiate a plugin or raise :class:`UnsupportedPluginError`.

        A miss first triggers the one-time first-party plugin load, so
        substrates like :class:`~repro.io.hdf5mini.Hdf5MiniFile` work
        without the caller having constructed a ``Pressio`` handle.
        """
        with self._lock:
            factory = self._factories.get(plugin_id)
        if factory is None:
            from .library import load_first_party_plugins

            load_first_party_plugins()
            with self._lock:
                factory = self._factories.get(plugin_id)
        if factory is None:
            known = ", ".join(sorted(self._factories))
            raise UnsupportedPluginError(
                f"no {self.kind} plugin {plugin_id!r}; known: {known}"
            )
        instance = factory()
        return instance

    def ids(self) -> list[str]:
        with self._lock:
            return sorted(self._factories)

    # -- capability introspection ----------------------------------------
    def describe(self, plugin_id: str) -> dict:
        """Instantiate ``plugin_id`` and return its read-only facts.

        The returned mapping carries the plugin's ``get_configuration``
        entries (``pressio:thread_safe``, ``pressio:stability``,
        ``pressio:lossy``, ...) as plain values.  A plugin whose factory
        or configuration raises yields ``{"error": "..."}`` instead of
        propagating — enumerating capabilities must never be the thing
        that crashes.
        """
        try:
            instance = self.create(plugin_id)
            cfg = instance.get_configuration()
        except Exception as e:  # noqa: BLE001 - introspection must survive
            from ..obs.runtime import record_error

            record_error("describe", plugin_id, e)
            return {"error": f"{type(e).__name__}: {e}"}
        info: dict = {}
        for key, opt in cfg.items():
            if opt.has_value():
                info[key] = opt.get()
        return info

    def capabilities(self) -> dict[str, dict]:
        """Capability matrix over every registered plugin id.

        Triggers the one-time first-party load so the sweep covers the
        full plugin set, then maps each id to :meth:`describe`.  This is
        what the conformance matrix (and any scheduler choosing plugins
        by thread safety or stability) keys off.
        """
        from .library import load_first_party_plugins

        load_first_party_plugins()
        return {plugin_id: self.describe(plugin_id)
                for plugin_id in self.ids()}

    def __contains__(self, plugin_id: str) -> bool:
        with self._lock:
            return plugin_id in self._factories

    def __len__(self) -> int:
        with self._lock:
            return len(self._factories)

    def __iter__(self) -> Iterable[str]:
        return iter(self.ids())


compressor_registry = Registry("compressor")
metrics_registry = Registry("metric")
io_registry = Registry("io")


def register_compressor(plugin_id: str, factory: Callable[[], object],
                        replace: bool = False) -> None:
    """Register a compressor factory under ``plugin_id``."""
    compressor_registry.register(plugin_id, factory, replace)


def register_metric(plugin_id: str, factory: Callable[[], object],
                    replace: bool = False) -> None:
    """Register a metrics factory under ``plugin_id``."""
    metrics_registry.register(plugin_id, factory, replace)


def register_io(plugin_id: str, factory: Callable[[], object],
                replace: bool = False) -> None:
    """Register an IO factory under ``plugin_id``."""
    io_registry.register(plugin_id, factory, replace)


def compressor_plugin(plugin_id: str, replace: bool = False) -> Callable[[Type[T]], Type[T]]:
    """Class decorator registering a compressor plugin."""

    def deco(cls: Type[T]) -> Type[T]:
        cls.plugin_id = plugin_id
        register_compressor(plugin_id, cls, replace)
        return cls

    return deco


def metric_plugin(plugin_id: str, replace: bool = False) -> Callable[[Type[T]], Type[T]]:
    """Class decorator registering a metrics plugin."""

    def deco(cls: Type[T]) -> Type[T]:
        cls.plugin_id = plugin_id
        register_metric(plugin_id, cls, replace)
        return cls

    return deco


def io_plugin(plugin_id: str, replace: bool = False) -> Callable[[Type[T]], Type[T]]:
    """Class decorator registering an IO plugin."""

    def deco(cls: Type[T]) -> Type[T]:
        cls.plugin_id = plugin_id
        register_io(plugin_id, cls, replace)
        return cls

    return deco
