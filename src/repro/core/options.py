"""Typed, introspectable configuration options (``pressio_options``).

Section IV-C of the paper: each option reports one of the types below so
users can *programmatically* discover what a compressor accepts and supply
correctly-typed values.  Two conversion disciplines exist, as in
libpressio:

* **explicit** casts permit lossless widening (int32 -> int64,
  float -> double, int -> double, ...);
* **implicit** casts additionally permit narrowing when the value is
  exactly representable.

The ``USERPTR`` type carries opaque native handles (the paper's
``MPI_Comm`` / ``sycl::queue`` argument) which string- or JSON-typed
interfaces cannot express — this is what the "arbitrary configuration"
column of Table I measures.
"""

from __future__ import annotations

import enum
from typing import Any, Iterable, Iterator, Mapping

import numpy as np

from .data import PressioData
from .status import InvalidOptionError

__all__ = ["OptionType", "Option", "PressioOptions", "CastLevel"]


class OptionType(enum.IntEnum):
    """The wire types an option can hold (paper Section IV-C)."""

    INT8 = 0
    INT16 = 1
    INT32 = 2
    INT64 = 3
    UINT8 = 4
    UINT16 = 5
    UINT32 = 6
    UINT64 = 7
    FLOAT = 8
    DOUBLE = 9
    STRING = 10
    STRING_LIST = 11
    DATA = 12
    USERPTR = 13
    UNSET = 14
    BOOL = 15


class CastLevel(enum.IntEnum):
    """How aggressively :meth:`Option.cast` may convert values."""

    EXPLICIT = 0  # only lossless widening
    IMPLICIT = 1  # also exact-value narrowing


_INT_TYPES = {
    OptionType.INT8: (-(2**7), 2**7 - 1),
    OptionType.INT16: (-(2**15), 2**15 - 1),
    OptionType.INT32: (-(2**31), 2**31 - 1),
    OptionType.INT64: (-(2**63), 2**63 - 1),
    OptionType.UINT8: (0, 2**8 - 1),
    OptionType.UINT16: (0, 2**16 - 1),
    OptionType.UINT32: (0, 2**32 - 1),
    OptionType.UINT64: (0, 2**64 - 1),
}

_WIDENS: dict[OptionType, set[OptionType]] = {
    OptionType.INT8: {OptionType.INT16, OptionType.INT32, OptionType.INT64,
                      OptionType.FLOAT, OptionType.DOUBLE},
    OptionType.INT16: {OptionType.INT32, OptionType.INT64, OptionType.FLOAT,
                       OptionType.DOUBLE},
    OptionType.INT32: {OptionType.INT64, OptionType.DOUBLE},
    OptionType.INT64: set(),
    OptionType.UINT8: {OptionType.UINT16, OptionType.UINT32, OptionType.UINT64,
                       OptionType.INT16, OptionType.INT32, OptionType.INT64,
                       OptionType.FLOAT, OptionType.DOUBLE},
    OptionType.UINT16: {OptionType.UINT32, OptionType.UINT64, OptionType.INT32,
                        OptionType.INT64, OptionType.FLOAT, OptionType.DOUBLE},
    OptionType.UINT32: {OptionType.UINT64, OptionType.INT64, OptionType.DOUBLE},
    OptionType.UINT64: set(),
    OptionType.FLOAT: {OptionType.DOUBLE},
    OptionType.DOUBLE: set(),
    OptionType.BOOL: {OptionType.INT8, OptionType.INT16, OptionType.INT32,
                      OptionType.INT64, OptionType.UINT8, OptionType.UINT16,
                      OptionType.UINT32, OptionType.UINT64},
}


def _infer_type(value: Any) -> OptionType:
    """Infer the option type of a raw Python/NumPy value."""
    if value is None:
        return OptionType.UNSET
    if isinstance(value, Option):
        return value.type
    if isinstance(value, bool) or isinstance(value, np.bool_):
        return OptionType.BOOL
    if isinstance(value, (int, np.integer)):
        if isinstance(value, np.integer):
            name = value.dtype.name
            return {
                "int8": OptionType.INT8, "int16": OptionType.INT16,
                "int32": OptionType.INT32, "int64": OptionType.INT64,
                "uint8": OptionType.UINT8, "uint16": OptionType.UINT16,
                "uint32": OptionType.UINT32, "uint64": OptionType.UINT64,
            }[name]
        return OptionType.INT64
    if isinstance(value, np.float32):
        return OptionType.FLOAT
    if isinstance(value, (float, np.floating)):
        return OptionType.DOUBLE
    if isinstance(value, str):
        return OptionType.STRING
    if isinstance(value, PressioData):
        return OptionType.DATA
    if isinstance(value, (list, tuple)) and all(isinstance(v, str) for v in value):
        return OptionType.STRING_LIST
    return OptionType.USERPTR


def _normalize(value: Any, type_: OptionType) -> Any:
    """Coerce a raw value into the canonical Python representation."""
    if type_ == OptionType.UNSET:
        return None
    if type_ == OptionType.BOOL:
        return bool(value)
    if type_ in _INT_TYPES:
        iv = int(value)
        lo, hi = _INT_TYPES[type_]
        if not (lo <= iv <= hi):
            raise InvalidOptionError(
                f"value {iv} out of range for {type_.name} [{lo}, {hi}]"
            )
        return iv
    if type_ == OptionType.FLOAT:
        return float(np.float32(value))
    if type_ == OptionType.DOUBLE:
        return float(value)
    if type_ == OptionType.STRING:
        if not isinstance(value, str):
            raise InvalidOptionError(f"expected str, got {type(value).__name__}")
        return value
    if type_ == OptionType.STRING_LIST:
        if not (isinstance(value, (list, tuple))
                and all(isinstance(v, str) for v in value)):
            raise InvalidOptionError("expected a list of str")
        return list(value)
    if type_ == OptionType.DATA:
        if not isinstance(value, PressioData):
            raise InvalidOptionError(
                f"expected PressioData, got {type(value).__name__}"
            )
        return value
    if type_ == OptionType.USERPTR:
        return value
    raise InvalidOptionError(f"unknown option type {type_!r}")


class Option:
    """One typed configuration value.

    An option may exist with a type but no value (``has_value() == False``)
    — this is how plugins *advertise* which options they accept and with
    what type, enabling introspection before any value is supplied.
    """

    __slots__ = ("_type", "_value")

    def __init__(self, value: Any = None, type: OptionType | None = None):
        if type is None:
            type = _infer_type(value)
        self._type = OptionType(type)
        self._value = None if value is None else _normalize(value, self._type)

    @classmethod
    def unset(cls, type: OptionType) -> "Option":
        """An option advertising ``type`` but holding no value yet."""
        opt = cls.__new__(cls)
        opt._type = OptionType(type)
        opt._value = None
        return opt

    @property
    def type(self) -> OptionType:
        return self._type

    def has_value(self) -> bool:
        return self._value is not None

    def get(self) -> Any:
        return self._value

    def set(self, value: Any) -> None:
        self._value = _normalize(value, self._type)

    # ------------------------------------------------------------------
    def cast(self, target: OptionType, level: CastLevel = CastLevel.EXPLICIT) -> "Option":
        """Convert to ``target`` under the given discipline, or raise.

        Explicit casts allow only identity and lossless widening.
        Implicit casts also allow narrowing when the exact value survives
        the round trip.
        """
        target = OptionType(target)
        if not self.has_value():
            raise InvalidOptionError("cannot cast an option with no value")
        if target == self._type:
            return Option(self._value, target)
        allowed = target in _WIDENS.get(self._type, set())
        if allowed:
            return Option(self._convert_value(target), target)
        if level == CastLevel.IMPLICIT:
            converted = self._convert_value(target)
            back = Option(converted, target)._convert_value(self._type)
            if back == self._value:
                return Option(converted, target)
            raise InvalidOptionError(
                f"implicit cast {self._type.name} -> {target.name} would lose "
                f"value {self._value!r}"
            )
        raise InvalidOptionError(
            f"explicit cast {self._type.name} -> {target.name} not permitted"
        )

    def _convert_value(self, target: OptionType) -> Any:
        v = self._value
        if target in _INT_TYPES or target == OptionType.BOOL:
            if isinstance(v, str):
                raise InvalidOptionError("cannot cast string to numeric")
            if isinstance(v, float) and not float(v).is_integer():
                raise InvalidOptionError(f"cannot cast non-integral {v} to int")
            return _normalize(int(v), target) if target != OptionType.BOOL else bool(v)
        if target in (OptionType.FLOAT, OptionType.DOUBLE):
            if isinstance(v, str):
                raise InvalidOptionError("cannot cast string to numeric")
            return _normalize(float(v), target)
        if target == OptionType.STRING:
            return str(v)
        raise InvalidOptionError(
            f"no conversion path {self._type.name} -> {target.name}"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Option):
            return NotImplemented
        return self._type == other._type and self._value == other._value

    def __repr__(self) -> str:
        return f"Option({self._value!r}, type={self._type.name})"


class PressioOptions:
    """An ordered mapping of option name -> :class:`Option`.

    Names are hierarchical with a ``plugin:option`` convention
    (``sz:abs_err_bound``, ``pressio:abs`` for cross-compressor common
    options).  This class is deliberately permissive about unknown keys —
    validation against what a plugin accepts happens in
    :meth:`repro.core.configurable.Configurable.set_options`.
    """

    __slots__ = ("_entries",)

    def __init__(self, values: Mapping[str, Any] | None = None):
        self._entries: dict[str, Option] = {}
        if values:
            for k, v in values.items():
                self.set(k, v)

    # -- mutation ------------------------------------------------------
    def set(self, name: str, value: Any, type: OptionType | None = None) -> None:
        """Set ``name`` to ``value`` (type inferred unless given)."""
        if isinstance(value, Option):
            self._entries[name] = value
        else:
            self._entries[name] = Option(value, type)

    def set_type(self, name: str, type: OptionType) -> None:
        """Declare ``name`` with a type but no value (introspection)."""
        self._entries[name] = Option.unset(type)

    def clear(self, name: str) -> None:
        """Remove ``name`` entirely."""
        self._entries.pop(name, None)

    # -- access --------------------------------------------------------
    def get(self, name: str, default: Any = None) -> Any:
        """Raw value for ``name`` or ``default`` when absent/unset."""
        opt = self._entries.get(name)
        if opt is None or not opt.has_value():
            return default
        return opt.get()

    def get_option(self, name: str) -> Option | None:
        return self._entries.get(name)

    def get_as(self, name: str, type: OptionType,
               level: CastLevel = CastLevel.IMPLICIT) -> Any:
        """Value for ``name`` cast to ``type``; raises when absent."""
        opt = self._entries.get(name)
        if opt is None or not opt.has_value():
            raise InvalidOptionError(f"option {name!r} is not set")
        return opt.cast(type, level).get()

    def key_status(self, name: str) -> str:
        """'key_set', 'key_exists' (typed but valueless), or 'key_does_not_exist'."""
        opt = self._entries.get(name)
        if opt is None:
            return "key_does_not_exist"
        return "key_set" if opt.has_value() else "key_exists"

    # -- set algebra ----------------------------------------------------
    def merge(self, other: "PressioOptions") -> "PressioOptions":
        """New options with ``other`` taking precedence (C API's merge)."""
        out = PressioOptions()
        out._entries.update(self._entries)
        out._entries.update(other._entries)
        return out

    def subset(self, prefix: str) -> "PressioOptions":
        """All entries whose name starts with ``prefix``."""
        out = PressioOptions()
        out._entries = {
            k: v for k, v in self._entries.items() if k.startswith(prefix)
        }
        return out

    def copy(self) -> "PressioOptions":
        out = PressioOptions()
        out._entries = dict(self._entries)
        return out

    # -- iteration / dunder ---------------------------------------------
    def keys(self) -> Iterable[str]:
        return self._entries.keys()

    def items(self) -> Iterable[tuple[str, Option]]:
        return self._entries.items()

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict snapshot of set values (unset entries skipped)."""
        return {k: o.get() for k, o in self._entries.items() if o.has_value()}

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PressioOptions):
            return NotImplemented
        return self._entries == other._entries

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={o!r}" for k, o in self._entries.items())
        return f"PressioOptions({inner})"
