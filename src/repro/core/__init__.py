"""Core abstractions of the LibPressio reproduction.

This package contains the paper's primary contribution: the uniform,
typed, introspectable compression interface (Figure 1's six components).

* :class:`~repro.core.library.Pressio` — the library handle
* :class:`~repro.core.data.PressioData` — typed, dimensioned buffers
* :class:`~repro.core.options.PressioOptions` — typed configuration
* :class:`~repro.core.compressor.PressioCompressor` — compressor plugins
* :class:`~repro.core.metrics.PressioMetrics` — metrics plugins
* :class:`~repro.core.io.PressioIO` — IO plugins
"""

from .compressor import PressioCompressor
from .configurable import Configurable, Stability, ThreadSafety
from .data import PressioData
from .domain import CallbackDomain, Domain, MallocDomain, MmapDomain, NonOwningDomain
from .dtype import DType, dtype_from_numpy, dtype_size, dtype_to_numpy
from .io import PressioIO
from .library import PRESSIO_VERSION, Pressio
from .metrics import PressioMetrics
from .options import CastLevel, Option, OptionType, PressioOptions
from .registry import (
    compressor_plugin,
    compressor_registry,
    io_plugin,
    io_registry,
    metric_plugin,
    metrics_registry,
    register_compressor,
    register_io,
    register_metric,
)
from .status import (
    BoundExceededError,
    CorruptStreamError,
    ErrorCode,
    InvalidDimensionsError,
    InvalidOptionError,
    InvalidTypeError,
    IOError_,
    MissingOptionError,
    PressioError,
    Status,
    UnsupportedPluginError,
)

__all__ = [
    "Pressio",
    "PRESSIO_VERSION",
    "PressioData",
    "PressioOptions",
    "Option",
    "OptionType",
    "CastLevel",
    "PressioCompressor",
    "PressioMetrics",
    "PressioIO",
    "Configurable",
    "ThreadSafety",
    "Stability",
    "DType",
    "dtype_to_numpy",
    "dtype_from_numpy",
    "dtype_size",
    "Domain",
    "MallocDomain",
    "NonOwningDomain",
    "MmapDomain",
    "CallbackDomain",
    "ErrorCode",
    "Status",
    "PressioError",
    "InvalidTypeError",
    "InvalidDimensionsError",
    "InvalidOptionError",
    "MissingOptionError",
    "UnsupportedPluginError",
    "IOError_",
    "CorruptStreamError",
    "BoundExceededError",
    "register_compressor",
    "register_metric",
    "register_io",
    "compressor_plugin",
    "metric_plugin",
    "io_plugin",
    "compressor_registry",
    "metrics_registry",
    "io_registry",
]
