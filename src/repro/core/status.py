"""Error codes and exception hierarchy for the pressio core.

LibPressio's C API reports errors through per-object ``error_code`` /
``error_msg`` pairs (see the ``pressio`` component in Section IV of the
paper).  The Python reproduction exposes both styles: plugins raise typed
exceptions internally, and the :class:`~repro.core.library.Pressio` handle
and :mod:`repro.capi` translate them back into code/message pairs for
C-style callers.
"""

from __future__ import annotations

import enum


class ErrorCode(enum.IntEnum):
    """Numeric error codes mirroring libpressio's conventions.

    ``SUCCESS`` is zero; positive values are errors raised by the library
    itself; negative values are reserved for plugin-specific errors, as in
    the C library.
    """

    SUCCESS = 0
    GENERAL = 1
    INVALID_TYPE = 2
    INVALID_DIMENSIONS = 3
    INVALID_OPTION = 4
    MISSING_OPTION = 5
    UNSUPPORTED_COMPRESSOR = 6
    UNSUPPORTED_METRIC = 7
    UNSUPPORTED_IO = 8
    IO_ERROR = 9
    CORRUPT_STREAM = 10
    BOUND_EXCEEDED = 11
    NOT_THREAD_SAFE = 12
    PLUGIN = -1


class PressioError(Exception):
    """Base class for all errors raised by the repro library.

    Parameters
    ----------
    msg:
        human readable message, stored verbatim as ``error_msg``.
    code:
        machine readable :class:`ErrorCode`, stored as ``error_code``.
    """

    default_code = ErrorCode.GENERAL

    def __init__(self, msg: str, code: ErrorCode | int | None = None):
        super().__init__(msg)
        self.msg = msg
        self.code = ErrorCode(code) if code is not None else self.default_code

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(code={int(self.code)}, msg={self.msg!r})"


class InvalidTypeError(PressioError):
    """The dtype of a buffer is not acceptable to the plugin."""

    default_code = ErrorCode.INVALID_TYPE


class InvalidDimensionsError(PressioError):
    """The dimensions of a buffer are not acceptable to the plugin."""

    default_code = ErrorCode.INVALID_DIMENSIONS


class InvalidOptionError(PressioError):
    """An option was set with an incompatible type or out-of-domain value."""

    default_code = ErrorCode.INVALID_OPTION


class MissingOptionError(PressioError):
    """A required option was not provided before compress/decompress."""

    default_code = ErrorCode.MISSING_OPTION


class UnsupportedPluginError(PressioError):
    """Requested plugin id is not present in the registry."""

    default_code = ErrorCode.UNSUPPORTED_COMPRESSOR


class IOError_(PressioError):
    """An IO plugin failed to read or write."""

    default_code = ErrorCode.IO_ERROR


class CorruptStreamError(PressioError):
    """A compressed stream failed validation during decompression."""

    default_code = ErrorCode.CORRUPT_STREAM


class BoundExceededError(PressioError):
    """Internal check detected an error-bound violation (should not happen)."""

    default_code = ErrorCode.BOUND_EXCEEDED


class Status:
    """Mutable (code, message) pair used by objects with C-style reporting.

    The zero value (``SUCCESS`` / empty message) means "no error"; calling
    :meth:`set_from` records an exception and :meth:`clear` resets.
    """

    __slots__ = ("code", "msg")

    def __init__(self) -> None:
        self.code: ErrorCode = ErrorCode.SUCCESS
        self.msg: str = ""

    def clear(self) -> None:
        self.code = ErrorCode.SUCCESS
        self.msg = ""

    def set(self, code: ErrorCode | int, msg: str) -> None:
        self.code = ErrorCode(code)
        self.msg = msg

    def set_from(self, exc: BaseException) -> None:
        if isinstance(exc, PressioError):
            self.code = exc.code
            self.msg = exc.msg
        else:
            self.code = ErrorCode.GENERAL
            self.msg = f"{type(exc).__name__}: {exc}"

    @property
    def ok(self) -> bool:
        return self.code == ErrorCode.SUCCESS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Status(code={int(self.code)}, msg={self.msg!r})"
