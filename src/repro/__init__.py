"""repro — a Python reproduction of LibPressio (SC 2021).

LibPressio is a generic, low-overhead, introspectable interface for lossy
and lossless compression of dense tensors.  This package reproduces the
full system described in the paper:

* :mod:`repro.core` — the uniform interface (data, options, compressor,
  metrics, IO plugins, registries);
* :mod:`repro.native` — from-scratch "native" compressor libraries with
  deliberately divergent APIs (sz, zfp, mgard, fpzip, lossless codecs);
* :mod:`repro.compressors` — LibPressio plugins wrapping the natives;
* :mod:`repro.metrics`, :mod:`repro.io`, :mod:`repro.meta` — metrics, IO,
  and meta-compressor plugins;
* :mod:`repro.capi` — a C-style functional API mirroring the paper's
  Appendix A;
* :mod:`repro.tools` — CLI, fuzzer, and Z-checker-style analysis tools;
* :mod:`repro.datasets` — synthetic SDRBench-analog datasets.

Quickstart::

    import numpy as np
    from repro import Pressio, PressioData

    library = Pressio()
    compressor = library.get_compressor("sz")
    compressor.set_options({"sz:error_bound_mode_str": "abs",
                            "sz:abs_err_bound": 0.5})

    raw = np.random.default_rng(0).random((300, 300, 300))
    input_data = PressioData.from_numpy(raw)
    compressed = compressor.compress(input_data)
    decompressed = compressor.decompress(
        compressed, PressioData.empty(input_data.dtype, input_data.dims))
"""

from .core import (
    DType,
    Option,
    OptionType,
    Pressio,
    PressioCompressor,
    PressioData,
    PressioError,
    PressioIO,
    PressioMetrics,
    PressioOptions,
    register_compressor,
    register_io,
    register_metric,
)

__version__ = "0.70.4"

__all__ = [
    "Pressio",
    "PressioData",
    "PressioOptions",
    "Option",
    "OptionType",
    "DType",
    "PressioCompressor",
    "PressioMetrics",
    "PressioIO",
    "PressioError",
    "register_compressor",
    "register_metric",
    "register_io",
    "__version__",
]
