"""Asynchronous and streaming compression (paper future-work item 2).

The paper's conclusion lists "better support for asynchrony and
streaming compression" as future work.  Two facilities are provided on
top of the uniform interface:

* :class:`AsyncCompressor` — futures-based asynchrony around any
  plugin.  Thread-safety introspection decides the worker model: a
  re-entrant plugin (``pressio:thread_safe == multiple``) gets a pool of
  clones; anything else gets one worker thread that serializes
  operations (so even sz-style global-state compressors are safely
  asynchronous).

* :class:`StreamingCompressor` / :class:`StreamingDecompressor` — an
  incremental frame API in the style of zstd's streaming interface:
  values are appended in arbitrarily-sized chunks, compressed frames
  are emitted whenever a frame's worth accumulates, and the decompressor
  accepts the byte stream in arbitrary splits, yielding decoded values
  as frames complete.  Frames are independently-decodable units, so a
  consumer can start before the producer finishes.

Frame layout::

    stream header: magic "PSF1" | u8 dtype | u64 frame_elements
    frame:         u64 payload_len | inner compressed stream
    end:           u64 0xFFFFFFFFFFFFFFFF (explicit terminator)
"""

from __future__ import annotations

import queue
import struct
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Iterator

import numpy as np

from .core.compressor import PressioCompressor
from .core.configurable import ThreadSafety
from .core.data import PressioData
from .core.dtype import DType, dtype_to_numpy
from .core.status import CorruptStreamError

__all__ = ["AsyncCompressor", "StreamingCompressor",
           "StreamingDecompressor"]

_MAGIC = b"PSF1"
_END = 0xFFFFFFFFFFFFFFFF


class AsyncCompressor:
    """Futures-based asynchronous wrapper over any compressor plugin."""

    def __init__(self, compressor: PressioCompressor, max_workers: int = 4):
        self._template = compressor
        cfg = compressor.get_configuration()
        reentrant = cfg.get("pressio:thread_safe") == ThreadSafety.MULTIPLE
        self._workers = max_workers if reentrant else 1
        self._pool = ThreadPoolExecutor(max_workers=self._workers)
        if reentrant:
            self._local = threading.local()
        else:
            self._local = None

    def _worker_compressor(self) -> PressioCompressor:
        if self._local is None:
            return self._template  # single worker: safe to share
        comp = getattr(self._local, "compressor", None)
        if comp is None:
            comp = self._template.clone()
            self._local.compressor = comp
        return comp

    @property
    def workers(self) -> int:
        return self._workers

    def compress_async(self, data: PressioData) -> "Future[PressioData]":
        """Schedule a compression; returns a future of the stream."""
        return self._pool.submit(
            lambda: self._worker_compressor().compress(data))

    def decompress_async(self, data: PressioData,
                         template: PressioData) -> "Future[PressioData]":
        """Schedule a decompression; returns a future of the buffer."""
        return self._pool.submit(
            lambda: self._worker_compressor().decompress(data, template))

    def map_compress(self, datas: list[PressioData]) -> list[PressioData]:
        """Compress a batch concurrently, preserving order."""
        futures = [self.compress_async(d) for d in datas]
        return [f.result() for f in futures]

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "AsyncCompressor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class StreamingCompressor:
    """Incremental compression into independently-decodable frames."""

    def __init__(self, compressor: PressioCompressor, dtype: DType,
                 frame_elements: int = 65536,
                 pipelined: bool = False, max_workers: int = 4):
        if frame_elements < 1:
            raise ValueError("frame_elements must be >= 1")
        self._compressor = compressor
        self._dtype = DType(dtype)
        self._np_dtype = dtype_to_numpy(self._dtype)
        self._frame_elements = int(frame_elements)
        self._pending: list[np.ndarray] = []
        self._pending_count = 0
        self._started = False
        self._finished = False
        self.frames_emitted = 0
        self._async = (AsyncCompressor(compressor, max_workers)
                       if pipelined else None)
        self._inflight: "queue.Queue[Future]" = queue.Queue()

    # -- producer side ------------------------------------------------------
    def write(self, values: np.ndarray) -> bytes:
        """Append values; returns whatever compressed bytes are ready."""
        if self._finished:
            raise RuntimeError("stream already finished")
        arr = np.ascontiguousarray(values, dtype=self._np_dtype).reshape(-1)
        self._pending.append(arr)
        self._pending_count += arr.size
        out = bytearray(self._header_once())
        while self._pending_count >= self._frame_elements:
            frame = self._take(self._frame_elements)
            out += self._emit(frame)
        out += self._drain_ready()
        return bytes(out)

    def finish(self) -> bytes:
        """Flush the partial final frame and terminate the stream."""
        if self._finished:
            return b""
        self._finished = True
        out = bytearray(self._header_once())
        if self._pending_count:
            out += self._emit(self._take(self._pending_count))
        out += self._drain_ready(wait=True)
        if self._async is not None:
            self._async.shutdown()
        out += struct.pack("<Q", _END)
        return bytes(out)

    # -- internals ------------------------------------------------------------
    def _header_once(self) -> bytes:
        if self._started:
            return b""
        self._started = True
        return _MAGIC + struct.pack("<BQ", int(self._dtype),
                                    self._frame_elements)

    def _take(self, count: int) -> np.ndarray:
        buf = np.concatenate(self._pending) if len(self._pending) > 1 \
            else self._pending[0]
        frame, rest = buf[:count], buf[count:]
        self._pending = [rest] if rest.size else []
        self._pending_count = int(rest.size)
        return frame

    def _emit(self, frame: np.ndarray) -> bytes:
        data = PressioData.from_numpy(frame, copy=False)
        self.frames_emitted += 1
        if self._async is None:
            payload = self._compressor.compress(data).to_bytes()
            return struct.pack("<Q", len(payload)) + payload
        self._inflight.put(self._async.compress_async(data))
        return b""

    def _drain_ready(self, wait: bool = False) -> bytes:
        if self._async is None:
            return b""
        out = bytearray()
        while not self._inflight.empty():
            future = self._inflight.queue[0]
            if not wait and not future.done():
                break
            self._inflight.get()
            payload = future.result().to_bytes()
            out += struct.pack("<Q", len(payload)) + payload
        return bytes(out)


class StreamingDecompressor:
    """Incremental decoder for :class:`StreamingCompressor` streams."""

    def __init__(self, compressor: PressioCompressor):
        self._compressor = compressor
        self._buffer = bytearray()
        self._dtype: DType | None = None
        self._frame_elements = 0
        self.finished = False

    def feed(self, chunk: bytes) -> list[np.ndarray]:
        """Accept bytes (any split); return completed frames' values."""
        if self.finished and chunk:
            raise CorruptStreamError("data after stream terminator")
        self._buffer += chunk
        frames: list[np.ndarray] = []
        if self._dtype is None:
            if len(self._buffer) < 4 + 9:
                return frames
            if bytes(self._buffer[:4]) != _MAGIC:
                raise CorruptStreamError("not a pressio frame stream")
            dtype_code, frame_elements = struct.unpack_from(
                "<BQ", self._buffer, 4)
            self._dtype = DType(dtype_code)
            self._frame_elements = frame_elements
            del self._buffer[:13]
        while len(self._buffer) >= 8:
            (length,) = struct.unpack_from("<Q", self._buffer, 0)
            if length == _END:
                del self._buffer[:8]
                self.finished = True
                if self._buffer:
                    raise CorruptStreamError("data after stream terminator")
                break
            if len(self._buffer) < 8 + length:
                break
            payload = bytes(self._buffer[8:8 + length])
            del self._buffer[:8 + length]
            template = PressioData.empty(self._dtype)
            out = self._compressor.decompress(
                PressioData.from_bytes(payload), template)
            frames.append(np.asarray(out.to_numpy()).reshape(-1))
        return frames

    def close(self) -> None:
        """Assert the stream ended cleanly.

        Raises :class:`CorruptStreamError` when the terminator was never
        seen (producer died mid-stream) or bytes are still buffered (a
        frame was cut short) — the silent-truncation case a consumer
        must not mistake for end-of-data.
        """
        if not self.finished:
            if self._dtype is None and not self._buffer:
                raise CorruptStreamError("stream ended before its header")
            raise CorruptStreamError(
                f"stream ended without terminator "
                f"({len(self._buffer)} bytes buffered)")
        if self._buffer:
            raise CorruptStreamError("data after stream terminator")

    def iter_frames(self, stream: bytes,
                    chunk_size: int = 4096) -> Iterator[np.ndarray]:
        """Convenience: drive feed() over a complete byte string."""
        for offset in range(0, len(stream), chunk_size):
            yield from self.feed(stream[offset:offset + chunk_size])
