"""``adios_mini``: a from-scratch step-based IO framework with operators.

Substitutes for ADIOS2 (see DESIGN.md): variables are declared against
an :class:`AdiosMiniIOSystem`, written step by step through an engine,
and may carry an *operator* — a compressor plugin applied per step.
This reproduces the integration shape of the paper's ADIOS2 row in
Table II: the operator hook accepts *any* registered compressor.

On disk, each step is one hdf5mini container ``<name>.step<k>.h5m``
inside a directory, plus a JSON manifest — structurally similar to
ADIOS2's BP directory format.
"""

from __future__ import annotations

import json
import os

import numpy as np

from ..core.data import PressioData
from ..core.dtype import dtype_from_numpy
from ..core.io import PressioIO
from ..core.options import OptionType, PressioOptions
from ..core.registry import io_plugin
from ..core.status import IOError_
from .hdf5mini import Hdf5MiniFile
from .posix import _PathIO

__all__ = ["AdiosMiniIOSystem", "AdiosVariable", "AdiosEngine", "AdiosMiniIO"]


class AdiosVariable:
    """A declared variable: name, dtype, shape, optional operator."""

    def __init__(self, name: str, dtype, shape: tuple[int, ...]):
        self.name = name
        self.dtype = np.dtype(dtype)
        self.shape = tuple(int(s) for s in shape)
        self.operator_id = ""
        self.operator_options: dict = {}

    def add_operation(self, compressor_id: str, options: dict | None = None) -> None:
        """Attach a compression operator (any registered plugin id)."""
        self.operator_id = compressor_id
        self.operator_options = dict(options or {})


class AdiosEngine:
    """A step-based writer/reader over a directory of step files."""

    def __init__(self, system: "AdiosMiniIOSystem", path: str, mode: str):
        self.system = system
        self.path = path
        self.mode = mode
        self.step = -1
        self._pending: dict[str, np.ndarray] = {}
        if mode == "w":
            os.makedirs(path, exist_ok=True)
            self._manifest = {"steps": 0, "variables": {}}
        else:
            manifest_path = os.path.join(path, "manifest.json")
            if not os.path.exists(manifest_path):
                raise IOError_(f"no adios_mini dataset at {path}")
            with open(manifest_path) as fh:
                self._manifest = json.load(fh)

    # -- write side --------------------------------------------------------
    def begin_step(self) -> int:
        self.step += 1
        self._pending.clear()
        return self.step

    def put(self, variable: AdiosVariable, array: np.ndarray) -> None:
        arr = np.ascontiguousarray(array, dtype=variable.dtype)
        if arr.shape != variable.shape:
            raise IOError_(
                f"variable {variable.name!r} expects {variable.shape}, "
                f"got {arr.shape}"
            )
        self._pending[variable.name] = arr

    def end_step(self) -> None:
        step_file = os.path.join(self.path, f"step{self.step}.h5m")
        with Hdf5MiniFile(step_file, "w") as f:
            for name, arr in self._pending.items():
                var = self.system.variables[name]
                f.create_dataset(name, arr, filter=var.operator_id,
                                 filter_options=var.operator_options or None)
        self._manifest["steps"] = self.step + 1
        for name in self._pending:
            var = self.system.variables[name]
            self._manifest["variables"][name] = {
                "dtype": var.dtype.name,
                "shape": list(var.shape),
                "operator": var.operator_id,
            }
        self._pending.clear()

    # -- read side -----------------------------------------------------------
    def steps(self) -> int:
        return int(self._manifest.get("steps", 0))

    def get(self, name: str, step: int) -> np.ndarray:
        step_file = os.path.join(self.path, f"step{step}.h5m")
        return Hdf5MiniFile(step_file, "r").read_dataset(name)

    def close(self) -> None:
        if self.mode == "w":
            with open(os.path.join(self.path, "manifest.json"), "w") as fh:
                json.dump(self._manifest, fh)

    def __enter__(self) -> "AdiosEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AdiosMiniIOSystem:
    """Top-level handle: declare variables, open engines (ADIOS2's `IO`)."""

    def __init__(self) -> None:
        self.variables: dict[str, AdiosVariable] = {}

    def define_variable(self, name: str, dtype, shape) -> AdiosVariable:
        var = AdiosVariable(name, dtype, tuple(shape))
        self.variables[name] = var
        return var

    def inquire_variable(self, name: str) -> AdiosVariable | None:
        return self.variables.get(name)

    def open(self, path: str, mode: str) -> AdiosEngine:
        if mode not in ("r", "w"):
            raise ValueError(f"mode must be r or w, got {mode!r}")
        return AdiosEngine(self, path, mode)


@io_plugin("adios_mini")
class AdiosMiniIO(_PathIO):
    """IO plugin reading/writing one variable at one step.

    Options: ``io:path`` (dataset directory), ``adios:variable``,
    ``adios:step``, plus write-side ``adios:operator`` and
    ``adios:operator_config_json``.
    """

    def __init__(self) -> None:
        super().__init__()
        self._variable = "data"
        self._step = 0
        self._operator = ""
        self._operator_config = "{}"

    def _options(self) -> PressioOptions:
        opts = super()._options()
        opts.set("adios:variable", self._variable)
        opts.set("adios:step", np.int64(self._step))
        opts.set("adios:operator", self._operator)
        opts.set("adios:operator_config_json", self._operator_config)
        return opts

    def _set_options(self, options: PressioOptions) -> None:
        super()._set_options(options)
        self._variable = str(self._take(options, "adios:variable",
                                        OptionType.STRING, self._variable))
        self._step = int(self._take(options, "adios:step", OptionType.INT64,
                                    self._step))
        self._operator = str(self._take(options, "adios:operator",
                                        OptionType.STRING, self._operator))
        cfg = str(self._take(options, "adios:operator_config_json",
                             OptionType.STRING, self._operator_config))
        json.loads(cfg)
        self._operator_config = cfg

    def read(self, template: PressioData | None = None) -> PressioData:
        system = AdiosMiniIOSystem()
        engine = system.open(self._require_path(), "r")
        arr = engine.get(self._variable, self._step)
        return PressioData.from_numpy(arr, copy=False)

    def write(self, data: PressioData) -> None:
        arr = np.asarray(data.to_numpy())
        system = AdiosMiniIOSystem()
        var = system.define_variable(self._variable, arr.dtype, arr.shape)
        if self._operator:
            var.add_operation(self._operator,
                              json.loads(self._operator_config) or None)
        with system.open(self._require_path(), "w") as engine:
            for _ in range(self._step + 1):
                engine.begin_step()
            engine.put(var, arr)
            engine.end_step()
