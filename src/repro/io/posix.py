"""``posix`` IO: flat binary files via read/write, and ``mmap`` IO.

Flat binary carries no metadata, so reads require a template describing
dtype and dims (or read the whole file as bytes when none is given) —
exactly the semantics of libpressio's posix plugin.
"""

from __future__ import annotations

import os

import numpy as np

from ..core.data import PressioData
from ..core.dtype import DType, dtype_to_numpy
from ..core.io import PressioIO
from ..core.options import OptionType, PressioOptions
from ..core.registry import io_plugin
from ..core.status import IOError_

__all__ = ["PosixIO", "MmapIO"]


class _PathIO(PressioIO):
    """Shared ``io:path`` option handling."""

    def __init__(self) -> None:
        super().__init__()
        self._path = ""

    def _options(self) -> PressioOptions:
        opts = PressioOptions()
        opts.set("io:path", self._path)
        return opts

    def _set_options(self, options: PressioOptions) -> None:
        self._path = str(self._take(options, "io:path", OptionType.STRING,
                                    self._path))

    def _require_path(self) -> str:
        if not self._path:
            raise IOError_("io:path option is not set")
        return self._path


@io_plugin("posix")
class PosixIO(_PathIO):
    """Flat binary files through ordinary read/write."""

    def read(self, template: PressioData | None = None) -> PressioData:
        path = self._require_path()
        if not os.path.exists(path):
            raise IOError_(f"no such file: {path}")
        if template is None or template.num_dimensions == 0:
            with open(path, "rb") as fh:
                return PressioData.from_bytes(fh.read())
        np_dtype = dtype_to_numpy(template.dtype)
        n = template.num_elements
        arr = np.fromfile(path, dtype=np_dtype, count=n)
        if arr.size != n:
            raise IOError_(
                f"{path} holds {arr.size} elements, template needs {n}"
            )
        return PressioData.from_numpy(arr.reshape(template.dims), copy=False)

    def write(self, data: PressioData) -> None:
        path = self._require_path()
        with open(path, "wb") as fh:
            fh.write(data.to_bytes())


@io_plugin("mmap")
class MmapIO(_PathIO):
    """Flat binary files mapped into memory (zero read copy).

    The returned buffer's deleter un-maps the file — the memory-domain
    design from Section IV-A in action.
    """

    def read(self, template: PressioData | None = None) -> PressioData:
        path = self._require_path()
        if template is None or template.num_dimensions == 0:
            raise IOError_("mmap io requires a typed template with dims")
        return PressioData.from_file_mmap(path, template.dtype, template.dims)

    def write(self, data: PressioData) -> None:
        # writing through mmap requires pre-sizing; fall back to plain IO
        path = self._require_path()
        with open(path, "wb") as fh:
            fh.write(data.to_bytes())
