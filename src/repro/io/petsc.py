"""``petsc`` IO: the PETSc binary Vec format (paper glossary).

PETSc writes vectors as big-endian binary: an int32 class id
(1211214 for Vec), an int32 length, then the values as float64.  This
plugin reads and writes that layout so data produced by "the Portable,
Extensible Toolkit for Scientific Computation" flows straight into the
compression pipeline.
"""

from __future__ import annotations

import os
import struct

import numpy as np

from ..core.data import PressioData
from ..core.dtype import DType, dtype_to_numpy
from ..core.io import PressioIO
from ..core.registry import io_plugin
from ..core.status import IOError_
from .posix import _PathIO

__all__ = ["PetscIO", "VEC_FILE_CLASSID"]

VEC_FILE_CLASSID = 1211214


@io_plugin("petsc")
class PetscIO(_PathIO):
    """PETSc binary Vec reader/writer (big-endian, float64)."""

    def read(self, template: PressioData | None = None) -> PressioData:
        path = self._require_path()
        if not os.path.exists(path):
            raise IOError_(f"no such file: {path}")
        with open(path, "rb") as fh:
            head = fh.read(8)
            if len(head) < 8:
                raise IOError_(f"{path} is too short for a PETSc header")
            classid, n = struct.unpack(">ii", head)
            if classid != VEC_FILE_CLASSID:
                raise IOError_(
                    f"{path} has class id {classid}, expected Vec "
                    f"({VEC_FILE_CLASSID})")
            if n < 0:
                raise IOError_(f"{path} declares negative length {n}")
            values = np.fromfile(fh, dtype=">f8", count=n)
        if values.size != n:
            raise IOError_(
                f"{path} declares {n} values but holds {values.size}")
        arr = values.astype(np.float64)
        if template is not None and template.num_dimensions:
            if template.num_elements != n:
                raise IOError_(
                    f"template needs {template.num_elements} values, "
                    f"vec holds {n}")
            arr = arr.reshape(template.dims)
            if template.dtype != DType.DOUBLE:
                arr = arr.astype(dtype_to_numpy(template.dtype))
        return PressioData.from_numpy(arr, copy=False)

    def write(self, data: PressioData) -> None:
        path = self._require_path()
        values = np.asarray(data.to_numpy(), dtype=np.float64).reshape(-1)
        with open(path, "wb") as fh:
            fh.write(struct.pack(">ii", VEC_FILE_CLASSID, values.size))
            values.astype(">f8").tofile(fh)
