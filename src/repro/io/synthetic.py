"""Synthetic and adapter IO plugins: ``iota``, ``select``, ``noop``.

* ``iota`` — fills a buffer with sequentially increasing values
  (``std::iota`` of the glossary), handy for tests and demos;
* ``select`` — reads a sub-region of another IO plugin's output;
* ``noop`` — returns a held buffer (plumbing for pipelines and tests).
"""

from __future__ import annotations

import numpy as np

from ..core.data import PressioData
from ..core.dtype import DType, dtype_to_numpy
from ..core.io import PressioIO
from ..core.options import OptionType, PressioOptions
from ..core.registry import io_plugin, io_registry
from ..core.status import InvalidDimensionsError, IOError_

__all__ = ["IotaIO", "SelectIO", "NoopIO"]


@io_plugin("iota")
class IotaIO(PressioIO):
    """Generates 0, 1, 2, ... shaped by the template (or io:dims)."""

    def __init__(self) -> None:
        super().__init__()
        self._start = 0.0

    def _options(self) -> PressioOptions:
        opts = PressioOptions()
        opts.set("iota:start", float(self._start))
        return opts

    def _set_options(self, options: PressioOptions) -> None:
        self._start = float(self._take(options, "iota:start",
                                       OptionType.DOUBLE, self._start))

    def read(self, template: PressioData | None = None) -> PressioData:
        if template is None or template.num_dimensions == 0:
            raise IOError_("iota requires a typed template with dims")
        n = template.num_elements
        np_dtype = dtype_to_numpy(template.dtype)
        arr = (np.arange(n, dtype=np.float64) + self._start).astype(np_dtype)
        return PressioData.from_numpy(arr.reshape(template.dims), copy=False)


@io_plugin("select")
class SelectIO(PressioIO):
    """Sub-region view over another IO plugin.

    Options: ``select:io`` (inner plugin id), ``select:start`` /
    ``select:stop`` / ``select:step`` as string lists, plus the inner
    plugin's own options passed through.
    """

    def __init__(self) -> None:
        super().__init__()
        self._inner_id = "posix"
        self._inner: PressioIO = io_registry.create("posix")
        self._start: list[str] = []
        self._stop: list[str] = []
        self._step: list[str] = []

    def _options(self) -> PressioOptions:
        opts = PressioOptions()
        opts.set("select:io", self._inner_id)
        opts.set("select:start", list(self._start))
        opts.set("select:stop", list(self._stop))
        opts.set("select:step", list(self._step))
        return opts.merge(self._inner.get_options())

    def _set_options(self, options: PressioOptions) -> None:
        inner_id = options.get("select:io")
        if inner_id is not None and inner_id != self._inner_id:
            self._inner_id = str(inner_id)
            self._inner = io_registry.create(self._inner_id)
        for name in ("start", "stop", "step"):
            val = options.get(f"select:{name}")
            if val is not None:
                setattr(self, f"_{name}", [str(v) for v in val])
        self._inner.set_options(options)

    def _slices(self, ndim: int) -> tuple[slice, ...]:
        def at(lst: list[str], i: int, default: int | None) -> int | None:
            return int(lst[i]) if i < len(lst) else default

        return tuple(
            slice(at(self._start, i, None), at(self._stop, i, None),
                  at(self._step, i, None))
            for i in range(ndim)
        )

    def read(self, template: PressioData | None = None) -> PressioData:
        full = self._inner.read(template)
        arr = np.asarray(full.to_numpy())
        region = arr[self._slices(arr.ndim)]
        if region.size == 0:
            raise InvalidDimensionsError(
                f"selection {self._slices(arr.ndim)} is empty for shape "
                f"{arr.shape}"
            )
        return PressioData.from_numpy(np.ascontiguousarray(region), copy=False)

    def write(self, data: PressioData) -> None:
        self._inner.write(data)


@io_plugin("noop")
class NoopIO(PressioIO):
    """Holds one buffer; read returns it, write replaces it."""

    def __init__(self) -> None:
        super().__init__()
        self.held: PressioData | None = None

    def read(self, template: PressioData | None = None) -> PressioData:
        if self.held is None:
            raise IOError_("noop io holds no buffer")
        return self.held

    def write(self, data: PressioData) -> None:
        self.held = data
