"""Self-describing format IO plugins: ``numpy`` (.npy) and ``csv``.

Both formats carry their own metadata, so reads need no template (the
template, when given, is validated against the file's contents).
"""

from __future__ import annotations

import os

import numpy as np

from ..core.data import PressioData
from ..core.dtype import dtype_to_numpy
from ..core.io import PressioIO
from ..core.options import OptionType, PressioOptions
from ..core.registry import io_plugin
from ..core.status import IOError_
from .posix import _PathIO

__all__ = ["NumpyIO", "CsvIO"]


@io_plugin("numpy")
class NumpyIO(_PathIO):
    """NumPy ``.npy`` files (the format from the paper's glossary)."""

    def read(self, template: PressioData | None = None) -> PressioData:
        path = self._require_path()
        if not os.path.exists(path):
            raise IOError_(f"no such file: {path}")
        try:
            arr = np.load(path, allow_pickle=False)
        except ValueError as e:
            raise IOError_(f"not a valid .npy file: {path}: {e}") from None
        if template is not None and template.num_dimensions:
            if tuple(arr.shape) != template.dims:
                raise IOError_(
                    f"{path} has shape {arr.shape}, template expects "
                    f"{template.dims}"
                )
            arr = arr.astype(dtype_to_numpy(template.dtype), copy=False)
        return PressioData.from_numpy(arr, copy=False)

    def write(self, data: PressioData) -> None:
        path = self._require_path()
        np.save(path, np.asarray(data.to_numpy()), allow_pickle=False)


@io_plugin("csv")
class CsvIO(_PathIO):
    """Character-delimited values (at most 2-D)."""

    def __init__(self) -> None:
        super().__init__()
        self._delimiter = ","
        self._skip_rows = 0

    def _options(self) -> PressioOptions:
        opts = super()._options()
        opts.set("csv:delimiter", self._delimiter)
        opts.set("csv:skip_rows", np.int64(self._skip_rows))
        return opts

    def _set_options(self, options: PressioOptions) -> None:
        super()._set_options(options)
        self._delimiter = str(self._take(options, "csv:delimiter",
                                         OptionType.STRING, self._delimiter))
        self._skip_rows = int(self._take(options, "csv:skip_rows",
                                         OptionType.INT64, self._skip_rows))

    def read(self, template: PressioData | None = None) -> PressioData:
        path = self._require_path()
        if not os.path.exists(path):
            raise IOError_(f"no such file: {path}")
        try:
            arr = np.loadtxt(path, delimiter=self._delimiter,
                             skiprows=self._skip_rows, ndmin=2)
        except ValueError as e:
            raise IOError_(f"failed to parse csv {path}: {e}") from None
        if template is not None and template.num_dimensions:
            arr = arr.astype(dtype_to_numpy(template.dtype), copy=False)
            arr = arr.reshape(template.dims)
        return PressioData.from_numpy(arr, copy=False)

    def write(self, data: PressioData) -> None:
        path = self._require_path()
        arr = np.asarray(data.to_numpy())
        if arr.ndim > 2:
            raise IOError_(
                f"csv supports at most 2 dimensions, data has {arr.ndim}"
            )
        np.savetxt(path, np.atleast_2d(arr), delimiter=self._delimiter)
