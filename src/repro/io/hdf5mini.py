"""``hdf5mini``: a from-scratch HDF5-like container with filter support.

Substitutes for HDF5 in this reproduction (see DESIGN.md): a single-file
container holding named, typed, dimensioned datasets with per-dataset
attributes and an optional *filter* — a compressor plugin applied
transparently on write and undone on read.  This is the integration
surface the paper's "HDF5 filter" productivity row exercises: with the
uniform interface, one filter implementation serves every compressor.

File layout (little-endian)::

    magic "H5M1" | u64 toc_offset | payloads... | TOC
    TOC: varint ndatasets, then per dataset:
         varint len + name | u8 dtype | u8 ndims | u64 dims...
         varint len + filter id | varint len + filter options JSON
         varint len + attrs JSON | u64 payload_offset | u64 payload_len
"""

from __future__ import annotations

import dataclasses
import json
import os
import struct

import numpy as np

from ..core.data import PressioData
from ..core.dtype import DType, dtype_from_numpy, dtype_to_numpy
from ..core.io import PressioIO
from ..core.options import OptionType, PressioOptions
from ..core.registry import compressor_registry, io_plugin
from ..core.status import CorruptStreamError, IOError_
from ..encoders.varint import varint_decode, varint_encode
from .posix import _PathIO

__all__ = ["Hdf5MiniFile", "Hdf5MiniIO", "DatasetInfo"]

_MAGIC = b"H5M1"


@dataclasses.dataclass
class DatasetInfo:
    """TOC entry for one dataset."""

    name: str
    dtype: DType
    dims: tuple[int, ...]
    filter_id: str
    filter_options: dict
    attrs: dict
    payload_offset: int
    payload_len: int


def _pack_str(s: str) -> bytes:
    raw = s.encode("utf-8")
    return varint_encode(len(raw)) + raw


def _unpack_str(buf: bytes, pos: int) -> tuple[str, int]:
    n, pos = varint_decode(buf, pos)
    return buf[pos:pos + n].decode("utf-8"), pos + n


class Hdf5MiniFile:
    """Read/write access to an hdf5mini container.

    Modes: ``"r"`` (read), ``"w"`` (truncate + write), ``"a"`` (load then
    extend; the file is rewritten on close).  Use as a context manager
    when writing.
    """

    def __init__(self, path: str | os.PathLike, mode: str = "r"):
        if mode not in ("r", "w", "a"):
            raise ValueError(f"mode must be r, w, or a; got {mode!r}")
        self.path = str(path)
        self.mode = mode
        self._datasets: dict[str, DatasetInfo] = {}
        self._payloads: dict[str, bytes] = {}
        self.attrs: dict = {}
        if mode in ("r", "a") and os.path.exists(self.path):
            self._load()
        elif mode == "r":
            raise IOError_(f"no such file: {self.path}")

    # -- container-level -------------------------------------------------
    def _load(self) -> None:
        with open(self.path, "rb") as fh:
            blob = fh.read()
        if blob[:4] != _MAGIC:
            raise CorruptStreamError(f"{self.path} is not an hdf5mini file")
        (toc_offset,) = struct.unpack_from("<Q", blob, 4)
        pos = toc_offset
        n, pos = varint_decode(blob, pos)
        attrs_json, pos = _unpack_str(blob, pos)
        self.attrs = json.loads(attrs_json) if attrs_json else {}
        for _ in range(n):
            name, pos = _unpack_str(blob, pos)
            dtype = DType(blob[pos])
            ndims = blob[pos + 1]
            pos += 2
            dims = struct.unpack_from(f"<{ndims}Q", blob, pos)
            pos += 8 * ndims
            filter_id, pos = _unpack_str(blob, pos)
            filter_opts_json, pos = _unpack_str(blob, pos)
            attrs_json, pos = _unpack_str(blob, pos)
            payload_offset, payload_len = struct.unpack_from("<QQ", blob, pos)
            pos += 16
            info = DatasetInfo(
                name, dtype, tuple(int(d) for d in dims), filter_id,
                json.loads(filter_opts_json) if filter_opts_json else {},
                json.loads(attrs_json) if attrs_json else {},
                payload_offset, payload_len,
            )
            self._datasets[name] = info
            self._payloads[name] = blob[payload_offset:payload_offset + payload_len]

    def flush(self) -> None:
        """Rewrite the container with the current datasets."""
        body = bytearray()
        entries: list[bytes] = []
        base = 12  # magic + toc_offset
        for name, info in self._datasets.items():
            payload = self._payloads[name]
            offset = base + len(body)
            body += payload
            entry = bytearray()
            entry += _pack_str(name)
            entry.append(int(info.dtype))
            entry.append(len(info.dims))
            entry += struct.pack(f"<{len(info.dims)}Q", *info.dims)
            entry += _pack_str(info.filter_id)
            entry += _pack_str(json.dumps(info.filter_options)
                               if info.filter_options else "")
            entry += _pack_str(json.dumps(info.attrs) if info.attrs else "")
            entry += struct.pack("<QQ", offset, len(payload))
            entries.append(bytes(entry))
        toc_offset = base + len(body)
        toc = bytearray(varint_encode(len(entries)))
        toc += _pack_str(json.dumps(self.attrs) if self.attrs else "")
        for e in entries:
            toc += e
        with open(self.path, "wb") as fh:
            fh.write(_MAGIC)
            fh.write(struct.pack("<Q", toc_offset))
            fh.write(body)
            fh.write(toc)

    def close(self) -> None:
        if self.mode in ("w", "a"):
            self.flush()

    def __enter__(self) -> "Hdf5MiniFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- dataset-level -----------------------------------------------------
    def dataset_names(self) -> list[str]:
        return sorted(self._datasets)

    def info(self, name: str) -> DatasetInfo:
        try:
            return self._datasets[name]
        except KeyError:
            raise IOError_(
                f"no dataset {name!r} in {self.path}; "
                f"have {self.dataset_names()}"
            ) from None

    def create_dataset(self, name: str, array: np.ndarray,
                       filter: str = "", filter_options: dict | None = None,
                       attrs: dict | None = None) -> None:
        """Store ``array`` under ``name``, optionally through a filter.

        ``filter`` is any registered compressor plugin id — the whole
        plugin ecosystem is available as an "HDF5 filter" for free.
        """
        if self.mode == "r":
            raise IOError_("file opened read-only")
        arr = np.ascontiguousarray(array)
        dtype = dtype_from_numpy(arr.dtype)
        if filter:
            compressor = compressor_registry.create(filter)
            if filter_options:
                rc = compressor.set_options(filter_options)
                if rc != 0:
                    raise IOError_(
                        f"bad filter options: {compressor.error_msg()}"
                    )
            compressed = compressor.compress(PressioData.from_numpy(arr))
            payload = compressed.to_bytes()
        else:
            payload = arr.tobytes()
        self._datasets[name] = DatasetInfo(
            name, dtype, arr.shape, filter, dict(filter_options or {}),
            dict(attrs or {}), 0, len(payload),
        )
        self._payloads[name] = payload

    def read_dataset(self, name: str) -> np.ndarray:
        """Load ``name``, undoing its filter when present."""
        info = self.info(name)
        payload = self._payloads[name]
        np_dtype = dtype_to_numpy(info.dtype)
        if info.filter_id:
            compressor = compressor_registry.create(info.filter_id)
            if info.filter_options:
                compressor.set_options(info.filter_options)
            template = PressioData.empty(info.dtype, info.dims)
            out = compressor.decompress(PressioData.from_bytes(payload),
                                        template)
            return np.asarray(out.to_numpy()).astype(np_dtype, copy=False)
        arr = np.frombuffer(payload, dtype=np_dtype)
        return arr.reshape(info.dims)


@io_plugin("hdf5mini")
class Hdf5MiniIO(_PathIO):
    """IO plugin reading/writing one dataset of an hdf5mini container.

    Options: ``io:path``, ``hdf5:dataset`` (name within the container),
    ``hdf5:filter`` and ``hdf5:filter_config_json`` for write-side
    compression.
    """

    def __init__(self) -> None:
        super().__init__()
        self._dataset = "data"
        self._filter = ""
        self._filter_config = "{}"

    def _options(self) -> PressioOptions:
        opts = super()._options()
        opts.set("hdf5:dataset", self._dataset)
        opts.set("hdf5:filter", self._filter)
        opts.set("hdf5:filter_config_json", self._filter_config)
        return opts

    def _set_options(self, options: PressioOptions) -> None:
        super()._set_options(options)
        self._dataset = str(self._take(options, "hdf5:dataset",
                                       OptionType.STRING, self._dataset))
        self._filter = str(self._take(options, "hdf5:filter",
                                      OptionType.STRING, self._filter))
        cfg = str(self._take(options, "hdf5:filter_config_json",
                             OptionType.STRING, self._filter_config))
        json.loads(cfg)
        self._filter_config = cfg

    def read(self, template: PressioData | None = None) -> PressioData:
        f = Hdf5MiniFile(self._require_path(), "r")
        arr = f.read_dataset(self._dataset)
        if template is not None and template.num_dimensions:
            if tuple(arr.shape) != template.dims:
                raise IOError_(
                    f"dataset {self._dataset!r} has shape {arr.shape}, "
                    f"template expects {template.dims}"
                )
        return PressioData.from_numpy(arr, copy=False)

    def write(self, data: PressioData) -> None:
        path = self._require_path()
        mode = "a" if os.path.exists(path) else "w"
        with Hdf5MiniFile(path, mode) as f:
            f.create_dataset(
                self._dataset, np.asarray(data.to_numpy()),
                filter=self._filter,
                filter_options=json.loads(self._filter_config) or None,
            )
