"""First-party IO plugins.

Importing this package registers: ``posix``, ``mmap``, ``numpy``,
``csv``, ``iota``, ``select``, ``noop``, ``hdf5mini``, ``adios_mini``, ``petsc``.
"""

from .adios_mini import AdiosEngine, AdiosMiniIO, AdiosMiniIOSystem, AdiosVariable
from .formats import CsvIO, NumpyIO
from .hdf5mini import DatasetInfo, Hdf5MiniFile, Hdf5MiniIO
from .petsc import PetscIO
from .posix import MmapIO, PosixIO
from .synthetic import IotaIO, NoopIO, SelectIO

__all__ = [
    "PosixIO",
    "PetscIO",
    "MmapIO",
    "NumpyIO",
    "CsvIO",
    "IotaIO",
    "SelectIO",
    "NoopIO",
    "Hdf5MiniFile",
    "Hdf5MiniIO",
    "DatasetInfo",
    "AdiosMiniIOSystem",
    "AdiosVariable",
    "AdiosEngine",
    "AdiosMiniIO",
]
