"""C-style functional API mirroring libpressio's ``libpressio.h``.

Every function corresponds 1:1 with a symbol used in the paper's
Appendix A example, so the C listing ports line-for-line::

    library = pressio_instance()
    compressor = pressio_get_compressor(library, "sz")
    metrics = pressio_new_metrics(library, ["size"], 1)
    pressio_compressor_set_metrics(compressor, metrics)
    options = pressio_compressor_get_options(compressor)
    pressio_options_set_string(options, "sz:error_bound_mode_str", "abs")
    pressio_options_set_double(options, "sz:abs_err_bound", 0.5)
    pressio_compressor_check_options(compressor, options)
    pressio_compressor_set_options(compressor, options)
    ...

Error handling follows the C convention: functions return status codes
or None instead of raising, and ``pressio_compressor_error_msg`` /
``pressio_error_msg`` retrieve details.
"""

from .functions import *  # noqa: F401,F403
from .functions import __all__  # noqa: F401
