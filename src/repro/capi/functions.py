"""The flat C-style function set (see package docstring)."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..core.compressor import PressioCompressor
from ..core.data import PressioData
from ..core.dtype import DType, dtype_to_numpy
from ..core.io import PressioIO
from ..core.library import Pressio
from ..core.metrics import PressioMetrics
from ..core.options import Option, OptionType, PressioOptions
from ..obs import runtime as _obs

__all__ = [
    # library
    "pressio_instance", "pressio_release", "pressio_version",
    "pressio_error_code", "pressio_error_msg",
    "pressio_get_compressor", "pressio_get_io", "pressio_new_metrics",
    "pressio_supported_compressors", "pressio_supported_io",
    "pressio_supported_metrics",
    # dtype constants
    "pressio_float_dtype", "pressio_double_dtype", "pressio_int8_dtype",
    "pressio_int16_dtype", "pressio_int32_dtype", "pressio_int64_dtype",
    "pressio_uint8_dtype", "pressio_uint16_dtype", "pressio_uint32_dtype",
    "pressio_uint64_dtype", "pressio_byte_dtype",
    # data
    "pressio_data_new_empty", "pressio_data_new_owning",
    "pressio_data_new_move", "pressio_data_new_nonowning",
    "pressio_data_new_copy", "pressio_data_free", "pressio_data_ptr",
    "pressio_data_dtype", "pressio_data_num_dimensions",
    "pressio_data_get_dimension", "pressio_data_get_bytes",
    "pressio_data_num_elements", "pressio_data_libc_free_fn",
    # options
    "pressio_options_new", "pressio_options_free", "pressio_options_copy",
    "pressio_options_merge", "pressio_options_set_integer",
    "pressio_options_set_uinteger", "pressio_options_set_double",
    "pressio_options_set_float", "pressio_options_set_string",
    "pressio_options_set_strings", "pressio_options_set_data",
    "pressio_options_set_userptr", "pressio_options_get_integer",
    "pressio_options_get_uinteger", "pressio_options_get_double",
    "pressio_options_get_float", "pressio_options_get_string",
    "pressio_options_get", "pressio_options_key_status",
    "pressio_options_size",
    # compressor
    "pressio_compressor_get_options", "pressio_compressor_set_options",
    "pressio_compressor_check_options", "pressio_compressor_get_configuration",
    "pressio_compressor_get_documentation", "pressio_compressor_compress",
    "pressio_compressor_decompress", "pressio_compressor_set_metrics",
    "pressio_compressor_get_metrics_results", "pressio_compressor_release",
    "pressio_compressor_error_code", "pressio_compressor_error_msg",
    "pressio_compressor_version", "pressio_compressor_compress_many",
    "pressio_compressor_decompress_many", "pressio_compressor_clone",
    # metrics
    "pressio_metrics_free",
    # io
    "pressio_io_read", "pressio_io_write", "pressio_io_set_options",
    "pressio_io_free",
]

# ----------------------------------------------------------------------
# dtype constants
# ----------------------------------------------------------------------
pressio_float_dtype = DType.FLOAT
pressio_double_dtype = DType.DOUBLE
pressio_int8_dtype = DType.INT8
pressio_int16_dtype = DType.INT16
pressio_int32_dtype = DType.INT32
pressio_int64_dtype = DType.INT64
pressio_uint8_dtype = DType.UINT8
pressio_uint16_dtype = DType.UINT16
pressio_uint32_dtype = DType.UINT32
pressio_uint64_dtype = DType.UINT64
pressio_byte_dtype = DType.BYTE


# ----------------------------------------------------------------------
# library handle
# ----------------------------------------------------------------------
def pressio_instance() -> Pressio:
    """Create the library handle (``pressio_instance`` in C)."""
    return Pressio()


def pressio_release(library: Pressio) -> None:
    """Release the handle (no-op: garbage collected)."""


def pressio_version(library: Pressio) -> str:
    return library.version()


def pressio_error_code(library: Pressio) -> int:
    return library.error_code()


def pressio_error_msg(library: Pressio) -> str:
    return library.error_msg()


def pressio_get_compressor(library: Pressio, compressor_id: str
                           ) -> PressioCompressor | None:
    return library.get_compressor(compressor_id)


def pressio_get_io(library: Pressio, io_id: str) -> PressioIO | None:
    return library.get_io(io_id)


def pressio_new_metrics(library: Pressio, metric_ids: Sequence[str],
                        n: int | None = None) -> PressioMetrics | None:
    ids = list(metric_ids)[: n if n is not None else None]
    return library.get_metric(ids if len(ids) != 1 else ids[0])


def pressio_supported_compressors(library: Pressio) -> list[str]:
    return library.supported_compressors()


def pressio_supported_io(library: Pressio) -> list[str]:
    return library.supported_io()


def pressio_supported_metrics(library: Pressio) -> list[str]:
    return library.supported_metrics()


# ----------------------------------------------------------------------
# data
# ----------------------------------------------------------------------
def pressio_data_libc_free_fn(state: Any) -> None:
    """Stand-in for passing ``free`` as the deleter in C."""


def pressio_data_new_empty(dtype: DType, num_dims: int = 0,
                           dims: Sequence[int] | None = None) -> PressioData:
    return PressioData.empty(dtype, tuple(dims or ())[:num_dims]
                             if dims else ())


def pressio_data_new_owning(dtype: DType, num_dims: int,
                            dims: Sequence[int]) -> PressioData:
    return PressioData.owning(dtype, tuple(dims)[:num_dims])


def pressio_data_new_move(dtype: DType, src: np.ndarray, num_dims: int,
                          dims: Sequence[int], deleter=None,
                          metadata: Any = None) -> PressioData:
    arr = np.asarray(src, dtype=dtype_to_numpy(dtype))
    return PressioData.move(arr, deleter or pressio_data_libc_free_fn,
                            metadata, dtype, tuple(dims)[:num_dims])


def pressio_data_new_nonowning(dtype: DType, src: np.ndarray, num_dims: int,
                               dims: Sequence[int]) -> PressioData:
    arr = np.asarray(src, dtype=dtype_to_numpy(dtype)).reshape(
        tuple(dims)[:num_dims])
    return PressioData.nonowning(arr)


def pressio_data_new_copy(dtype: DType, src: np.ndarray, num_dims: int,
                          dims: Sequence[int]) -> PressioData:
    arr = np.asarray(src, dtype=dtype_to_numpy(dtype)).reshape(
        tuple(dims)[:num_dims])
    return PressioData.from_numpy(arr, copy=True)


def pressio_data_free(data: PressioData) -> None:
    data.release()


def pressio_data_ptr(data: PressioData) -> np.ndarray:
    """The C API returns void*; here, the ndarray view."""
    return data.to_numpy()


def pressio_data_dtype(data: PressioData) -> DType:
    return data.dtype


def pressio_data_num_dimensions(data: PressioData) -> int:
    return data.num_dimensions


def pressio_data_get_dimension(data: PressioData, idx: int) -> int:
    return data.get_dimension(idx)


def pressio_data_get_bytes(data: PressioData) -> bytes:
    return data.to_bytes()


def pressio_data_num_elements(data: PressioData) -> int:
    return data.num_elements


# ----------------------------------------------------------------------
# options
# ----------------------------------------------------------------------
def pressio_options_new() -> PressioOptions:
    return PressioOptions()


def pressio_options_free(options: PressioOptions) -> None:
    """No-op: garbage collected."""


def pressio_options_copy(options: PressioOptions) -> PressioOptions:
    return options.copy()


def pressio_options_merge(lhs: PressioOptions, rhs: PressioOptions
                          ) -> PressioOptions:
    return lhs.merge(rhs)


def pressio_options_set_integer(options: PressioOptions, name: str,
                                value: int) -> None:
    options.set(name, int(value), OptionType.INT32)


def pressio_options_set_uinteger(options: PressioOptions, name: str,
                                 value: int) -> None:
    options.set(name, int(value), OptionType.UINT32)


def pressio_options_set_double(options: PressioOptions, name: str,
                               value: float) -> None:
    options.set(name, float(value), OptionType.DOUBLE)


def pressio_options_set_float(options: PressioOptions, name: str,
                              value: float) -> None:
    options.set(name, float(value), OptionType.FLOAT)


def pressio_options_set_string(options: PressioOptions, name: str,
                               value: str) -> None:
    options.set(name, str(value), OptionType.STRING)


def pressio_options_set_strings(options: PressioOptions, name: str,
                                values: Sequence[str]) -> None:
    options.set(name, [str(v) for v in values], OptionType.STRING_LIST)


def pressio_options_set_data(options: PressioOptions, name: str,
                             value: PressioData) -> None:
    options.set(name, value, OptionType.DATA)


def pressio_options_set_userptr(options: PressioOptions, name: str,
                                value: Any) -> None:
    options.set(name, value, OptionType.USERPTR)


def _get(options: PressioOptions, name: str, type_: OptionType):
    """C-style getter: (status, value) with status 0 on success."""
    try:
        return 0, options.get_as(name, type_)
    except Exception as e:  # noqa: BLE001
        _obs.record_error("options_get", "capi", e, key=name)
        return 1, None


def pressio_options_get_integer(options: PressioOptions, name: str):
    return _get(options, name, OptionType.INT32)


def pressio_options_get_uinteger(options: PressioOptions, name: str):
    return _get(options, name, OptionType.UINT32)


def pressio_options_get_double(options: PressioOptions, name: str):
    return _get(options, name, OptionType.DOUBLE)


def pressio_options_get_float(options: PressioOptions, name: str):
    return _get(options, name, OptionType.FLOAT)


def pressio_options_get_string(options: PressioOptions, name: str):
    return _get(options, name, OptionType.STRING)


def pressio_options_get(options: PressioOptions, name: str):
    opt = options.get_option(name)
    if opt is None or not opt.has_value():
        return 1, None
    return 0, opt.get()


def pressio_options_key_status(options: PressioOptions, name: str) -> str:
    return options.key_status(name)


def pressio_options_size(options: PressioOptions) -> int:
    return len(options)


# ----------------------------------------------------------------------
# compressor
# ----------------------------------------------------------------------
def pressio_compressor_get_options(compressor: PressioCompressor
                                   ) -> PressioOptions:
    return compressor.get_options()


def pressio_compressor_set_options(compressor: PressioCompressor,
                                   options: PressioOptions) -> int:
    return compressor.set_options(options)


def pressio_compressor_check_options(compressor: PressioCompressor,
                                     options: PressioOptions) -> int:
    return compressor.check_options(options)


def pressio_compressor_get_configuration(compressor: PressioCompressor
                                         ) -> PressioOptions:
    return compressor.get_configuration()


def pressio_compressor_get_documentation(compressor: PressioCompressor
                                         ) -> PressioOptions:
    return compressor.get_documentation()


def pressio_compressor_compress(compressor: PressioCompressor,
                                input: PressioData,
                                output: PressioData) -> int:
    """Compress; output's buffer is replaced.  Returns 0 on success.

    The Python output object is *mutated* to hold the compressed stream,
    mirroring the C out-parameter convention.
    """
    try:
        result = compressor.compress(input, output)
    except Exception as e:  # noqa: BLE001 - status captured on compressor
        _obs.record_error("capi_compress", compressor.get_name(), e)
        return compressor.error_code() or 1
    _assign(output, result)
    return 0


def pressio_compressor_decompress(compressor: PressioCompressor,
                                  input: PressioData,
                                  output: PressioData) -> int:
    try:
        result = compressor.decompress(input, output)
    except Exception as e:  # noqa: BLE001
        _obs.record_error("capi_decompress", compressor.get_name(), e)
        return compressor.error_code() or 1
    _assign(output, result)
    return 0


def _assign(dest: PressioData, src: PressioData) -> None:
    dest._dtype = src._dtype
    dest._dims = src._dims
    dest._array = src._array
    dest._domain = src._domain


def pressio_compressor_compress_many(compressor: PressioCompressor,
                                     inputs: list[PressioData]
                                     ) -> list[PressioData]:
    return compressor.compress_many(inputs)


def pressio_compressor_decompress_many(compressor: PressioCompressor,
                                       inputs: list[PressioData],
                                       outputs: list[PressioData]
                                       ) -> list[PressioData]:
    return compressor.decompress_many(inputs, outputs)


def pressio_compressor_set_metrics(compressor: PressioCompressor,
                                   metrics: PressioMetrics | None) -> None:
    compressor.set_metrics(metrics)


def pressio_compressor_get_metrics_results(compressor: PressioCompressor
                                           ) -> PressioOptions:
    return compressor.get_metrics_results()


def pressio_compressor_release(compressor: PressioCompressor) -> None:
    compressor.decref()


def pressio_compressor_error_code(compressor: PressioCompressor) -> int:
    return compressor.error_code()


def pressio_compressor_error_msg(compressor: PressioCompressor) -> str:
    return compressor.error_msg()


def pressio_compressor_version(compressor: PressioCompressor) -> str:
    return compressor.version()


def pressio_compressor_clone(compressor: PressioCompressor
                             ) -> PressioCompressor:
    return compressor.clone()


# ----------------------------------------------------------------------
# metrics / io
# ----------------------------------------------------------------------
def pressio_metrics_free(metrics: PressioMetrics) -> None:
    """No-op: garbage collected."""


def pressio_io_read(io: PressioIO, template: PressioData | None
                    ) -> PressioData | None:
    try:
        return io.read(template)
    except Exception as e:  # noqa: BLE001
        _obs.record_error("capi_io_read", io.get_name(), e)
        return None


def pressio_io_write(io: PressioIO, data: PressioData) -> int:
    try:
        io.write(data)
    except Exception as e:  # noqa: BLE001
        _obs.record_error("capi_io_write", io.get_name(), e)
        return 1
    return 0


def pressio_io_set_options(io: PressioIO, options: PressioOptions) -> int:
    return io.set_options(options)


def pressio_io_free(io: PressioIO) -> None:
    """No-op: garbage collected."""
