"""The shared hot-path sentinel for every observer subsystem.

:meth:`repro.core.compressor.PressioCompressor.compress` must stay
zero-cost when nothing is watching: the paper's Fig. 3 overhead numbers
are pinned by ``tests/trace/test_overhead.py`` to within 1 % of the
unguarded operation bodies.  With two observer subsystems (the tracer
in :mod:`repro.trace.runtime` and the metrics registry in
:mod:`repro.obs.runtime`) a naive guard would read two module globals
per call; instead both runtimes report state changes here and the hot
path reads the single ``ANY`` flag — the same one-global-read guard the
tracer alone needed.

This module must stay import-free so either runtime can import it
without cycles.
"""

from __future__ import annotations

__all__ = ["ANY", "set_tracer_active", "set_registry_active",
           "set_flight_active"]

#: True when a tracer, a metrics registry, or a flight recorder is
#: active.  Read-only for everyone except the three setters below.
ANY: bool = False

_TRACER_ON = False
_REGISTRY_ON = False
_FLIGHT_ON = False


def set_tracer_active(on: bool) -> None:
    """Called by :mod:`repro.trace.runtime` on every ACTIVE change."""
    global _TRACER_ON, ANY
    _TRACER_ON = on
    ANY = on or _REGISTRY_ON or _FLIGHT_ON


def set_registry_active(on: bool) -> None:
    """Called by :mod:`repro.obs.runtime` on every ACTIVE change."""
    global _REGISTRY_ON, ANY
    _REGISTRY_ON = on
    ANY = on or _TRACER_ON or _FLIGHT_ON


def set_flight_active(on: bool) -> None:
    """Called by :mod:`repro.obs.flight` on every ACTIVE change."""
    global _FLIGHT_ON, ANY
    _FLIGHT_ON = on
    ANY = on or _TRACER_ON or _REGISTRY_ON
